#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Usage: scripts/run_all_experiments.sh   (LOOKHD_FAST=1 for a smoke pass)
set -u
cd "$(dirname "$0")/.."
mkdir -p results
BINS="calibration table01_apps fig02_breakdown fig03_quantization \
fig04_quant_accuracy fig08_cosine_dist fig09_retraining fig12_chunk_sweep \
table02_dimensionality fig13_training_eff fig14_infer_retrain table03_gpu \
fig15_scalability fig16_resources table04_mlp ablation_update_rule \
ablation_binary_model ablation_online ext_asic_projection ext_pipeline_trace ext_width_plan ablation_quantizer_scope ext_compression_analysis ext_engine_scaling"
for b in $BINS; do
  echo "== $b"
  cargo run --release -q -p lookhd-bench --bin "$b" > "results/$b.txt" 2>>results/.stderr.log \
    && echo "   ok -> results/$b.txt" \
    || echo "   FAILED (see results/$b.txt)"
done
