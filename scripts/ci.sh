#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, the persistence
# and wire-protocol corruption sweeps, a CLI metrics smoke test, an
# end-to-end serve + loadgen smoke test (admin telemetry endpoint, trace
# export, perf-trajectory files), an online-training hot-swap smoke
# test, and the observability overhead budget.
# Usage: scripts/ci.sh            (set LOOKHD_SOAK=1 for a 10k-conn soak)
set -eu
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== persistence corruption sweep"
cargo test -q --test persist_corruption

echo "== wire protocol corruption sweep"
cargo test -q --test serve_corruption

echo "== encoder table-mode parity (proptest differential)"
cargo test -q --test prop_encoder_parity

echo "== scoring-kernel differential suites + serve matrix"
cargo test -q -p lookhd score_lut
cargo test -q -p lookhd score_kernel
cargo test -q --test kernel_differential
cargo test -q --test serve_differential score_lut_kernel_serves_identically_to_dense_path
cargo test -q --test serve_differential binary_kernel_serves_identically_to_direct_calls

echo "== quantizer degenerate-input regressions"
cargo test -q -p hdc quantize

echo "== CLI metrics smoke test"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
python3 - "$smoke_dir/train.csv" "$smoke_dir/queries.csv" << 'EOF'
import sys
rows = ["f0,f1,f2,label"]
for i in range(90):
    c = i % 3
    base = [0.2, 0.5, 0.8][c]
    j = (i % 9) * 0.005
    rows.append(f"{base + j:.4f},{base - j:.4f},{base + 2 * j:.4f},{c}")
open(sys.argv[1], "w").write("\n".join(rows) + "\n")
# Label-free query rows for `lookhd predict` / `loadgen --data`.
queries = ["f0,f1,f2"]
for i in range(40):
    t = i / 39.0
    queries.append(f"{t:.4f},{1 - t:.4f},{0.3 + t / 2:.4f}")
open(sys.argv[2], "w").write("\n".join(queries) + "\n")
EOF
cargo run --release -q -p lookhd-cli -- train \
    --data "$smoke_dir/train.csv" --out "$smoke_dir/model.lks" \
    --dim 512 --epochs 2 --kernel auto --metrics "$smoke_dir/metrics.json"
python3 - "$smoke_dir/metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 3, doc
paths = [s["path"] for s in doc["spans"]]
for stage in ("encode", "counter_train", "compress", "predict", "score_lut"):
    assert any(stage in p for p in paths), f"missing stage {stage}: {paths}"
assert any(s["total_ns"] > 0 for s in doc["spans"]), "all durations zero"
counters = {c["name"] for c in doc["counters"]}
assert "counter_train.samples" in counters, counters
# The LUT kernel's generalized counter scheme must be live (the old
# score_lut.* aliases are gone after their one-release window).
assert "kernel.lut.queries" in counters, counters
assert "score_lut.queries" not in counters, counters
print(f"metrics OK: {len(paths)} spans, {len(counters)} counters")
EOF

echo "== binary-kernel CLI smoke test"
cargo run --release -q -p lookhd-cli -- train \
    --data "$smoke_dir/train.csv" --out "$smoke_dir/model_bin.lks" \
    --dim 512 --epochs 2 --kernel binary --multifold 2 \
    > "$smoke_dir/train_bin.log"
grep -q "kernel: binary (approximate;" "$smoke_dir/train_bin.log"
cargo run --release -q -p lookhd-cli -- info \
    --model "$smoke_dir/model_bin.lks" > "$smoke_dir/info_bin.log"
grep -q "kernel: *binary" "$smoke_dir/info_bin.log"
# The same artifact rebuilt behind the exact reference kernel.
cargo run --release -q -p lookhd-cli -- info \
    --model "$smoke_dir/model_bin.lks" --kernel dense \
    > "$smoke_dir/info_dense.log"
grep -q "kernel: *dense" "$smoke_dir/info_dense.log"

echo "== serve + loadgen + live telemetry smoke test"
# Build both binaries up front so the startup poll below is not racing
# a compile.
cargo build --release -q -p lookhd-cli
cargo build --release -q -p lookhd-bench --bin loadgen
cargo run --release -q -p lookhd-cli -- serve \
    --model "$smoke_dir/model.lks" --addr 127.0.0.1:0 --threads 2 \
    --reactors 2 --max-batch 64 --queue-cap 8192 --max-conns 4096 \
    --timeout-ms 30000 \
    --metrics "$smoke_dir/serve_metrics.json" --metrics-interval 200 \
    --admin-addr 127.0.0.1:0 \
    > "$smoke_dir/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2> /dev/null || true; rm -rf "$smoke_dir"' EXIT
serve_addr=""
admin_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$smoke_dir/serve.log")"
    admin_addr="$(sed -n 's/^admin on \([0-9.:]*\) .*/\1/p' "$smoke_dir/serve.log")"
    [ -n "$serve_addr" ] && [ -n "$admin_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ] || [ -z "$admin_addr" ]; then
    echo "serve smoke: server did not start (serve='$serve_addr' admin='$admin_addr')"
    cat "$smoke_dir/serve.log"
    exit 1
fi
# Traced load with no --shutdown: the admin endpoint must stay up for
# the scrapes below (the trace checks assume exactly ids 1..=200).
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$serve_addr" --data "$smoke_dir/queries.csv" \
    --connections 4 --requests 50 --trace --admin "$admin_addr" \
    --out results/serve_loadgen.txt
grep -q "latency ms:" results/serve_loadgen.txt
grep -q "trace ids: propagated" results/serve_loadgen.txt
grep -q "server health (from /healthz): 200" results/serve_loadgen.txt
# Live scrapes: snapshot JSON, Prometheus text, and the Chrome
# trace-event export, each validated by an independent parser.
python3 - "$admin_addr" << 'EOF'
import json, urllib.request

def get(addr, path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=10) as r:
        assert r.status == 200, (path, r.status)
        return r.read().decode()

import sys
addr = sys.argv[1]
assert get(addr, "/healthz").strip() == "ok"

doc = json.loads(get(addr, "/metrics.json"))
assert doc["version"] == 3, doc["version"]
# Schema-v3 window header: the rolling-window geometry is disclosed and
# every entry carries labels + windowed aggregates bounded by the
# cumulative totals (a torn read would violate the bound).
w = doc["window"]
assert w["short_secs"] < w["long_secs"] and w["slot_secs"] >= 1, w
for s in doc["spans"]:
    assert isinstance(s["labels"], dict), s
    assert isinstance(s["exemplars"], list), s
    for win in ("w10", "w60"):
        assert s[win]["count"] <= s["count"], (s["path"], win, s[win])
        assert s[win]["total_ns"] <= s["total_ns"], (s["path"], win)
for c in doc["counters"]:
    assert isinstance(c["labels"], dict), c
    assert c["w10"] <= c["value"] and c["w60"] <= c["value"], c
paths = {s["path"] for s in doc["spans"]}
for path in ("serve/request", "serve/decode", "serve/queue_wait",
             "serve/encode", "serve/margin"):
    assert path in paths, f"missing span {path}: {sorted(paths)}"
counters = {}
for c in doc["counters"]:  # fold label sets into per-name totals
    counters[c["name"]] = counters.get(c["name"], 0) + c["value"]
assert counters.get("serve.responses.ok") == 200, counters
# Per-class predictions are dimensional now: one serve.predicted entry
# per {class=N} label set, summing to the request count.
predicted_sets = [c for c in doc["counters"] if c["name"] == "serve.predicted"]
assert predicted_sets and all(c["labels"].get("class", "").isdigit()
                              for c in predicted_sets), predicted_sets
predicted = sum(c["value"] for c in predicted_sets)
assert predicted == 200, f"per-class prediction counters sum to {predicted}"
# The dimensional response counter carries kernel + model_version.
predictions = [c for c in doc["counters"] if c["name"] == "serve.predictions"]
assert sum(c["value"] for c in predictions) == 200, predictions
assert all(c["labels"].get("kernel") == "lut"
           and c["labels"].get("model_version") == "1"
           for c in predictions), predictions
# The server announces the artifact's active scoring kernel at startup
# (the smoke model was trained with --kernel auto, so the LUT is active).
assert counters.get("kernel.active.lut") == 1, counters

prom = get(addr, "/metrics")
assert "# TYPE lookhd_span_serve_request_ns histogram" in prom, prom[:400]
assert "lookhd_serve_responses_ok 200" in prom, prom[:400]
# Dimensional labels survive the Prometheus render.
assert 'lookhd_serve_predictions{kernel="lut",model_version="1"} 200' in prom, prom[:400]
assert 'reactor="' in prom and 'worker="' in prom, prom[:400]
# At least one OpenMetrics tail exemplar rides a histogram bucket line,
# and its trace id must resolve in the Chrome trace export below.
import re
exemplar_ids = set(re.findall(r'# \{trace_id="(0x[0-9a-f]+)"\}', prom))
assert exemplar_ids, "no OpenMetrics exemplars in /metrics"

# Chrome trace-event export: every traced request (trace ids 1..=200,
# one per loadgen request) must carry a balanced begin/end pair for
# each pipeline stage, keyed by its client-chosen trace id.
trace = json.loads(get(addr, "/trace.json"))
events = trace["traceEvents"]
stages = ("decode", "queue_wait", "batch_assembly", "predict", "encode")
seen = {}
for e in events:
    assert e["ph"] in ("b", "e"), e
    assert e["id"] != "0x0", e
    seen.setdefault((e["id"], e["name"]), []).append(e["ph"])
for tid in range(1, 201):
    for stage in stages:
        phases = seen.get((f"0x{tid:x}", stage))
        assert phases == ["b", "e"], f"trace 0x{tid:x} {stage}: {phases}"
# Every exported exemplar points at a real request: its trace id must
# resolve to trace events in the Chrome export.
trace_ids = {e["id"] for e in events}
unresolved = exemplar_ids - trace_ids
assert not unresolved, f"exemplar trace ids missing from /trace.json: {unresolved}"
print(f"admin telemetry OK: {len(paths)} spans, {len(events)} trace events, "
      f"{len(exemplar_ids)} exemplar trace ids resolved")
EOF
# The periodic flusher must have produced a parseable snapshot by now.
python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$smoke_dir/serve_metrics.json"
# High-concurrency smoke: a multiplexed connections sweep up to 1024
# concurrent pipelined connections against the 2-reactor server. Any
# in-deadline drop or id mismatch fails the run; this also starts the
# schema-v3 BENCH_serve.json reactors×connections record (the 1-reactor
# run below appends to it).
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$serve_addr" --data "$smoke_dir/queries.csv" \
    --curve 64,512,1024 --requests 10 --pipeline 4 --reactors 2 \
    --bench-out BENCH_serve.json --out results/serve_curve.txt
grep -q "connections 1024:" results/serve_curve.txt
grep -q "loadgen shares the host" results/serve_curve.txt
# Graceful shutdown via a second (untraced) loadgen connection.
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$serve_addr" --data "$smoke_dir/queries.csv" \
    --connections 1 --requests 1 \
    --out "$smoke_dir/shutdown_loadgen.txt" --shutdown
wait "$serve_pid" # graceful shutdown: drains, joins, writes metrics
python3 - "$smoke_dir/serve_metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 3, doc
paths = [s["path"] for s in doc["spans"]]
for path in ("serve/request", "serve/batch_size", "serve/queue_depth"):
    assert path in paths, f"missing span {path}: {paths}"
# 200 traced + 16000 from the connections curve + 1 shutdown probe.
# (The asserted counters are all unlabeled single-entry names, so a
# name-keyed dict stays exact.)
counters = {c["name"]: c["value"] for c in doc["counters"]}
assert counters.get("serve.responses.ok") == 16201, counters
assert counters.get("serve.requests") == 16201, counters
assert counters.get("serve.batches", 0) >= 1, counters
assert counters.get("serve.connections", 0) >= 1605, counters
print(f"serve metrics OK: {counters['serve.batches']} batches "
      f"for {counters['serve.requests']} requests")
EOF

echo "== single-reactor curve point (accept-sharding fallback path)"
# A second server with --reactors 1 exercises the single-listener
# fallback; its 512-connection point appends a second run entry to the
# schema-v3 BENCH_serve.json started above.
cargo run --release -q -p lookhd-cli -- serve \
    --model "$smoke_dir/model.lks" --addr 127.0.0.1:0 --threads 2 \
    --reactors 1 --max-batch 64 --queue-cap 8192 --max-conns 4096 \
    --timeout-ms 30000 \
    --metrics "$smoke_dir/serve1_metrics.json" --metrics-interval 200 \
    > "$smoke_dir/serve1.log" 2>&1 &
serve1_pid=$!
trap 'kill "$serve_pid" "$serve1_pid" 2> /dev/null || true; rm -rf "$smoke_dir"' EXIT
serve1_addr=""
for _ in $(seq 1 100); do
    serve1_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$smoke_dir/serve1.log")"
    [ -n "$serve1_addr" ] && break
    sleep 0.1
done
if [ -z "$serve1_addr" ]; then
    echo "single-reactor smoke: server did not start"
    cat "$smoke_dir/serve1.log"
    exit 1
fi
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$serve1_addr" --data "$smoke_dir/queries.csv" \
    --curve 512 --requests 10 --pipeline 4 --reactors 1 \
    --bench-out BENCH_serve.json --bench-append \
    --out results/serve_curve_r1.txt
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$serve1_addr" --data "$smoke_dir/queries.csv" \
    --connections 1 --requests 1 \
    --out "$smoke_dir/serve1_shutdown.txt" --shutdown
wait "$serve1_pid"
python3 - "$smoke_dir/serve1_metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
# 5120 from the 512-connection point + 1 shutdown probe: exact.
counters = {c["name"]: c["value"] for c in doc["counters"]}
assert counters.get("serve.responses.ok") == 5121, counters
assert counters.get("serve.requests") == 5121, counters
print("single-reactor serve metrics OK: 5121 requests")
EOF
python3 - << 'EOF'
import json
# The serve record is a schema-v3 reactors × connections matrix from
# the multiplexed loadgen; every point must be drop-free and complete
# (exact request counts), and the host block must disclose that loadgen
# shared the machine with the server.
doc = json.load(open("BENCH_serve.json"))
assert doc["schema_version"] == 3, doc
assert doc["host"]["cores"] >= 1, doc
assert doc["host"]["loadgen_shares_host"] is True, doc["host"]
assert doc["workload"]["pipeline"] >= 1, doc["workload"]
req = doc["workload"]["requests_per_connection"]
runs = doc["runs"]
assert [r["reactors"] for r in runs] == [2, 1], runs
curves = {r["reactors"]: r["curve"] for r in runs}
assert [p["connections"] for p in curves[2]] == [64, 512, 1024], curves[2]
assert [p["connections"] for p in curves[1]] == [512], curves[1]
for r in runs:
    for p in r["curve"]:
        want = p["connections"] * req
        assert p["ok"] == want and p["errors"] == 0 and p["dropped"] == 0, p
        assert p["id_mismatches"] == 0, p
        assert p["throughput_rps"] > 0, p
        lat = p["latency_ns"]
        assert 0 < lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"], lat
doc = json.load(open("BENCH_score_lut.json"))
assert doc["schema_version"] == 1, doc
assert doc["host"]["cores"] >= 1, doc
# The score-LUT record is a per-kernel matrix: dense/lut/binary medians
# for single and batch-64 predicts, plus the binary kernel's recorded
# quality (argmax agreement with dense and the accuracy delta).
assert doc["kernels"] == ["dense", "lut", "binary"], doc["kernels"]
for kernel in doc["kernels"]:
    for op in (f"{kernel}_predict_1_ns", f"{kernel}_predict_batch_64_ns"):
        assert doc["results"][op]["p50"] > 0, (op, doc["results"].get(op))
quality = doc["binary_quality"]
assert 0.5 <= quality["argmax_agreement"] <= 1.0, quality
assert -1.0 <= quality["accuracy_delta"] <= 1.0, quality
print("perf trajectory files OK")
EOF

echo "== online training + hot-swap smoke test"
# A separate serve instance with online training enabled; the previous
# instance's exact counter assertions stay undisturbed.
cargo run --release -q -p lookhd-cli -- serve \
    --model "$smoke_dir/model.lks" --addr 127.0.0.1:0 --threads 2 \
    --online --admin-addr 127.0.0.1:0 \
    > "$smoke_dir/online.log" 2>&1 &
online_pid=$!
trap 'kill "$serve_pid" "$online_pid" 2> /dev/null || true; rm -rf "$smoke_dir"' EXIT
online_addr=""
online_admin=""
for _ in $(seq 1 100); do
    online_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$smoke_dir/online.log")"
    online_admin="$(sed -n 's/^admin on \([0-9.:]*\) .*/\1/p' "$smoke_dir/online.log")"
    [ -n "$online_addr" ] && [ -n "$online_admin" ] && break
    sleep 0.1
done
if [ -z "$online_addr" ] || [ -z "$online_admin" ]; then
    echo "online smoke: server did not start"
    cat "$smoke_dir/online.log"
    exit 1
fi
grep -q "online training on" "$smoke_dir/online.log"
# Feed the labelled training rows back as feedback frames over a single
# connection (deterministic issue order: row (0 + seq) % 90), then
# trigger a model refresh. 270 requests = each of the 90 rows 3×, so
# each of the 3 classes is observed exactly 90 times.
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$online_addr" --data "$smoke_dir/train.csv" \
    --feedback --refresh --connections 1 --requests 270 \
    --out results/serve_feedback.txt
grep -q "model refresh: acknowledged, now serving version 2" results/serve_feedback.txt
# The admin endpoint must show the swap landed and every fold counted:
# model.version advanced to 2 and train.observed.* match the fed label
# histogram exactly.
python3 - "$online_admin" << 'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
with urllib.request.urlopen(f"http://{addr}/metrics.json", timeout=10) as r:
    doc = json.loads(r.read().decode())
counters = {c["name"]: c["value"] for c in doc["counters"]}
assert counters.get("model.version") == 2, counters
assert counters.get("train.feedback") == 270, counters
for c in range(3):
    got = counters.get(f"train.observed.{c}")
    assert got == 90, f"train.observed.{c} = {got}, want 90"
assert counters.get("serve.model_swaps") == 1, counters
assert counters.get("serve.model_swaps.auto", 0) == 0, counters
assert counters.get("serve.swapped_to.2") == 1, counters
spans = {s["path"] for s in doc["spans"]}
for name in ("serve_feedback", "serve_model_swap", "online_materialize"):
    assert any(name in p for p in spans), f"missing span {name}: {sorted(spans)}"
print(f"online telemetry OK: {counters['train.feedback']} folds, "
      f"now at model version {counters['model.version']}")
EOF
# Graceful shutdown of the online instance (drains the trainer thread).
cargo run --release -q -p lookhd-bench --bin loadgen -- \
    --addr "$online_addr" --data "$smoke_dir/queries.csv" \
    --connections 1 --requests 1 \
    --out "$smoke_dir/online_shutdown.txt" --shutdown
wait "$online_pid"

if [ "${LOOKHD_SOAK:-0}" = "1" ]; then
    echo "== 10k-connection soak (LOOKHD_SOAK=1)"
    # Each process (server, loadgen) holds its own ~10k sockets, so the
    # inherited per-process fd limit must clear 10k with headroom.
    nofile="$(ulimit -n)"
    if [ "$nofile" != "unlimited" ] && [ "$nofile" -lt 12288 ]; then
        echo "soak: ulimit -n is $nofile; need >= 12288 (run 'ulimit -n 12288' first)"
        exit 1
    fi
    cargo run --release -q -p lookhd-cli -- serve \
        --model "$smoke_dir/model.lks" --addr 127.0.0.1:0 --threads 2 \
        --reactors 2 --max-batch 64 --queue-cap 65536 --max-conns 20000 \
        --timeout-ms 60000 \
        > "$smoke_dir/soak.log" 2>&1 &
    soak_pid=$!
    trap 'kill "$serve_pid" "$serve1_pid" "$soak_pid" 2> /dev/null || true; rm -rf "$smoke_dir"' EXIT
    soak_addr=""
    for _ in $(seq 1 100); do
        soak_addr="$(sed -n 's/^serving on \([0-9.:]*\) .*/\1/p' "$smoke_dir/soak.log")"
        [ -n "$soak_addr" ] && break
        sleep 0.1
    done
    if [ -z "$soak_addr" ]; then
        echo "soak: server did not start"
        cat "$smoke_dir/soak.log"
        exit 1
    fi
    # 10k concurrent pipelined connections, zero drops or mismatches
    # allowed (loadgen exits nonzero on either).
    cargo run --release -q -p lookhd-bench --bin loadgen -- \
        --addr "$soak_addr" --data "$smoke_dir/queries.csv" \
        --connections 10000 --requests 5 --pipeline 2 \
        --deadline-ms 60000 --reactors 2 \
        --out results/serve_soak_10k.txt
    grep -q "connections 10000:" results/serve_soak_10k.txt
    cargo run --release -q -p lookhd-bench --bin loadgen -- \
        --addr "$soak_addr" --data "$smoke_dir/queries.csv" \
        --connections 1 --requests 1 \
        --out "$smoke_dir/soak_shutdown.txt" --shutdown
    wait "$soak_pid"
fi

echo "== observability overhead budget (< 5%, single-thread + 8-thread contention)"
# Writes the schema-versioned BENCH_obs.json (committed at the repo
# root): both gate arms plus the single-mutex vs sharded contention
# comparison; exits nonzero if either gate blows the budget.
cargo run --release -q -p lookhd-bench --bin obs_overhead_check
python3 - << 'EOF'
import json
doc = json.load(open("BENCH_obs.json"))
assert doc["schema_version"] == 1, doc
assert doc["host"]["cores"] >= 1 and doc["host"]["co_located"] is True, doc["host"]
for gate in ("single_thread", "multi_thread_8"):
    g = doc["gates"][gate]
    assert g["passed"] is True, (gate, g)
    assert g["disabled_median_ns"] > 0 and g["enabled_median_ns"] > 0, (gate, g)
c = doc["contention"]
assert c["threads"] == 8 and c["ops_per_thread"] >= 1, c
assert c["single_mutex"]["wall_ns"] > 0 and c["sharded"]["wall_ns"] > 0, c
print(f"BENCH_obs.json OK: sharded registry {c['speedup']:.1f}x the "
      f"single-mutex baseline under 8-thread contention")
EOF

echo "CI OK"
