#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, the persistence
# corruption sweep, and a CLI metrics smoke test.
# Usage: scripts/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== persistence corruption sweep"
cargo test -q --test persist_corruption

echo "== CLI metrics smoke test"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
python3 - "$smoke_dir/train.csv" << 'EOF'
import sys
rows = ["f0,f1,f2,label"]
for i in range(90):
    c = i % 3
    base = [0.2, 0.5, 0.8][c]
    j = (i % 9) * 0.005
    rows.append(f"{base + j:.4f},{base - j:.4f},{base + 2 * j:.4f},{c}")
open(sys.argv[1], "w").write("\n".join(rows) + "\n")
EOF
cargo run --release -q -p lookhd-cli -- train \
    --data "$smoke_dir/train.csv" --out "$smoke_dir/model.lks" \
    --dim 512 --epochs 2 --metrics "$smoke_dir/metrics.json"
python3 - "$smoke_dir/metrics.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["version"] == 1, doc
paths = [s["path"] for s in doc["spans"]]
for stage in ("encode", "counter_train", "compress", "predict"):
    assert any(stage in p for p in paths), f"missing stage {stage}: {paths}"
assert any(s["total_ns"] > 0 for s in doc["spans"]), "all durations zero"
counters = {c["name"] for c in doc["counters"]}
assert "counter_train.samples" in counters, counters
print(f"metrics OK: {len(paths)} spans, {len(counters)} counters")
EOF

echo "CI OK"
