//! Property-based tests of the quantizers and the chunk addressing.

use lookhd_paper::hdc::quantize::{Quantization, Quantizer};
use lookhd_paper::lookhd::chunking::ChunkLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization is monotone: x ≤ y ⇒ level(x) ≤ level(y), for both
    /// rules, and levels stay in range.
    #[test]
    fn quantization_is_monotone(
        mut values in proptest::collection::vec(-1e3f64..1e3, 2..200),
        q in 2usize..17,
        probes in proptest::collection::vec(-2e3f64..2e3, 2..50),
    ) {
        for kind in [Quantization::Linear, Quantization::Equalized] {
            let quantizer = Quantizer::fit(kind, &values, q).unwrap();
            let mut sorted = probes.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let levels: Vec<usize> = sorted.iter().map(|&x| quantizer.level(x)).collect();
            for w in levels.windows(2) {
                prop_assert!(w[0] <= w[1], "{kind:?} not monotone: {levels:?}");
            }
            prop_assert!(levels.iter().all(|&l| l < q));
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }

    /// Equalized occupancy is balanced: no level gets more than ~2x its
    /// fair share on continuous (deduplicated) data.
    #[test]
    fn equalized_occupancy_is_balanced(
        seeds in proptest::collection::vec(0u64..1_000_000, 100..400),
        q in 2usize..9,
    ) {
        // Derive distinct, continuous-ish values from the seeds.
        let values: Vec<f64> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| (s as f64).sqrt() + i as f64 * 1e-7)
            .collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &values, q).unwrap();
        let occ = quantizer.occupancy(&values);
        let fair = values.len() as f64 / q as f64;
        for (level, &count) in occ.iter().enumerate() {
            prop_assert!(
                (count as f64) < 2.0 * fair + 2.0,
                "level {level} holds {count} of {} values (fair {fair})",
                values.len()
            );
        }
    }

    /// Chunk addresses are a bijection: every (chunk, levels) pair maps to
    /// a unique address that round-trips.
    #[test]
    fn chunk_addressing_round_trips(
        n in 2usize..64,
        r in 1usize..8,
        q in 2usize..9,
        addr_seed in any::<u64>(),
    ) {
        let r = r.min(n);
        prop_assume!((r as u32) * (q as u64).next_power_of_two().trailing_zeros().max(1) <= 48);
        let layout = ChunkLayout::new(n, r, q).unwrap();
        for chunk in 0..layout.n_chunks() {
            let rows = layout.table_rows(chunk) as u64;
            let addr = addr_seed % rows;
            let levels = layout.levels_of_address(chunk, addr);
            prop_assert_eq!(levels.len(), layout.chunk_len(chunk));
            prop_assert_eq!(layout.address(chunk, &levels), addr);
        }
    }

    /// The chunk layout partitions the features exactly: ranges are
    /// contiguous, disjoint, and cover 0..n.
    #[test]
    fn chunks_partition_features(n in 1usize..300, r in 1usize..12) {
        let r = r.min(n);
        let layout = ChunkLayout::new(n, r, 2).unwrap();
        let mut covered = 0usize;
        for c in 0..layout.n_chunks() {
            let range = layout.feature_range(c);
            prop_assert_eq!(range.start, covered);
            covered = range.end;
        }
        prop_assert_eq!(covered, n);
    }
}
