//! Telemetry under fire: concurrent admin scrapes during live model
//! hot-swap, and snapshot determinism under 8 writer threads.
//!
//! Pins the observability contract the sharded registry makes to its
//! consumers:
//!
//! * admin scrapes racing live traffic and hot-swaps never see a torn
//!   windowed read (`w10`/`w60` always ≤ the cumulative value, per
//!   entry, on every scrape);
//! * the `model_version` label on `serve.predictions` flips atomically
//!   with the swap — every ok predict lands on exactly one version
//!   label, the labels observed are exactly the versions that were
//!   live, and the totals add up to the request count with nothing
//!   double- or un-labeled;
//! * snapshots are sorted by (name, labels) and deterministic: with
//!   writers stopped and the window clock frozen, two back-to-back
//!   snapshots are bit-identical even after 8 threads hammered the
//!   same labeled metrics concurrently;
//! * `/healthz` flips to 503 (`draining`) once shutdown begins.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::lookhd::{CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig};
use lookhd_paper::obs;
use lookhd_paper::serve::{
    http_get, http_get_status, start_admin_with, start_online, AdminOptions, Client, OnlineConfig,
    Request, Response, ServeConfig,
};

/// The global obs registry is process-wide; tests in this binary must
/// not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Well-separated 3-class training set (5 features) plus off-grid
/// queries — the serve-soak dataset shape.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.3 + t / 3.0, t * t, 0.9 - t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

fn trained() -> LookHdClassifier {
    let (xs, ys, _) = dataset();
    let config = LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_adaptive_grouping(false)
        .with_compression(CompressionConfig::new().with_decorrelate(false))
        .with_kernel(KernelSpec::lut());
    LookHdClassifier::fit(&config, &xs, &ys).expect("fit failed")
}

/// Asserts the snapshot ordering + windowed-read invariants that every
/// concurrent scrape must uphold, torn reads included.
fn assert_snapshot_consistent(snapshot: &obs::Snapshot) {
    for pair in snapshot.counters.windows(2) {
        assert!(
            (&pair[0].name, &pair[0].labels) < (&pair[1].name, &pair[1].labels),
            "counters out of order: {:?} then {:?}",
            (&pair[0].name, &pair[0].labels),
            (&pair[1].name, &pair[1].labels),
        );
    }
    for pair in snapshot.spans.windows(2) {
        assert!(
            (&pair[0].path, &pair[0].labels) < (&pair[1].path, &pair[1].labels),
            "spans out of order: {:?} then {:?}",
            (&pair[0].path, &pair[0].labels),
            (&pair[1].path, &pair[1].labels),
        );
    }
    for c in &snapshot.counters {
        assert!(
            c.w10 <= c.value && c.w60 <= c.value,
            "torn windowed counter read: {}{:?} w10={} w60={} value={}",
            c.name,
            c.labels,
            c.w10,
            c.w60,
            c.value
        );
    }
    for s in &snapshot.spans {
        assert!(
            s.w10.count <= s.count && s.w60.count <= s.count,
            "torn windowed span read: {}{:?} w10={} w60={} count={}",
            s.path,
            s.labels,
            s.w10.count,
            s.w60.count,
            s.count
        );
    }
}

/// Folds per refresh round; 3 rounds = 3 hot-swaps under live scrape +
/// predict load.
const ROUNDS: usize = 3;
const FOLDS_PER_ROUND: usize = 80;
const DRIVERS: usize = 6;
const WINDOW: usize = 3;

#[test]
fn concurrent_scrapes_during_hotswap_stay_consistent_and_version_labels_flip_atomically() {
    let _guard = obs_guard();
    obs::reset();
    obs::set_enabled(true);

    let (xs, ys, queries) = dataset();
    let handle = start_online(
        "127.0.0.1:0",
        trained(),
        ServeConfig::new()
            .with_workers(2)
            .with_reactors(2)
            .with_max_batch(8),
        OnlineConfig::new(),
    )
    .expect("bind failed");
    let addr = handle.addr();
    let admin = start_admin_with(
        "127.0.0.1:0",
        AdminOptions::new().with_health(handle.health()),
    )
    .expect("admin bind failed");
    let admin_addr = admin.addr().to_string();

    let done = AtomicBool::new(false);
    let total_predicts = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Drivers: pipelined stamped predicts until the trainer side is
        // done, so every swap happens under live predict + scrape load.
        for d in 0..DRIVERS {
            let (queries, done, total_predicts) = (&queries, &done, &total_predicts);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("driver connect failed");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut sent = 0usize;
                let mut received = 0usize;
                let recv_one = |client: &mut Client, received: &mut usize| match client
                    .recv()
                    .expect("driver recv failed")
                {
                    Response::PredictStamped { .. } => *received += 1,
                    other => panic!("driver {d}: unexpected response {other:?}"),
                };
                while !done.load(Ordering::SeqCst) {
                    while sent - received < WINDOW {
                        let qi = (d + sent * 7) % queries.len();
                        client
                            .send(&Request::PredictStamped {
                                id: sent as u64,
                                trace_id: (d as u64) << 32 | sent as u64 | 1,
                                features: queries[qi].clone(),
                            })
                            .expect("driver send failed");
                        sent += 1;
                    }
                    recv_one(&mut client, &mut received);
                }
                while received < sent {
                    recv_one(&mut client, &mut received);
                }
                total_predicts.fetch_add(sent, Ordering::SeqCst);
            });
        }

        // Scrapers: hammer the admin HTTP routes and the snapshot API
        // concurrently with traffic and swaps; every read must be
        // internally consistent.
        for _ in 0..2 {
            let (done, admin_addr) = (&done, admin_addr.as_str());
            scope.spawn(move || {
                let mut scrapes = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let json = http_get(admin_addr, "/metrics.json").expect("scrape failed");
                    assert!(
                        json.contains("\"version\": 3"),
                        "metrics.json is not schema v3"
                    );
                    assert!(json.contains("\"window\""), "v3 window header missing");
                    let prom = http_get(admin_addr, "/metrics").expect("prom scrape failed");
                    assert!(
                        prom.contains("lookhd_serve_responses_ok"),
                        "prometheus render missing serve counters"
                    );
                    // Same data source the admin serves: the full torn-read
                    // and ordering audit on a live concurrent snapshot.
                    let snapshot = obs::snapshot();
                    assert_snapshot_consistent(&snapshot);
                    for c in snapshot
                        .counters
                        .iter()
                        .filter(|c| c.name == "serve.predictions")
                    {
                        let kernel = c.labels.iter().find(|(k, _)| k == "kernel");
                        let version = c.labels.iter().find(|(k, _)| k == "model_version");
                        assert_eq!(
                            kernel.map(|(_, v)| v.as_str()),
                            Some("lut"),
                            "serve.predictions missing kernel label: {:?}",
                            c.labels
                        );
                        let version: u64 = version
                            .map(|(_, v)| v.parse().expect("non-numeric model_version"))
                            .expect("serve.predictions missing model_version label");
                        assert!(
                            (1..=ROUNDS as u64 + 1).contains(&version),
                            "scrape saw a version label ({version}) that was never live"
                        );
                    }
                    // Health stays green while serving (no SLO, no drain).
                    let (status, _) =
                        http_get_status(admin_addr, "/healthz").expect("healthz failed");
                    assert_eq!(status, 200, "healthz degraded while healthy");
                    scrapes += 1;
                }
                assert!(scrapes > 0, "scraper never ran");
            });
        }

        // The feedback thread drives the hot-swaps: strict round trips,
        // one refresh per round.
        let mut client = Client::connect(addr).expect("feedback connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut fed = 0u64;
        for round in 0..ROUNDS {
            for _ in 0..FOLDS_PER_ROUND {
                let i = (fed as usize * 11 + round) % xs.len();
                match client
                    .feedback(fed, u32::try_from(ys[i]).unwrap(), &xs[i])
                    .expect("feedback failed")
                {
                    Response::FeedbackAck { id, .. } => assert_eq!(id, fed),
                    other => panic!("unexpected feedback response {other:?}"),
                }
                fed += 1;
            }
            match client
                .refresh(9_000 + round as u64)
                .expect("refresh failed")
            {
                Response::RefreshAck { version, .. } => {
                    assert_eq!(version, round as u64 + 2, "swap version out of order");
                }
                other => panic!("unexpected refresh response {other:?}"),
            }
        }
        done.store(true, Ordering::SeqCst);
    });

    let final_version = ROUNDS as u64 + 1;
    assert_eq!(handle.model_version(), final_version);

    // One more predict after the last swap pins traffic on the final
    // version's label set.
    let mut client = Client::connect(addr).expect("connect failed");
    match client
        .predict_stamped(7, &queries[0])
        .expect("predict failed")
    {
        Response::PredictStamped { version, .. } => assert_eq!(version, final_version),
        other => panic!("unexpected response {other:?}"),
    }
    let total = total_predicts.load(Ordering::SeqCst) as u64 + 1;

    // The atomic-flip ledger: every ok predict bumped exactly one
    // version-labeled serve.predictions cell, so the per-version label
    // sets partition the request count exactly — a response counted
    // under two versions (or none) during a swap would break the sum.
    let snapshot = obs::snapshot();
    assert_snapshot_consistent(&snapshot);
    assert_eq!(
        snapshot.counter("serve.predictions"),
        total,
        "version-labeled predictions do not partition the request count"
    );
    assert!(
        snapshot.counter_labeled(
            "serve.predictions",
            &[
                ("kernel", "lut"),
                ("model_version", &final_version.to_string())
            ],
        ) > 0,
        "no traffic recorded under the post-swap model_version label"
    );
    let labeled_versions: Vec<&str> = snapshot
        .counters
        .iter()
        .filter(|c| c.name == "serve.predictions")
        .filter_map(|c| c.labels.iter().find(|(k, _)| k == "model_version"))
        .map(|(_, v)| v.as_str())
        .collect();
    assert!(
        labeled_versions.len() >= 2,
        "expected traffic on at least two model versions, saw {labeled_versions:?}"
    );

    // The Prometheus render carries the same dimensional labels.
    let prom = http_get(&admin_addr, "/metrics").expect("prom scrape failed");
    assert!(
        prom.contains(&format!(
            "lookhd_serve_predictions{{kernel=\"lut\",model_version=\"{final_version}\"}}"
        )),
        "prometheus output missing the dimensional predictions counter:\n{prom}"
    );
    assert!(
        prom.contains("reactor=\"0\"") && prom.contains("worker=\"0\""),
        "prometheus output missing reactor/worker labels"
    );

    // Shutdown starts the drain; /healthz must degrade to 503 with the
    // reason in the body.
    handle.shutdown();
    let (status, body) = http_get_status(&admin_addr, "/healthz").expect("healthz failed");
    assert_eq!(status, 503, "draining server still reported healthy");
    assert!(
        body.contains("draining"),
        "503 body does not name the drain: {body:?}"
    );
    handle.join();
    admin.shutdown();
    admin.join();

    obs::set_enabled(false);
    obs::reset();
}

#[test]
fn snapshot_is_sorted_and_deterministic_under_8_writer_threads() {
    let _guard = obs_guard();
    obs::reset();
    obs::set_enabled(true);
    // Freeze the window clock so windowed aggregates cannot roll
    // between the two back-to-back snapshots compared below.
    obs::set_window_epoch_for_test(500);

    const WRITERS: usize = 8;
    const OPS: usize = 20_000;

    // Every writer hits its own labeled cell of the same metric names
    // plus one shared unlabeled counter — the worst case for both the
    // shard fold (merge across shards) and the sort (same name, many
    // label sets).
    let shared = obs::intern_counter("scrape.shared", &[]);
    let per_thread: Vec<(obs::MetricId, obs::SpanId)> = (0..WRITERS)
        .map(|t| {
            let label = t.to_string();
            (
                obs::intern_counter("scrape.ops", &[("writer", &label)]),
                obs::intern_span("scrape/work", &[("writer", &label)]),
            )
        })
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        // A concurrent auditor snapshots throughout the write storm.
        let auditor = scope.spawn(move || {
            let mut taken = 0usize;
            while !stop.load(Ordering::SeqCst) {
                assert_snapshot_consistent(&obs::snapshot());
                taken += 1;
            }
            taken
        });
        let writers: Vec<_> = (0..WRITERS)
            .map(|t| {
                let per_thread = &per_thread;
                scope.spawn(move || {
                    let (counter, span) = per_thread[t];
                    for i in 0..OPS {
                        obs::counter_id(counter, 1);
                        obs::counter_id(shared, 1);
                        obs::record_id(span, Duration::from_nanos((i % 4096) as u64 + 1));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer panicked");
        }
        stop.store(true, Ordering::SeqCst);
        assert!(auditor.join().expect("auditor panicked") > 0);
    });

    // Quiesced + frozen clock: the fold is exact and repeatable.
    let a = obs::snapshot();
    let b = obs::snapshot();
    assert_snapshot_consistent(&a);
    assert_eq!(
        a, b,
        "back-to-back snapshots diverged after writers stopped"
    );

    assert_eq!(a.counter("scrape.shared"), (WRITERS * OPS) as u64);
    for t in 0..WRITERS {
        let label = t.to_string();
        assert_eq!(
            a.counter_labeled("scrape.ops", &[("writer", &label)]),
            OPS as u64,
            "writer {t} lost counter increments"
        );
    }
    let work: Vec<_> = a.spans.iter().filter(|s| s.path == "scrape/work").collect();
    assert_eq!(
        work.len(),
        WRITERS,
        "expected one span entry per writer label"
    );
    for s in &work {
        assert_eq!(s.count, OPS as u64, "span {:?} lost observations", s.labels);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "histogram drifted");
    }

    obs::set_window_epoch_for_test(0);
    obs::set_enabled(false);
    obs::reset();
}
