//! Property-based tests of model compression (Eq. 4/5 invariants).

use lookhd_paper::hdc::hv::DenseHv;
use lookhd_paper::hdc::model::ClassModel;
use lookhd_paper::lookhd::{CompressedModel, CompressionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_model(k: usize, d: usize, seed: u64) -> ClassModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = (0..k)
        .map(|_| DenseHv::from_vec((0..d).map(|_| rng.gen_range(-30..=30)).collect()))
        .collect();
    ClassModel::from_classes(classes).expect("model build failed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 5 exactness: without decorrelation, the compressed score of a
    /// class decomposes exactly into signal + noise, and summing the two
    /// reproduces the score.
    #[test]
    fn signal_plus_noise_equals_score(
        k in 2usize..10,
        seed in any::<u64>(),
    ) {
        let d = 512;
        let model = random_model(k, d, seed);
        let cfg = CompressionConfig::new().with_decorrelate(false);
        let cm = CompressedModel::compress(&model, &cfg).unwrap();
        let query = model.class(0).clone();
        let scores = cm.scores(&query).unwrap();
        let sn = cm.signal_noise(&model, &query).unwrap();
        for j in 0..k {
            let recomposed = sn[j].signal + sn[j].noise;
            prop_assert!(
                (recomposed - scores[j]).abs() < 1e-6,
                "class {j}: {} + {} != {}",
                sn[j].signal, sn[j].noise, scores[j]
            );
        }
    }

    /// One class per vector ⇒ no cross-talk at all: the noise term is
    /// exactly zero and predictions match the uncompressed model.
    #[test]
    fn one_class_per_vector_is_noise_free(
        k in 2usize..8,
        seed in any::<u64>(),
        qseed in any::<u64>(),
    ) {
        let d = 256;
        let model = random_model(k, d, seed);
        let cfg = CompressionConfig::new()
            .with_decorrelate(false)
            .with_max_classes_per_vector(1);
        let cm = CompressedModel::compress(&model, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(qseed);
        let query = DenseHv::from_vec((0..d).map(|_| rng.gen_range(-20..=20)).collect());
        let sn = cm.signal_noise(&model, &query).unwrap();
        for (j, s) in sn.iter().enumerate() {
            prop_assert!(s.noise.abs() < 1e-6, "class {j} noise {}", s.noise);
        }
        prop_assert_eq!(cm.n_vectors(), k);
    }

    /// Grouping never changes the class count, group vectors count is
    /// ⌈k / max⌉, and the paper's size accounting follows.
    #[test]
    fn grouping_and_size_accounting(
        k in 1usize..40,
        max_per in 1usize..16,
        seed in any::<u64>(),
    ) {
        let d = 128;
        let model = random_model(k, d, seed);
        let cfg = CompressionConfig::new().with_max_classes_per_vector(max_per);
        let cm = CompressedModel::compress(&model, &cfg).unwrap();
        prop_assert_eq!(cm.n_classes(), k);
        prop_assert_eq!(cm.n_vectors(), k.div_ceil(max_per));
        prop_assert_eq!(cm.size_bytes(), cm.n_vectors() * d * 4);
        prop_assert!(cm.size_bytes_with_keys() > cm.size_bytes());
    }

    /// An update toward (correct, wrong) strictly increases the correct
    /// class's score on that query and decreases the wrong one's.
    #[test]
    fn update_is_directionally_correct(
        k in 2usize..10,
        seed in any::<u64>(),
        correct in 0usize..10,
        wrong in 0usize..10,
    ) {
        let k = k.max(2);
        let (correct, wrong) = (correct % k, wrong % k);
        prop_assume!(correct != wrong);
        let d = 512;
        let model = random_model(k, d, seed);
        let cfg = CompressionConfig::new().with_decorrelate(false);
        let mut cm = CompressedModel::compress(&model, &cfg).unwrap();
        let query = model.class(correct).clone();
        let before = cm.scores(&query).unwrap();
        cm.update(correct, wrong, &query).unwrap();
        let after = cm.scores(&query).unwrap();
        prop_assert!(after[correct] > before[correct]);
        prop_assert!(after[wrong] < before[wrong]);
    }

    /// Compression is deterministic in the seed: same config ⇒ identical
    /// combined vectors; different key seeds ⇒ different combined vectors.
    #[test]
    fn compression_determinism(k in 2usize..8, seed in any::<u64>()) {
        let model = random_model(k, 128, seed);
        let cfg = CompressionConfig::new();
        let a = CompressedModel::compress(&model, &cfg).unwrap();
        let b = CompressedModel::compress(&model, &cfg).unwrap();
        prop_assert_eq!(a.combined(0), b.combined(0));
        let other = CompressedModel::compress(
            &model,
            &CompressionConfig::new().with_seed(cfg.seed ^ 1),
        )
        .unwrap();
        prop_assert_ne!(a.combined(0), other.combined(0));
    }
}
