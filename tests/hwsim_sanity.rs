//! Sanity and shape checks on the hardware cost models: monotonicity,
//! paper-band ratios, and feasibility rules.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hwsim::fpga::FpgaPhase;
use lookhd_paper::hwsim::{CpuModel, FpgaModel, GpuModel, WorkloadShape};

fn shape_for(app: App, q: usize) -> WorkloadShape {
    let p = app.profile();
    WorkloadShape {
        n_features: p.n_features,
        q,
        dim: 2000,
        n_classes: p.n_classes,
        r: 5,
        max_classes_per_vector: 12,
        train_samples: p.default_train_per_class * p.n_classes,
        retrain_epochs: 10,
        avg_updates_per_epoch: p.default_train_per_class * p.n_classes / 10,
    }
}

#[test]
fn fpga_training_speedups_land_in_paper_band() {
    // Paper: 5-app average 28.3x (q=2) and 14.1x (q=4), q=2 > q=4 > q=8.
    let fpga = FpgaModel::kc705();
    let mut means = Vec::new();
    for q in [2usize, 4, 8] {
        let mut ratios = Vec::new();
        for app in App::ALL {
            let look = shape_for(app, q);
            let mut base = look;
            base.q = app.profile().paper_q_baseline;
            let f_base = fpga.initial_training_cost(&base, FpgaPhase::BaselineTraining);
            let f_look = fpga.initial_training_cost(&look, FpgaPhase::LookHdTraining);
            ratios.push(f_look.speedup_over(&f_base));
        }
        means.push(lookhd_paper::hwsim::geomean(&ratios));
    }
    assert!(
        (10.0..100.0).contains(&means[0]),
        "q=2 speedup {means:?} out of paper band"
    );
    assert!(means[0] > means[1], "q=2 must beat q=4: {means:?}");
    assert!(means[1] > means[2], "q=4 must beat q=8: {means:?}");
}

#[test]
fn search_speedup_grows_with_class_count() {
    // The §II-D scalability complaint: baseline *associative search* cost
    // grows with k while compressed search barely does (encoding costs are
    // class-independent, so the whole-inference ratio is diluted by n).
    let fpga = FpgaModel::kc705();
    let ratio_for = |app: App| -> f64 {
        let p = app.profile();
        let shape = shape_for(app, p.paper_q_lookhd);
        let base = fpga.execute_as(&shape.baseline_search(), FpgaPhase::BaselineInference);
        let look = fpga.execute_as(&shape.lookhd_search(), FpgaPhase::LookHdInference);
        look.speedup_over(&base)
    };
    let speech = ratio_for(App::Speech); // k = 26
    let face = ratio_for(App::Face); // k = 2
    assert!(
        speech > face,
        "k=26 should gain more than k=2: {speech} vs {face}"
    );
    // And the whole-inference path still favours LookHD everywhere.
    for app in App::ALL {
        let p = app.profile();
        let shape = shape_for(app, p.paper_q_lookhd);
        let base = fpga.execute_as(&shape.baseline_inference(), FpgaPhase::BaselineInference);
        let look = fpga.execute_as(&shape.lookhd_inference(), FpgaPhase::LookHdInference);
        assert!(
            look.speedup_over(&base) > 1.0,
            "{:?} should win end to end",
            app
        );
    }
}

#[test]
fn cpu_costs_are_monotone_in_work() {
    let cpu = CpuModel::cortex_a53();
    let small = shape_for(App::Extra, 4);
    let mut big = small;
    big.dim *= 2;
    assert!(
        cpu.execute(&big.baseline_inference()).seconds
            > cpu.execute(&small.baseline_inference()).seconds
    );
    let mut more_classes = small;
    more_classes.n_classes *= 2;
    assert!(
        cpu.execute(&more_classes.baseline_search()).seconds
            > cpu.execute(&small.baseline_search()).seconds
    );
    let mut more_samples = small;
    more_samples.train_samples *= 3;
    assert!(
        cpu.execute(&more_samples.baseline_initial_training())
            .seconds
            > cpu.execute(&small.baseline_initial_training()).seconds
    );
}

#[test]
fn gpu_wins_time_fpga_wins_energy() {
    // Table III's shape.
    let gpu = GpuModel::gtx1080();
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let shape = shape_for(App::Speech, 4);
    let work = shape.baseline_training();
    let g = gpu.execute(&work);
    let c = cpu.execute(&work);
    let f = fpga.execute_as(&work, FpgaPhase::BaselineTraining);
    assert!(
        g.speedup_over(&c) > 50.0,
        "GPU should crush the A53 on time"
    );
    assert!(
        f.energy_efficiency_over(&g) > 5.0,
        "FPGA should be far more energy-efficient than the GPU"
    );
}

#[test]
fn bram_feasibility_matches_paper_design_points() {
    // q=2/q=4 with r=5 fit the KC705; q=16 with r=5 does not (§III-B's
    // motivation for quantization reduction).
    let fpga = FpgaModel::kc705();
    for app in App::ALL {
        let fits2 = fpga.tables_fit(&shape_for(app, 2));
        let fits4 = fpga.tables_fit(&shape_for(app, 4));
        let fits16 = fpga.tables_fit(&shape_for(app, 16));
        assert!(fits2 && fits4, "{app:?}: q=2/4 tables must fit");
        assert!(!fits16, "{app:?}: q=16, r=5 tables must not fit");
    }
}

#[test]
fn model_size_reduction_matches_class_count() {
    for app in App::ALL {
        let p = app.profile();
        let mut shape = shape_for(app, p.paper_q_lookhd);
        shape.max_classes_per_vector = p.n_classes; // fully compressed
        let (base, compressed) = shape.model_bytes();
        assert_eq!(base / compressed, p.n_classes as u64, "{}", p.name);
    }
}

#[test]
fn lookhd_initial_training_cycles_scale_with_q() {
    let fpga = FpgaModel::kc705();
    let c2 = fpga.lookhd_initial_training_cycles(&shape_for(App::Speech, 2));
    let c4 = fpga.lookhd_initial_training_cycles(&shape_for(App::Speech, 4));
    let c8 = fpga.lookhd_initial_training_cycles(&shape_for(App::Speech, 8));
    assert!(
        c2 < c4 && c4 < c8,
        "cycles must grow with q: {c2} {c4} {c8}"
    );
}
