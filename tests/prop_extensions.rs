//! Property-based tests for the extension modules: online training,
//! clustering, and sequence encoding.

use lookhd_paper::hdc::cluster::kmeans;
use lookhd_paper::hdc::hv::{BipolarHv, DenseHv};
use lookhd_paper::hdc::sequence::NgramEncoder;
use lookhd_paper::lookhd::online::{OnlineConfig, OnlineTrainer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Online training is permutation-sensitive in magnitudes but its
    /// class count, dimension, and determinism invariants always hold.
    #[test]
    fn online_trainer_invariants(
        k in 2usize..6,
        dim in 32usize..128,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<(DenseHv, usize)> = (0..20)
            .map(|i| (DenseHv::from(&BipolarHv::random(dim, &mut rng)), i % k))
            .collect();
        let run = || -> lookhd_paper::hdc::model::ClassModel {
            let mut t = OnlineTrainer::new(k, dim, OnlineConfig::new()).unwrap();
            for (h, y) in &samples {
                t.observe(h, *y).unwrap();
            }
            t.finalize().unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.n_classes(), k);
        prop_assert_eq!(a.dim(), dim);
        for c in 0..k {
            prop_assert_eq!(a.class(c), b.class(c), "training must be deterministic");
        }
    }

    /// K-means always returns k centroids, a full assignment, and every
    /// assignment index in range.
    #[test]
    fn kmeans_structural_invariants(
        k in 1usize..5,
        n in 5usize..30,
        dim in 16usize..64,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<DenseHv> = (0..n)
            .map(|_| DenseHv::from(&BipolarHv::random(dim, &mut rng)))
            .collect();
        let clustering = kmeans(&xs, k, 10, &mut rng).unwrap();
        prop_assert_eq!(clustering.k(), k);
        prop_assert_eq!(clustering.assignments.len(), n);
        prop_assert!(clustering.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(clustering.sizes().iter().sum::<usize>(), n);
        // Every sample's assigned centroid is its argmax-cosine centroid.
        for (h, &a) in xs.iter().zip(&clustering.assignments) {
            prop_assert_eq!(clustering.assign(h).unwrap(), a);
        }
    }

    /// Sequence encoding: deterministic, dimension-stable, and bundles of
    /// the same grams in any order produce the same hypervector (bundling
    /// commutes) while different n-gram sizes generally differ.
    #[test]
    fn sequence_encoding_invariants(
        text in "[a-d]{4,24}",
        seed in any::<u64>(),
    ) {
        let dim = 512;
        let mut enc = NgramEncoder::<char>::new(dim, 3, seed).unwrap();
        let symbols: Vec<char> = text.chars().collect();
        let a = enc.encode(&symbols).unwrap();
        let b = enc.encode(&symbols).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.dim(), dim);
        // Magnitudes are bounded by the n-gram count.
        let grams = symbols.len().saturating_sub(2).max(1) as i32;
        prop_assert!(a.max_abs() <= grams);
    }
}
