//! Integration test of the grid-sweep API on an application profile.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::lookhd::sweep::{run_sweep, to_csv, SweepGrid, SweepRecord};
use lookhd_paper::lookhd::LookHdConfig;

#[test]
fn sweep_covers_grid_and_reports_csv() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(71);
    let grid = SweepGrid::new(LookHdConfig::new().with_dim(256).with_retrain_epochs(1))
        .over_qs(vec![2, 4])
        .over_rs(vec![3, 5]);
    assert_eq!(grid.len(), 4);
    let mut progress = 0usize;
    let records = run_sweep(
        &grid,
        &data.train.features,
        &data.train.labels,
        &data.test.features,
        &data.test.labels,
        |_| progress += 1,
    )
    .expect("sweep failed");
    assert_eq!(records.len(), 4);
    assert_eq!(progress, 4);
    for r in &records {
        let chance = 1.0 / profile.n_classes as f64;
        assert!(
            r.accuracy > chance * 2.0,
            "grid point q={} r={} too weak: {}",
            r.config.q,
            r.config.r,
            r.accuracy
        );
        assert!(r.accuracy_uncompressed >= r.accuracy - 0.15);
        assert!(r.n_vectors >= 1);
    }
    let csv = to_csv(&records);
    assert!(csv.starts_with(SweepRecord::CSV_HEADER));
    assert_eq!(csv.lines().count(), 5);
    // CSV rows parse back as numbers.
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), 7);
        assert!(cells[3].parse::<f64>().is_ok());
    }
}
