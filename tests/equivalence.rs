//! Cross-crate equivalence tests: LookHD's factorizations must be exact.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::encoding::Encode;
use lookhd_paper::hdc::levels::{LevelMemory, LevelScheme};
use lookhd_paper::hdc::quantize::{Quantization, Quantizer};
use lookhd_paper::hdc::train::initial_fit;
use lookhd_paper::lookhd::chunking::ChunkLayout;
use lookhd_paper::lookhd::encoder::LookupEncoder;
use lookhd_paper::lookhd::lut::TableMode;
use lookhd_paper::lookhd::trainer::CounterTrainer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counter-based training equals encode-and-bundle, bit for bit, on a
/// realistic application profile (PHYSICAL: n = 52, k = 12).
#[test]
fn counter_training_equals_bundling_on_app_data() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(21);
    let mut rng = StdRng::seed_from_u64(7);
    let levels = LevelMemory::generate(512, 2, LevelScheme::RandomFlips, &mut rng)
        .expect("level generation failed");
    let quantizer = Quantizer::fit(Quantization::Equalized, &data.train_values(), 2)
        .expect("quantizer fit failed");
    let layout = ChunkLayout::new(profile.n_features, 5, 2).expect("layout failed");
    let encoder = LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, 7)
        .expect("encoder build failed");

    let counter_model = CounterTrainer::fit(
        &encoder,
        &data.train.features,
        &data.train.labels,
        profile.n_classes,
    )
    .expect("counter training failed");

    let encoded = encoder
        .encode_batch(&data.train.features)
        .expect("encoding failed");
    let bundled =
        initial_fit(&encoded, &data.train.labels, profile.n_classes).expect("bundling failed");

    for c in 0..profile.n_classes {
        assert_eq!(
            counter_model.class(c),
            bundled.class(c),
            "class {c} differs"
        );
    }
}

/// Materialized and on-the-fly lookup tables encode identically across a
/// whole dataset (including the partial final chunk: 52 = 10·5 + 2).
#[test]
fn table_modes_agree_across_dataset() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(22);
    let mut rng = StdRng::seed_from_u64(8);
    let levels = LevelMemory::generate(256, 4, LevelScheme::RandomFlips, &mut rng)
        .expect("level generation failed");
    let quantizer = Quantizer::fit(Quantization::Equalized, &data.train_values(), 4)
        .expect("quantizer fit failed");
    let layout = ChunkLayout::new(profile.n_features, 5, 4).expect("layout failed");
    let a = LookupEncoder::new(
        layout,
        &levels,
        quantizer.clone(),
        TableMode::Materialized,
        9,
    )
    .expect("encoder build failed");
    let b = LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 9)
        .expect("encoder build failed");
    for x in data.train.features.iter().take(40) {
        assert_eq!(
            a.encode(x).expect("encode failed"),
            b.encode(x).expect("encode failed")
        );
    }
}

/// The lookup encoder with the maximum supported chunk size (bounded by
/// the 48-bit address width) degenerates toward one chunk; with r = 1
/// every feature is its own chunk. Both must remain valid encoders
/// producing D-dimensional integer vectors with bounded entries.
#[test]
fn chunk_size_extremes_are_valid() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(23);
    // q = 2 ⇒ 1 bit per codebook ⇒ r ≤ 48.
    for r in [1usize, profile.n_features.min(48)] {
        let mut rng = StdRng::seed_from_u64(10);
        let levels = LevelMemory::generate(128, 2, LevelScheme::RandomFlips, &mut rng)
            .expect("level generation failed");
        let quantizer = Quantizer::fit(Quantization::Equalized, &data.train_values(), 2)
            .expect("quantizer fit failed");
        let layout = ChunkLayout::new(profile.n_features, r, 2).expect("layout failed");
        let enc = LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 11)
            .expect("encoder build failed");
        let h = enc.encode(&data.train.features[0]).expect("encode failed");
        assert_eq!(h.dim(), 128);
        assert!(h.max_abs() as usize <= profile.n_features);
    }
}
