//! Property test: `obs::Snapshot::to_json` emits *standard* JSON for
//! arbitrary span and counter names — quotes, backslashes, control
//! characters, and non-ASCII included. Each case round-trips the
//! snapshot through `python3 -c "import json"` (a second, independent
//! JSON implementation) and compares per-name fingerprints (character
//! count + codepoint sum) computed on both sides, so an escaping bug
//! cannot hide behind "it parsed".
//!
//! Cases are few (each spawns a python3 process) but each case batches
//! several adversarial names.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

use lookhd_paper::obs;
use proptest::prelude::*;

/// Characters chosen to stress every branch of the JSON escaper: the
/// two mandatory escapes, the named control escapes, bare control
/// characters (must become `\u00XX`), DEL, multi-byte UTF-8, and an
/// astral-plane scalar, plus benign filler.
const PALETTE: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{b}', '\u{1f}', '\u{7f}', 'é', '∆', '日', '🦀', 'a',
    'Z', '0', ' ', '/', '<', '&',
];

/// The global obs registry is process-wide; cases must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Decodes a flat byte stream into 1..=8-char names over [`PALETTE`].
fn names_from_bytes(bytes: &[u8]) -> Vec<String> {
    bytes
        .chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&b| PALETTE[b as usize % PALETTE.len()])
                .collect()
        })
        .collect()
}

/// `(char count, codepoint sum)` — the fingerprint python echoes back.
fn fingerprint(name: &str) -> (u64, u64) {
    (
        name.chars().count() as u64,
        name.chars().map(|c| c as u64).sum(),
    )
}

/// Parses python's `count sum` echo lines.
fn parse_echo(stdout: &str) -> Vec<(u64, u64)> {
    stdout
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let count = it.next().and_then(|v| v.parse().ok()).expect("echo count");
            let sum = it.next().and_then(|v| v.parse().ok()).expect("echo sum");
            (count, sum)
        })
        .collect()
}

const PY_VALIDATE: &str = r#"
import json, sys
doc = json.load(sys.stdin)
assert doc["version"] == 3, doc["version"]
w = doc["window"]
assert w["short_secs"] < w["long_secs"], w
for s in doc["spans"]:
    assert isinstance(s["labels"], dict), s
    assert s["w10"]["count"] <= s["count"] and s["w60"]["count"] <= s["count"], s
    assert isinstance(s["exemplars"], list), s
for c in doc["counters"]:
    assert isinstance(c["labels"], dict), c
    assert c["w10"] <= c["value"] and c["w60"] <= c["value"], c
for name in sorted(s["path"] for s in doc["spans"]):
    print(len(name), sum(ord(c) for c in name))
print("---")
for name in sorted(c["name"] for c in doc["counters"]):
    print(len(name), sum(ord(c) for c in name))
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary names recorded as spans and counters come back from an
    /// independent JSON parser with identical fingerprints.
    #[test]
    fn snapshot_json_is_standard_json_for_arbitrary_names(
        raw in proptest::collection::vec(any::<u8>(), 1..64),
        split in any::<bool>(),
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        obs::reset();
        obs::set_enabled(true);
        let names = names_from_bytes(&raw);
        // Alternate which table each name lands in (and sometimes both),
        // so spans and counters both see adversarial input.
        for (i, name) in names.iter().enumerate() {
            if split && i % 2 == 0 {
                obs::record(name, Duration::from_nanos(i as u64 + 1));
            } else {
                obs::counter(name, i as u64 + 1);
            }
            if i % 3 == 0 {
                obs::record(name, Duration::from_nanos(7));
            }
        }
        let json = obs::snapshot().to_json();
        obs::set_enabled(false);
        obs::reset();

        // Expected fingerprints, sorted the way python's sorted() sorts
        // str (codepoint order == UTF-8 byte order).
        let mut span_names = BTreeSet::new();
        let mut counter_names = BTreeSet::new();
        for (i, name) in names.iter().enumerate() {
            if split && i % 2 == 0 {
                span_names.insert(name.clone());
            } else {
                counter_names.insert(name.clone());
            }
            if i % 3 == 0 {
                span_names.insert(name.clone());
            }
        }

        let mut child = Command::new("python3")
            .args(["-c", PY_VALIDATE])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("python3 must be available (ci.sh depends on it)");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(json.as_bytes())
            .expect("write to python stdin");
        let out = child.wait_with_output().expect("python3 did not run");
        prop_assert!(
            out.status.success(),
            "python rejected the snapshot JSON:\n{}\n--- document ---\n{json}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("python echo not UTF-8");
        let (span_part, counter_part) =
            stdout.split_once("---").expect("echo separator missing");
        let expected_spans: Vec<(u64, u64)> =
            span_names.iter().map(|n| fingerprint(n)).collect();
        let expected_counters: Vec<(u64, u64)> =
            counter_names.iter().map(|n| fingerprint(n)).collect();
        prop_assert_eq!(parse_echo(span_part), expected_spans);
        prop_assert_eq!(parse_echo(counter_part), expected_counters);
    }
}

/// A fixed worst-case name exercises every escaper branch in one shot
/// and survives python verbatim (deterministic companion to the
/// property above).
#[test]
fn kitchen_sink_name_round_trips_through_python() {
    let _guard = OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    obs::reset();
    obs::set_enabled(true);
    let name = "a\"b\\c\nd\re\tf\u{1}g\u{1f}h\u{7f}i∆🦀/日";
    obs::counter(name, 5);
    obs::record(name, Duration::from_micros(3));
    let json = obs::snapshot().to_json();
    obs::set_enabled(false);
    obs::reset();

    let py = r#"
import json, sys
doc = json.load(sys.stdin)
[counter] = doc["counters"]
[span] = doc["spans"]
assert counter["value"] == 5, counter
assert counter["name"] == span["path"]
sys.stdout.write(counter["name"])
"#;
    let mut child = Command::new("python3")
        .args(["-c", py])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("python3 must be available (ci.sh depends on it)");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(json.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "python rejected the snapshot JSON:\n{}\n--- document ---\n{json}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8(out.stdout).unwrap(), name);
}
