//! Persistence round-trips at classifier scale: a trained LookHD
//! classifier serialized to bytes must predict identically after reload.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::persist::{model_from_bytes, model_to_bytes};
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{CompressedModel, LookHdClassifier, LookHdConfig};

#[test]
fn classifier_round_trips_through_bytes() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(41);
    let config = LookHdConfig::new().with_dim(512).with_retrain_epochs(2);
    let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
        .expect("training failed");
    let bytes = clf.to_bytes().expect("serialization failed");
    let back = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    // Identical predictions on the whole test split — both compressed and
    // uncompressed paths.
    for x in &data.test.features {
        assert_eq!(
            clf.predict(x).expect("predict failed"),
            back.predict(x).expect("predict failed")
        );
        assert_eq!(
            clf.predict_uncompressed(x).expect("predict failed"),
            back.predict_uncompressed(x).expect("predict failed")
        );
    }
    // The regenerated encoder is bit-identical.
    assert_eq!(
        clf.encode(&data.test.features[0]).expect("encode failed"),
        back.encode(&data.test.features[0]).expect("encode failed")
    );
}

#[test]
fn classifier_rejects_corrupted_bytes() {
    let profile = App::Face.profile();
    let data = profile.generate_small(42);
    let clf = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(256).with_retrain_epochs(0),
        &data.train.features,
        &data.train.labels,
    )
    .expect("training failed");
    let bytes = clf.to_bytes().expect("serialization failed");
    assert!(LookHdClassifier::from_bytes(&bytes[..10]).is_err());
    let mut bad = bytes.clone();
    bad[1] = b'?';
    assert!(LookHdClassifier::from_bytes(&bad).is_err());
    assert!(LookHdClassifier::from_bytes(&[]).is_err());
}

#[test]
fn uncompressed_and_compressed_models_round_trip_separately() {
    let profile = App::Extra.profile();
    let data = profile.generate_small(43);
    let clf = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(256).with_retrain_epochs(1),
        &data.train.features,
        &data.train.labels,
    )
    .expect("training failed");
    // hdc::persist path for the uncompressed model.
    let model_bytes = model_to_bytes(clf.model()).expect("model serialization failed");
    let model = model_from_bytes(&model_bytes).expect("model reload failed");
    let q = clf.encode(&data.test.features[0]).expect("encode failed");
    assert_eq!(
        model.predict(&q).expect("predict failed"),
        clf.model().predict(&q).expect("predict failed")
    );
    // lookhd compressed-model path.
    let cm_bytes = clf.compressed().to_bytes().expect("serialization failed");
    let cm = CompressedModel::from_bytes(&cm_bytes).expect("compressed reload failed");
    assert_eq!(
        cm.predict(&q).expect("predict failed"),
        clf.compressed().predict(&q).expect("predict failed")
    );
}
