//! Protocol corruption sweep for the `lookhd-serve` wire format, in the
//! style of `tests/persist_corruption.rs`: bytes arriving over a socket
//! cross a trust boundary, so the decoder must never panic, hang, or
//! preallocate multi-GB buffers on hostile input. Every truncation of a
//! valid request frame must yield a clean protocol error, every
//! single-byte flip must decode cleanly or fail cleanly, and oversized
//! length headers must be rejected against a cap *before* allocation —
//! at the codec layer and against a live server. The LHF1 feedback
//! family (feedback / refresh / stamped predict) is held to the exact
//! same bar, including against a live `start_online` server whose
//! trainer thread must survive every sweep.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, Request, Response, WireError, MAX_FEATURES, MAX_FRAME_LEN,
};
use lookhd_paper::serve::{self, Client, ServeConfig};

fn sample_request() -> Request {
    Request::Predict {
        id: 0x0123_4567_89ab_cdef,
        trace_id: 0,
        features: vec![0.25, -1.5, 3.75, 0.0, 1e12],
    }
}

/// The same request as a v2 frame (non-zero trace id selects the traced
/// layout on the wire).
fn sample_traced_request() -> Request {
    Request::Predict {
        id: 0x0123_4567_89ab_cdef,
        trace_id: 0xfeed_f00d_dead_beef,
        features: vec![0.25, -1.5, 3.75, 0.0, 1e12],
    }
}

/// LHF1 sample frames: one of each feedback-family kind, v1 and v2
/// layouts — held to the same hardening bar as the predict family.
fn feedback_family_requests() -> Vec<Request> {
    let features = vec![0.25, -1.5, 3.75, 0.0, 1e12];
    let mut out = Vec::new();
    for trace_id in [0u64, 0xfeed_f00d_dead_beef] {
        out.push(Request::Feedback {
            id: 0x0123_4567_89ab_cdef,
            trace_id,
            label: 2,
            features: features.clone(),
        });
        out.push(Request::Refresh {
            id: 0x0123_4567_89ab_cdef,
            trace_id,
        });
        out.push(Request::PredictStamped {
            id: 0x0123_4567_89ab_cdef,
            trace_id,
            features: features.clone(),
        });
    }
    out
}

/// A full frame (length prefix + body) for the sample request.
fn framed(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, &encode_request(request)).unwrap();
    out
}

#[test]
fn feedback_request_truncated_at_every_length_errors() {
    for request in feedback_family_requests() {
        let body = encode_request(&request);
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "truncation at {cut}/{} parsed successfully ({request:?})",
                body.len()
            );
        }
        let mut longer = body.clone();
        longer.push(0);
        assert!(matches!(
            decode_request(&longer),
            Err(WireError::Trailing { .. })
        ));
    }
}

#[test]
fn feedback_response_truncated_at_every_length_errors() {
    for response in [
        Response::FeedbackAck {
            id: 7,
            trace_id: 0,
            version: 3,
            observed: 41,
        },
        Response::RefreshAck {
            id: 7,
            trace_id: 0xabcd,
            version: 4,
        },
        Response::PredictStamped {
            id: 7,
            trace_id: 0,
            class: 2,
            version: 4,
        },
    ] {
        let body = encode_response(&response);
        for cut in 0..body.len() {
            assert!(
                decode_response(&body[..cut]).is_err(),
                "truncation at {cut}/{} parsed successfully ({response:?})",
                body.len()
            );
        }
    }
}

#[test]
fn feedback_request_survives_every_single_byte_flip() {
    for request in feedback_family_requests() {
        let body = encode_request(&request);
        for i in 0..body.len() {
            for flip in [0xFFu8, 0x01, 0x80] {
                let mut bad = body.clone();
                bad[i] ^= flip;
                if let Ok(back) = decode_request(&bad) {
                    let re = decode_request(&encode_request(&back)).unwrap();
                    assert_eq!(re, back);
                }
            }
        }
    }
}

/// An LHF1 body whose `n_features` lies past the cap must be rejected
/// against [`MAX_FEATURES`] before any allocation, like LHQ1.
#[test]
fn feedback_n_features_lie_is_rejected_before_allocation() {
    for request in feedback_family_requests() {
        let mut body = encode_request(&request);
        // The feature count sits 4 bytes before the feature payload —
        // find it by re-encoding with one fewer feature and diffing
        // lengths is overkill; just scan for the little-endian count.
        let Some(n) = (match &request {
            Request::Feedback { features, .. } | Request::PredictStamped { features, .. } => {
                Some(features.len() as u32)
            }
            _ => None,
        }) else {
            continue;
        };
        let payload = 8 * n as usize;
        let count_at = body.len() - payload - 4;
        assert_eq!(&body[count_at..count_at + 4], &n.to_le_bytes());
        body[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_request(&body) {
            Err(WireError::TooLarge { value, cap, .. }) => {
                assert_eq!(value, u32::MAX as usize);
                assert_eq!(cap, MAX_FEATURES);
            }
            other => panic!("n_features lie decoded as {other:?}"),
        }
    }
}

#[test]
fn request_body_truncated_at_every_length_errors() {
    for request in [sample_request(), sample_traced_request()] {
        let body = encode_request(&request);
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "truncation at {cut}/{} parsed successfully",
                body.len()
            );
        }
        let mut longer = body.clone();
        longer.push(0);
        assert!(matches!(
            decode_request(&longer),
            Err(WireError::Trailing { .. })
        ));
    }
}

#[test]
fn response_body_truncated_at_every_length_errors() {
    for response in [
        Response::Predict {
            id: 7,
            trace_id: 0,
            class: 3,
        },
        Response::Predict {
            id: 7,
            trace_id: 0xabcd,
            class: 3,
        },
        Response::Error {
            id: 9,
            trace_id: 0,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        },
        Response::Error {
            id: 9,
            trace_id: 42,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        },
    ] {
        let body = encode_response(&response);
        for cut in 0..body.len() {
            assert!(
                decode_response(&body[..cut]).is_err(),
                "truncation at {cut}/{} parsed successfully",
                body.len()
            );
        }
    }
}

#[test]
fn request_survives_every_single_byte_flip() {
    for request in [sample_request(), sample_traced_request()] {
        let body = encode_request(&request);
        for i in 0..body.len() {
            for flip in [0xFFu8, 0x01, 0x80] {
                let mut bad = body.clone();
                bad[i] ^= flip;
                // Structural corruption must error; payload corruption may
                // decode into a different-but-valid request. Either way: no
                // panic, and any Ok must still round-trip.
                if let Ok(back) = decode_request(&bad) {
                    let re = decode_request(&encode_request(&back)).unwrap();
                    assert_eq!(re, back);
                }
            }
        }
    }
}

#[test]
fn frame_length_corruption_never_overallocates() {
    let frame = framed(&sample_request());
    // Flip every byte of the 4-byte length prefix in every position: the
    // reader must reject over-cap lengths before allocating and hit a
    // clean truncation error for in-cap lies.
    for i in 0..4 {
        for flip in 1..=255u8 {
            let mut bad = frame.clone();
            bad[i] ^= flip;
            let claimed = u32::from_le_bytes([bad[0], bad[1], bad[2], bad[3]]) as usize;
            match read_frame(&mut std::io::Cursor::new(&bad)) {
                Ok(body) => assert!(body.len() <= MAX_FRAME_LEN && body.len() == claimed),
                Err(WireError::TooLarge { value, cap, .. }) => {
                    assert_eq!(value, claimed);
                    assert_eq!(cap, MAX_FRAME_LEN);
                }
                Err(WireError::Truncated { .. } | WireError::Io(_)) => {}
                Err(other) => panic!("unexpected framing error {other:?}"),
            }
        }
    }
}

#[test]
fn decoders_reject_arbitrary_magic_prefixes() {
    // All 256 first-byte values: only the genuine magic parses.
    let body = encode_request(&sample_request());
    for b in 0..=255u8 {
        let mut candidate = body.clone();
        candidate[0] = b;
        let result = decode_request(&candidate);
        if b == b'L' {
            assert!(result.is_ok());
        } else {
            assert!(matches!(result, Err(WireError::BadMagic)));
        }
    }
}

// ---------------------------------------------------------------------------
// Live-server sweeps
// ---------------------------------------------------------------------------

/// Sign-of-first-feature stub so the server sweep needs no training.
struct SignStub;

impl lookhd_paper::hdc::Classifier for SignStub {
    fn num_classes(&self) -> usize {
        2
    }

    fn predict(&self, features: &[f64]) -> lookhd_paper::hdc::Result<usize> {
        match features.first() {
            Some(&v) => Ok(usize::from(v >= 0.0)),
            None => Err(lookhd_paper::hdc::HdcError::invalid_dataset("empty")),
        }
    }
}

fn start_server() -> serve::ServerHandle {
    serve::start(
        "127.0.0.1:0",
        Arc::new(SignStub),
        ServeConfig::new().with_workers(2),
    )
    .expect("bind failed")
}

/// Checks the server at `addr` still answers a well-formed request.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.predict(1, &[1.0]).expect("round trip failed") {
        Response::Predict {
            id: 1,
            trace_id: 0,
            class: 1,
        } => {}
        other => panic!("unexpected response {other:?}"),
    }
}

/// Every truncation of a valid frame, sent raw and then half-closed,
/// leaves the server alive and serving.
#[test]
fn live_server_survives_every_frame_truncation() {
    let handle = start_server();
    let addr = handle.addr();
    for frame in [framed(&sample_request()), framed(&sample_traced_request())] {
        for cut in 0..frame.len() {
            let mut raw = TcpStream::connect(addr).expect("connect failed");
            raw.write_all(&frame[..cut]).expect("write failed");
            drop(raw); // mid-frame EOF
        }
    }
    assert_still_serving(addr);
    handle.shutdown();
    handle.join();
}

/// Every single-byte flip of a valid frame elicits a response or a clean
/// close — never a hang — and the server keeps serving afterwards.
#[test]
fn live_server_survives_every_single_byte_flip() {
    let handle = start_server();
    let addr = handle.addr();
    let frame = framed(&sample_request());
    for i in 0..frame.len() {
        let mut bad = frame.clone();
        bad[i] ^= 0xFF;
        let mut client = Client::connect(addr).expect("connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client.stream().write_all(&bad).expect("write failed");
        // A length-prefix flip usually leaves the server waiting for the
        // rest of a (now longer) frame; half-close the write side so it
        // sees EOF instead of waiting on this client forever.
        let _ = client.stream().shutdown(std::net::Shutdown::Write);
        // The server must answer (predict result, protocol error) or
        // close; blocking forever trips the read timeout and fails.
        match client.recv() {
            Ok(_) => {}
            Err(WireError::Io(e)) => assert!(
                e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut,
                "server hung on flipped byte {i}: {e}"
            ),
            Err(other) => panic!("malformed server response for flipped byte {i}: {other:?}"),
        }
    }
    assert_still_serving(addr);
    handle.shutdown();
    handle.join();
}

/// An oversized length header is rejected against the cap before any
/// allocation; the server answers with a protocol error (or closes) and
/// keeps running.
#[test]
fn live_server_rejects_oversized_length_headers() {
    let handle = start_server();
    let addr = handle.addr();
    for claimed in [u32::MAX, (MAX_FRAME_LEN as u32) + 1, 1 << 30] {
        let mut client = Client::connect(addr).expect("connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client
            .stream()
            .write_all(&claimed.to_le_bytes())
            .expect("write failed");
        client.stream().write_all(&[0u8; 16]).expect("write failed");
        match client.recv() {
            Ok(Response::Error { code, message, .. }) => {
                assert_eq!(code, ErrorCode::BadRequest);
                assert!(message.contains("limit"), "unexpected message: {message}");
            }
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(WireError::Io(_)) => {} // clean close is acceptable
            Err(other) => panic!("malformed server response: {other:?}"),
        }
    }
    assert_still_serving(addr);
    handle.shutdown();
    handle.join();
}

// ---------------------------------------------------------------------------
// Live-server LHF1 sweeps (online training enabled)
// ---------------------------------------------------------------------------

/// A real trained model: the LHF1 sweeps need `start_online`, which
/// derives a streaming trainer from the classifier.
fn start_online_server() -> serve::ServerHandle {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..30 {
        let base = [0.2, 0.8][i % 2];
        xs.push(vec![base, 1.0 - base, base, base, 1.0 - base]);
        ys.push(i % 2);
    }
    let config = lookhd_paper::lookhd::LookHdConfig::new()
        .with_dim(128)
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_adaptive_grouping(false);
    let model = lookhd_paper::lookhd::LookHdClassifier::fit(&config, &xs, &ys).expect("fit failed");
    serve::start_online(
        "127.0.0.1:0",
        model,
        ServeConfig::new().with_workers(2),
        serve::OnlineConfig::new(),
    )
    .expect("bind failed")
}

/// The online server still folds feedback and answers stamped predicts.
fn assert_still_training(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client
        .feedback(1, 0, &[0.2, 0.8, 0.2, 0.2, 0.8])
        .expect("feedback round trip failed")
    {
        Response::FeedbackAck { id: 1, .. } => {}
        other => panic!("unexpected response {other:?}"),
    }
    match client
        .predict_stamped(2, &[0.8, 0.2, 0.8, 0.8, 0.2])
        .expect("stamped round trip failed")
    {
        Response::PredictStamped { id: 2, .. } => {}
        other => panic!("unexpected response {other:?}"),
    }
}

/// Every truncation of every LHF1 frame kind, sent raw and half-closed,
/// leaves the online server alive — reactor, workers, and the trainer
/// thread.
#[test]
fn live_online_server_survives_every_feedback_frame_truncation() {
    let handle = start_online_server();
    let addr = handle.addr();
    for request in feedback_family_requests() {
        let frame = framed(&request);
        for cut in 0..frame.len() {
            let mut raw = TcpStream::connect(addr).expect("connect failed");
            raw.write_all(&frame[..cut]).expect("write failed");
            drop(raw); // mid-frame EOF
        }
    }
    assert_still_training(addr);
    handle.shutdown();
    handle.join();
}

/// Every single-byte flip of a feedback frame elicits a response or a
/// clean close — never a hang — and training keeps working afterwards.
#[test]
fn live_online_server_survives_every_feedback_byte_flip() {
    let handle = start_online_server();
    let addr = handle.addr();
    let frame = framed(&Request::Feedback {
        id: 3,
        trace_id: 0,
        label: 1,
        features: vec![0.25, -1.5, 3.75, 0.0, 1e12],
    });
    for i in 0..frame.len() {
        let mut bad = frame.clone();
        bad[i] ^= 0xFF;
        let mut client = Client::connect(addr).expect("connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client.stream().write_all(&bad).expect("write failed");
        let _ = client.stream().shutdown(std::net::Shutdown::Write);
        match client.recv() {
            Ok(_) => {}
            Err(WireError::Io(e)) => assert!(
                e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut,
                "server hung on flipped byte {i}: {e}"
            ),
            Err(other) => panic!("malformed server response for flipped byte {i}: {other:?}"),
        }
    }
    assert_still_training(addr);
    handle.shutdown();
    handle.join();
}

/// A feedback frame whose `n_features` lies (frame length in cap, count
/// past it) gets a BadRequest naming the limit; the connection is then
/// dropped (a `TooLarge` decode means the stream may be desynced — the
/// same answer-then-drop contract as LHQ1), and the server keeps
/// training for fresh connections.
#[test]
fn live_online_server_rejects_feedback_feature_count_lies() {
    let handle = start_online_server();
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut body = encode_request(&Request::Feedback {
        id: 9,
        trace_id: 0,
        label: 1,
        features: vec![1.0, 2.0],
    });
    let count_at = body.len() - 16 - 4;
    body[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    write_frame(client.stream(), &body).expect("write failed");
    // The id is unrecoverable once the body fails to decode; the error
    // comes back with id 0, and must name the feature-count limit.
    match client.recv().expect("recv failed") {
        Response::Error {
            id: 0,
            code,
            message,
            ..
        } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("limit"), "unexpected message: {message}");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // The poisoned connection is closed after the answer; a fresh one
    // keeps training.
    assert_still_training(addr);
    handle.shutdown();
    handle.join();
}

/// Garbage that parses as a frame but not as a request gets a BadRequest
/// error while the connection stays frame-aligned and usable.
#[test]
fn malformed_bodies_get_error_responses_without_dropping_the_connection() {
    let handle = start_server();
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut garbage = encode_request(&sample_request());
    garbage[0] = b'X'; // breaks the magic, not the framing
    write_frame(client.stream(), &garbage).expect("write failed");
    match client.recv().expect("recv failed") {
        Response::Error { id: 0, code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected response {other:?}"),
    }
    // Same connection still serves valid requests afterwards.
    match client.predict(5, &[2.0]).expect("round trip failed") {
        Response::Predict {
            id: 5,
            trace_id: 0,
            class: 1,
        } => {}
        other => panic!("unexpected response {other:?}"),
    }
    handle.shutdown();
    handle.join();
}
