//! Hot-swap soak: online counter training under live pipelined traffic.
//!
//! The acceptance bar of the online-training path: ≥ 1k feedback frames
//! folded into the live trainer while concurrent pipelined clients
//! stream version-stamped predicts, ≥ 3 model hot-swaps land mid-load,
//! and **every** stamped response is bit-identical to a direct predict
//! on the exact model version stamped on it — reconstructed
//! independently by replaying the same feedback stream into a local
//! [`StreamingTrainer`] (valid because `tests/online_differential.rs`
//! pins replay ≡ server-side fold, bit for bit). Zero requests may be
//! dropped or errored. A drain regression pins that a swap racing
//! queued feedback loses nothing, and the drift gate's fold/threshold
//! arms are pinned deterministically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{
    CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig, StreamingTrainer,
};
use lookhd_paper::serve::{start_online, Client, OnlineConfig, Request, Response, ServeConfig};

/// Well-separated 3-class training set (5 features) plus off-grid
/// queries — the serve-soak dataset shape.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.3 + t / 3.0, t * t, 0.9 - t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

fn trained() -> LookHdClassifier {
    let (xs, ys, _) = dataset();
    let config = LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_adaptive_grouping(false)
        .with_compression(CompressionConfig::new().with_decorrelate(false))
        .with_kernel(KernelSpec::lut());
    LookHdClassifier::fit(&config, &xs, &ys).expect("fit failed")
}

/// Feedback folds per refresh round; 4 rounds × 300 = 1200 total
/// (≥ 1k) and 4 swaps (≥ 3), all under concurrent predict load.
const ROUNDS: usize = 4;
const FOLDS_PER_ROUND: usize = 300;
const DRIVERS: usize = 6;
/// Outstanding stamped predicts per driver connection.
const WINDOW: usize = 3;

#[test]
fn soak_hotswaps_under_pipelined_load_stay_bit_identical_to_the_stamped_version() {
    let (xs, ys, queries) = dataset();
    let v1 = trained();
    // The local replica: replaying the identical feedback stream
    // reconstructs every server-side version bit for bit.
    let mut replica = StreamingTrainer::from_classifier(&v1).expect("replica failed");

    let handle = start_online(
        "127.0.0.1:0",
        v1.clone(),
        ServeConfig::new()
            .with_workers(2)
            .with_reactors(2)
            .with_max_batch(8),
        OnlineConfig::new(),
    )
    .expect("bind failed");
    let addr = handle.addr();

    // Version → the model that served it (version 1 = the initial fit;
    // versions 2..=ROUNDS+1 materialized at each refresh point).
    let expected: Mutex<HashMap<u64, LookHdClassifier>> = Mutex::new(HashMap::new());
    expected.lock().unwrap().insert(1, v1);
    let done = AtomicBool::new(false);
    // (query index, class, version) per driver, verified after the load.
    let observed: Mutex<Vec<(usize, u32, u64)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Drivers: pipelined stamped predicts until the trainer side is
        // done, so every swap happens under live concurrent load.
        for d in 0..DRIVERS {
            let (queries, done, observed) = (&queries, &done, &observed);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("driver connect failed");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut sent: Vec<usize> = Vec::new(); // id → query index
                let mut received = 0usize;
                let mut local = Vec::new();
                let recv_one = |client: &mut Client,
                                sent: &Vec<usize>,
                                received: &mut usize,
                                local: &mut Vec<(usize, u32, u64)>| {
                    match client.recv().expect("driver recv failed") {
                        Response::PredictStamped {
                            id, class, version, ..
                        } => {
                            let qi = sent[usize::try_from(id).unwrap()];
                            local.push((qi, class, version));
                            *received += 1;
                        }
                        other => panic!("driver {d}: unexpected response {other:?}"),
                    }
                };
                while !done.load(Ordering::SeqCst) {
                    while sent.len() - received < WINDOW {
                        let qi = (d + sent.len() * 7) % queries.len();
                        client
                            .send(&Request::PredictStamped {
                                id: sent.len() as u64,
                                trace_id: 0,
                                features: queries[qi].clone(),
                            })
                            .expect("driver send failed");
                        sent.push(qi);
                    }
                    recv_one(&mut client, &sent, &mut received, &mut local);
                }
                while received < sent.len() {
                    recv_one(&mut client, &sent, &mut received, &mut local);
                }
                assert_eq!(received, sent.len(), "driver {d} dropped responses");
                observed.lock().unwrap().extend(local);
            });
        }

        // The feedback thread: strict round trips, so the server folds
        // in exactly this order and the local replica can replay it.
        let mut client = Client::connect(addr).expect("feedback connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut fed = 0u64;
        for round in 0..ROUNDS {
            for _ in 0..FOLDS_PER_ROUND {
                let i = (fed as usize * 11 + round) % xs.len();
                let label = u32::try_from(ys[i]).unwrap();
                match client
                    .feedback(fed, label, &xs[i])
                    .expect("feedback failed")
                {
                    Response::FeedbackAck {
                        id,
                        version,
                        observed: count,
                        ..
                    } => {
                        assert_eq!(id, fed);
                        assert_eq!(version, round as u64 + 1, "ack on the wrong version");
                        assert_eq!(count, fed + 1, "fold count drifted");
                    }
                    other => panic!("unexpected feedback response {other:?}"),
                }
                replica.observe(&xs[i], ys[i]).expect("replica observe");
                fed += 1;
            }
            match client
                .refresh(1_000_000 + round as u64)
                .expect("refresh failed")
            {
                Response::RefreshAck { version, .. } => {
                    assert_eq!(version, round as u64 + 2, "swap version out of order");
                    let model = replica.materialize().expect("replica materialize");
                    expected.lock().unwrap().insert(version, model);
                }
                other => panic!("unexpected refresh response {other:?}"),
            }
        }
        done.store(true, Ordering::SeqCst);
    });

    assert_eq!(
        handle.model_version(),
        ROUNDS as u64 + 1,
        "expected {ROUNDS} hot-swaps"
    );

    // Every stamped response must be bit-identical to a direct predict
    // on the version stamped on it.
    let expected = expected.into_inner().unwrap();
    let observed = observed.into_inner().unwrap();
    assert!(
        observed.len() as u64 >= DRIVERS as u64,
        "drivers produced no traffic"
    );
    let mut versions_seen: Vec<u64> = observed.iter().map(|&(_, _, v)| v).collect();
    versions_seen.sort_unstable();
    versions_seen.dedup();
    assert!(
        versions_seen.len() >= 3,
        "load finished before 3 swaps were observed (saw versions {versions_seen:?})"
    );
    for &(qi, class, version) in &observed {
        let model = expected
            .get(&version)
            .unwrap_or_else(|| panic!("response stamped with unknown version {version}"));
        let direct = model.predict(&queries[qi]).expect("direct predict failed");
        assert_eq!(
            class as usize, direct,
            "response on version {version} diverged from direct predict (query {qi})"
        );
    }

    // A fresh client lands on the final version.
    let mut client = Client::connect(addr).expect("connect failed");
    match client
        .predict_stamped(7, &queries[0])
        .expect("predict failed")
    {
        Response::PredictStamped { version, class, .. } => {
            assert_eq!(version, ROUNDS as u64 + 1);
            let direct = expected[&version].predict(&queries[0]).unwrap();
            assert_eq!(class as usize, direct);
        }
        other => panic!("unexpected response {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn swap_racing_queued_feedback_drains_without_loss() {
    let (xs, ys, _) = dataset();
    let handle = start_online(
        "127.0.0.1:0",
        trained(),
        ServeConfig::new(),
        OnlineConfig::new(),
    )
    .expect("bind failed");

    // Pipeline a burst of feedback, with a refresh racing it from a
    // second connection: the swap must not drop or reorder queued folds.
    let mut feeder = Client::connect(handle.addr()).unwrap();
    feeder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    const BURST: usize = 200;
    for k in 0..BURST {
        let i = k % xs.len();
        feeder
            .send(&Request::Feedback {
                id: k as u64,
                trace_id: 0,
                label: u32::try_from(ys[i]).unwrap(),
                features: xs[i].clone(),
            })
            .expect("send failed");
        if k == BURST / 2 {
            // Mid-burst swap from another connection.
            let mut swapper = Client::connect(handle.addr()).unwrap();
            match swapper.refresh(u64::MAX - 1).expect("refresh failed") {
                Response::RefreshAck { version, .. } => assert_eq!(version, 2),
                other => panic!("unexpected refresh response {other:?}"),
            }
        }
    }
    let mut counts_seen = Vec::with_capacity(BURST);
    let mut versions = Vec::with_capacity(BURST);
    for _ in 0..BURST {
        match feeder.recv().expect("recv failed") {
            Response::FeedbackAck {
                observed, version, ..
            } => {
                counts_seen.push(observed);
                versions.push(version);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    // No fold lost, none double-counted: the running count is exactly
    // 1..=BURST in order, whatever the swap timing.
    let want: Vec<u64> = (1..=BURST as u64).collect();
    assert_eq!(
        counts_seen, want,
        "feedback folds lost or reordered across the swap"
    );
    // The version sequence is monotone 1 → 2 (the swap interleaves at
    // one point, never flaps back).
    assert!(
        versions.windows(2).all(|w| w[0] <= w[1]),
        "version went backwards across the swap: {versions:?}"
    );
    assert_eq!(*versions.last().unwrap(), 2, "swap never landed");

    handle.shutdown();
    handle.join();
}

#[test]
fn auto_refresh_fires_on_the_fold_gate_exactly() {
    let (xs, ys, _) = dataset();
    // Threshold 0 disables the drift arm: the fold count alone swaps.
    let handle = start_online(
        "127.0.0.1:0",
        trained(),
        ServeConfig::new(),
        OnlineConfig::new()
            .with_auto_refresh_min_folds(20)
            .with_drift_threshold(0.0),
    )
    .expect("bind failed");
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Folds 1..=20 are acked on version 1; the 20th triggers the swap,
    // so folds 21..=40 ack on version 2, and 41..=45 on version 3.
    for k in 0..45u64 {
        let i = k as usize % xs.len();
        match client
            .feedback(k, u32::try_from(ys[i]).unwrap(), &xs[i])
            .expect("feedback failed")
        {
            Response::FeedbackAck { version, .. } => {
                let want = 1 + k / 20;
                assert_eq!(version, want, "fold {k} acked on the wrong version");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(handle.model_version(), 3);
    handle.shutdown();
    handle.join();
}

#[test]
fn auto_refresh_respects_the_drift_threshold() {
    let (xs, ys, _) = dataset();
    // An unreachable drift bar: with no predict traffic the drift score
    // is 0, so the fold gate alone must NOT swap.
    let handle = start_online(
        "127.0.0.1:0",
        trained(),
        ServeConfig::new(),
        OnlineConfig::new()
            .with_auto_refresh_min_folds(5)
            .with_drift_threshold(1.0),
    )
    .expect("bind failed");
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for k in 0..15u64 {
        let i = k as usize % xs.len();
        match client
            .feedback(k, u32::try_from(ys[i]).unwrap(), &xs[i])
            .expect("feedback failed")
        {
            Response::FeedbackAck { version, .. } => assert_eq!(version, 1),
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(
        handle.model_version(),
        1,
        "drift gate failed to hold the swap"
    );
    // Manual refresh still works regardless of the gate.
    match client.refresh(99).expect("refresh failed") {
        Response::RefreshAck { version, .. } => assert_eq!(version, 2),
        other => panic!("unexpected response {other:?}"),
    }
    handle.shutdown();
    handle.join();
}
