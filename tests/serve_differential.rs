//! Differential equivalence of the batched inference server: every
//! response from `lookhd-serve` must be **bit-identical** to a direct
//! single-threaded `Classifier::predict` call on the same deserialized
//! model, regardless of worker count, batch size, thread interleaving, or
//! pipelining depth. This extends the engine determinism contract of
//! `tests/engine_equivalence.rs` across the wire.

use std::sync::Arc;
use std::time::Duration;

use lookhd_paper::prelude::*;
use lookhd_paper::serve::{self, Client, Request, Response, ServeConfig};

/// Worker counts the acceptance criteria pin.
const WORKERS: [usize; 3] = [1, 2, 8];
/// Batch sizes the acceptance criteria pin (7 exercises ragged batches).
const MAX_BATCH: [usize; 3] = [1, 7, 64];

/// Well-separated 3-class training set plus off-grid query rows.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.5 + t / 3.0, t * t, 0.3 + t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

fn trained_bytes() -> (Vec<u8>, Vec<Vec<f64>>) {
    let (xs, ys, queries) = dataset();
    let config = LookHdConfig::new().with_dim(256).with_retrain_epochs(2);
    let clf = LookHdClassifier::fit(&config, &xs, &ys).expect("training failed");
    (clf.to_bytes().expect("serialization failed"), queries)
}

/// Every (workers × max_batch) combination serves predictions identical
/// to the direct single-threaded path on the same model bytes, under
/// concurrent clients with varied pipelining interleavings.
#[test]
fn server_matches_direct_predictions_for_all_configs() {
    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| direct.predict(q).expect("direct predict failed"))
        .collect();
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);

    for workers in WORKERS {
        for max_batch in MAX_BATCH {
            let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
            let config = ServeConfig::new()
                .with_workers(workers)
                .with_max_batch(max_batch)
                .with_queue_cap(4096)
                .with_timeout(Duration::from_secs(30));
            let handle = serve::start("127.0.0.1:0", model, config).expect("bind failed");
            let addr = handle.addr();

            // 4 concurrent client threads, each with a different
            // pipelining window so request interleavings vary: windows of
            // 1 (strict request/response), 3, 5, and the whole set.
            std::thread::scope(|scope| {
                for (thread_idx, window) in [1usize, 3, 5, usize::MAX].into_iter().enumerate() {
                    let queries = Arc::clone(&queries);
                    let expected = Arc::clone(&expected);
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect failed");
                        client
                            .set_read_timeout(Some(Duration::from_secs(30)))
                            .unwrap();
                        let window = window.min(queries.len());
                        // Odd-numbered clients speak the traced v2 wire
                        // layout, even ones stay on v1 — the server must
                        // serve the mixed population identically.
                        let trace_of = |id: u64| {
                            if thread_idx % 2 == 1 {
                                id + 1000
                            } else {
                                0
                            }
                        };
                        let mut next_send = 0usize;
                        let mut outstanding = 0usize;
                        let mut seen = 0usize;
                        while seen < queries.len() {
                            while outstanding < window && next_send < queries.len() {
                                client
                                    .send(&Request::Predict {
                                        id: next_send as u64,
                                        trace_id: trace_of(next_send as u64),
                                        features: queries[next_send].clone(),
                                    })
                                    .expect("send failed");
                                next_send += 1;
                                outstanding += 1;
                            }
                            match client.recv().expect("recv failed") {
                                Response::Predict {
                                    id,
                                    trace_id,
                                    class,
                                } => {
                                    let idx = id as usize;
                                    assert_eq!(
                                        trace_id,
                                        trace_of(id),
                                        "client {thread_idx}: trace id not echoed"
                                    );
                                    assert_eq!(
                                        class as usize, expected[idx],
                                        "client {thread_idx}: query {idx} diverged \
                                         (workers={workers}, max_batch={max_batch})"
                                    );
                                }
                                other => panic!(
                                    "client {thread_idx}: unexpected response {other:?} \
                                     (workers={workers}, max_batch={max_batch})"
                                ),
                            }
                            outstanding -= 1;
                            seen += 1;
                        }
                    });
                }
            });

            handle.shutdown();
            handle.join();
        }
    }
}

/// The encoder-less formats (`HDC1` raw models, `LKC1` compressed
/// models) serve pre-encoded hypervector queries identically to direct
/// model calls.
#[test]
fn raw_and_compressed_formats_match_direct_predictions() {
    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    let encoded: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| {
            direct
                .encode(q)
                .expect("encode failed")
                .as_slice()
                .iter()
                .map(|&v| v as f64)
                .collect()
        })
        .collect();

    let hdc1 = lookhd_paper::hdc::persist::model_to_bytes(direct.model()).unwrap();
    let lkc1 = direct.compressed().to_bytes().unwrap();
    for (label, artifact) in [("HDC1", hdc1), ("LKC1", lkc1)] {
        let model = serve::classifier_from_bytes(&artifact).expect("model load failed");
        let expected: Vec<usize> = encoded
            .iter()
            .map(|h| model.predict(h).expect("direct predict failed"))
            .collect();
        let handle = serve::start(
            "127.0.0.1:0",
            serve::classifier_from_bytes(&artifact).unwrap(),
            ServeConfig::new().with_workers(2).with_max_batch(7),
        )
        .expect("bind failed");
        let mut client = Client::connect(handle.addr()).expect("connect failed");
        for (i, h) in encoded.iter().enumerate() {
            match client.predict(i as u64, h).expect("round trip failed") {
                Response::Predict { id, class, .. } => {
                    assert_eq!(id, i as u64);
                    assert_eq!(class as usize, expected[i], "{label} query {i} diverged");
                }
                other => panic!("{label}: unexpected response {other:?}"),
            }
        }
        handle.shutdown();
        handle.join();
    }
}

/// An LKS1 artifact carrying the score-LUT kernel serves responses
/// byte-identical to the dense-path server across the full workers ×
/// max-batch matrix: the kernel is an exact integer refactoring of the
/// dense scoring, so only latency may differ, never a class.
#[test]
fn score_lut_kernel_serves_identically_to_dense_path() {
    let (xs, ys, queries) = dataset();
    // The kernel requires decorrelation off; train the dense sibling with
    // the same compression so both models are identical up to the kernel.
    let base = LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(2)
        .with_compression(lookhd_paper::lookhd::CompressionConfig::new().with_decorrelate(false));
    let dense = LookHdClassifier::fit(&base, &xs, &ys).expect("dense training failed");
    let fast = LookHdClassifier::fit(
        &base
            .clone()
            .with_kernel(lookhd_paper::lookhd::KernelSpec::auto()),
        &xs,
        &ys,
    )
    .expect("lut training");
    assert!(fast.score_lut().is_some(), "kernel should have been built");
    let lut_bytes = fast.to_bytes().expect("serialization failed");
    // The kernel survives the LKS1 round trip into the served model.
    let reloaded = LookHdClassifier::from_bytes(&lut_bytes).expect("reload failed");
    assert!(reloaded.score_lut().is_some(), "kernel lost in round trip");

    let expected: Vec<usize> = queries
        .iter()
        .map(|q| dense.predict(q).expect("dense predict failed"))
        .collect();
    for workers in WORKERS {
        for max_batch in MAX_BATCH {
            let model = serve::classifier_from_bytes(&lut_bytes).expect("model load failed");
            let handle = serve::start(
                "127.0.0.1:0",
                model,
                ServeConfig::new()
                    .with_workers(workers)
                    .with_max_batch(max_batch)
                    .with_queue_cap(4096)
                    .with_timeout(Duration::from_secs(30)),
            )
            .expect("bind failed");
            let mut client = Client::connect(handle.addr()).expect("connect failed");
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            for (i, q) in queries.iter().enumerate() {
                match client.predict(i as u64, q).expect("round trip failed") {
                    Response::Predict { id, class, .. } => {
                        assert_eq!(id, i as u64);
                        assert_eq!(
                            class as usize, expected[i],
                            "score-LUT server diverged from dense path on query {i} \
                             (workers={workers}, max_batch={max_batch})"
                        );
                    }
                    other => panic!(
                        "unexpected response {other:?} \
                         (workers={workers}, max_batch={max_batch})"
                    ),
                }
            }
            handle.shutdown();
            handle.join();
        }
    }
}

/// An LKS1 artifact carrying the binary Hamming kernel serves responses
/// identical to a *direct* call on the same reloaded artifact across the
/// workers × max-batch matrix: the kernel is approximate relative to the
/// dense path, but the served approximation must be deterministic and
/// bit-stable — batching, threading, and the wire must add nothing.
#[test]
fn binary_kernel_serves_identically_to_direct_calls() {
    let (xs, ys, queries) = dataset();
    let config = LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(2)
        .with_compression(lookhd_paper::lookhd::CompressionConfig::new().with_decorrelate(false))
        .with_kernel(lookhd_paper::lookhd::KernelSpec::binary().with_multifold(2));
    let clf = LookHdClassifier::fit(&config, &xs, &ys).expect("binary training failed");
    let bytes = clf.to_bytes().expect("serialization failed");
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    assert_eq!(
        direct.kernel().name(),
        "binary",
        "kernel lost in round trip"
    );
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| direct.predict(q).expect("direct predict failed"))
        .collect();
    for workers in WORKERS {
        for max_batch in MAX_BATCH {
            let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
            assert_eq!(model.kernel_name(), Some("binary"));
            let handle = serve::start(
                "127.0.0.1:0",
                model,
                ServeConfig::new()
                    .with_workers(workers)
                    .with_max_batch(max_batch)
                    .with_queue_cap(4096)
                    .with_timeout(Duration::from_secs(30)),
            )
            .expect("bind failed");
            let mut client = Client::connect(handle.addr()).expect("connect failed");
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            for (i, q) in queries.iter().enumerate() {
                match client.predict(i as u64, q).expect("round trip failed") {
                    Response::Predict { id, class, .. } => {
                        assert_eq!(id, i as u64);
                        assert_eq!(
                            class as usize, expected[i],
                            "binary-kernel server diverged from direct path on query {i} \
                             (workers={workers}, max_batch={max_batch})"
                        );
                    }
                    other => panic!(
                        "unexpected response {other:?} \
                         (workers={workers}, max_batch={max_batch})"
                    ),
                }
            }
            handle.shutdown();
            handle.join();
        }
    }
}

/// With the metrics registry *and* the trace ring enabled, a server
/// facing mixed v1/v2 clients still answers bit-identically to the
/// direct path — tracing is pure observation — and every traced request
/// leaves a complete decode → queue_wait → batch_assembly → predict →
/// encode span chain in the ring, keyed by its client trace id.
#[test]
fn tracing_enabled_keeps_responses_identical_and_records_span_chains() {
    use lookhd_paper::obs;

    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| direct.predict(q).expect("direct predict failed"))
        .collect();

    obs::set_enabled(true);
    obs::trace::set_enabled(true);
    obs::trace::reset();

    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new().with_workers(2).with_max_batch(7),
    )
    .expect("bind failed");
    let mut v2 = Client::connect(handle.addr()).expect("connect failed");
    let mut v1 = Client::connect(handle.addr()).expect("connect failed");
    for client in [&mut v2, &mut v1] {
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
    }
    for (i, q) in queries.iter().enumerate() {
        let id = i as u64;
        let trace_id = id + 1;
        match v2
            .predict_traced(id, trace_id, q)
            .expect("traced round trip failed")
        {
            Response::Predict {
                id: got,
                trace_id: got_trace,
                class,
            } => {
                assert_eq!((got, got_trace), (id, trace_id));
                assert_eq!(class as usize, expected[i], "traced query {i} diverged");
            }
            other => panic!("unexpected traced response {other:?}"),
        }
        match v1.predict(id, q).expect("v1 round trip failed") {
            Response::Predict {
                id: got,
                trace_id: 0,
                class,
            } => {
                assert_eq!(got, id);
                assert_eq!(class as usize, expected[i], "v1 query {i} diverged");
            }
            other => panic!("unexpected v1 response {other:?}"),
        }
    }
    handle.shutdown();
    handle.join();

    // Every traced request left its full five-stage span chain; the v1
    // client (trace id 0) left none.
    let events = obs::trace::events();
    const STAGES: [&str; 5] = [
        "decode",
        "queue_wait",
        "batch_assembly",
        "predict",
        "encode",
    ];
    for i in 0..queries.len() {
        let trace_id = i as u64 + 1;
        for stage in STAGES {
            let begins = events
                .iter()
                .filter(|e| {
                    e.trace_id == trace_id && e.name == stage && e.phase == obs::trace::Phase::Begin
                })
                .count();
            let ends = events
                .iter()
                .filter(|e| {
                    e.trace_id == trace_id && e.name == stage && e.phase == obs::trace::Phase::End
                })
                .count();
            assert_eq!(
                (begins, ends),
                (1, 1),
                "trace {trace_id} stage {stage}: want exactly one begin/end pair"
            );
        }
    }
    assert!(
        events.iter().all(|e| e.trace_id != 0),
        "untraced requests must not emit events"
    );
    // The export is Chrome trace-event JSON carrying (at least) one b/e
    // pair per stage per traced request. Other tests in this binary may
    // be emitting concurrently, so the counts are lower bounds.
    let chrome = obs::trace::to_chrome_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"id\": \"0x1\""));
    assert!(chrome.matches("\"ph\": \"b\"").count() >= STAGES.len() * queries.len());

    obs::trace::set_enabled(false);
    obs::trace::reset();
    obs::set_enabled(false);
}

/// Repeating the same query through different server configurations
/// always yields the same class — servers are stateless and
/// deterministic end to end.
#[test]
fn repeated_queries_are_stable_across_server_restarts() {
    let (bytes, queries) = trained_bytes();
    let mut first: Option<Vec<u32>> = None;
    for (workers, max_batch) in [(1, 1), (8, 64), (2, 7)] {
        let model = serve::classifier_from_bytes(&bytes).unwrap();
        let handle = serve::start(
            "127.0.0.1:0",
            model,
            ServeConfig::new()
                .with_workers(workers)
                .with_max_batch(max_batch),
        )
        .expect("bind failed");
        let mut client = Client::connect(handle.addr()).expect("connect failed");
        let classes: Vec<u32> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| match client.predict(i as u64, q).unwrap() {
                Response::Predict { class, .. } => class,
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        match &first {
            None => first = Some(classes),
            Some(reference) => assert_eq!(
                &classes, reference,
                "server (workers={workers}, max_batch={max_batch}) diverged"
            ),
        }
        handle.shutdown();
        handle.join();
    }
}
