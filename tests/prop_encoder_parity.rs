//! Differential property test: the two lookup-table storage modes are
//! interchangeable. `TableMode::Materialized` (BRAM-style pre-stored
//! rows) and `TableMode::OnTheFly` (rows synthesized per lookup) must
//! produce bit-identical hypervectors and identical chunk addresses for
//! every layout — including `n % r != 0` remainder chunks — so address
//! extraction (which the score-LUT kernel reuses) can safely run against
//! either mode.

use lookhd_paper::hdc::encoding::Encode;
use lookhd_paper::hdc::levels::{LevelMemory, LevelScheme};
use lookhd_paper::hdc::quantize::{Quantization, Quantizer};
use lookhd_paper::lookhd::chunking::ChunkLayout;
use lookhd_paper::lookhd::encoder::LookupEncoder;
use lookhd_paper::lookhd::lut::TableMode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both table modes agree on every address and every encoded
    /// hypervector, bit for bit, across random layouts and queries.
    #[test]
    fn table_modes_encode_identically(
        n in 1usize..24,
        r in 1usize..8,
        q in 2usize..5,
        dim in 64usize..320,
        seed in 0u64..1_000,
        quant_linear in proptest::any::<bool>(),
        queries in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 24), 1..8),
    ) {
        let r = r.min(n);
        let layout = ChunkLayout::new(n, r, q).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let levels =
            LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let kind = if quant_linear {
            Quantization::Linear
        } else {
            Quantization::Equalized
        };
        let samples: Vec<f64> = (0..200).map(|i| (i as f64 / 50.0) - 2.0).collect();
        let quantizer = Quantizer::fit(kind, &samples, q).unwrap();
        let materialized = LookupEncoder::new(
            layout, &levels, quantizer.clone(), TableMode::Materialized, seed,
        ).unwrap();
        let on_the_fly = LookupEncoder::new(
            layout, &levels, quantizer, TableMode::OnTheFly, seed,
        ).unwrap();
        prop_assert_eq!(materialized.lut().mode(), TableMode::Materialized);
        prop_assert_eq!(on_the_fly.lut().mode(), TableMode::OnTheFly);
        for query in &queries {
            let features = &query[..n];
            let a = materialized.addresses(features).unwrap();
            let b = on_the_fly.addresses(features).unwrap();
            prop_assert_eq!(&a, &b, "addresses diverged (n={}, r={}, q={})", n, r, q);
            // Addresses stay inside each chunk's table.
            for (chunk, &addr) in a.iter().enumerate() {
                prop_assert!((addr as usize) < layout.table_rows(chunk));
            }
            let ha = materialized.encode(features).unwrap();
            let hb = on_the_fly.encode(features).unwrap();
            prop_assert_eq!(
                ha.as_slice(), hb.as_slice(),
                "hypervectors diverged (n={}, r={}, q={}, dim={})", n, r, q, dim
            );
        }
    }

    /// Remainder chunks specifically: layouts where the final chunk is
    /// shorter than `r` get a smaller table, and both modes must agree on
    /// its rows too (synthesize vs pre-store take different code paths
    /// for the short shape).
    #[test]
    fn remainder_chunk_rows_agree(
        full_chunks in 1usize..4,
        r in 2usize..6,
        tail in 1usize..5,
        q in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let tail = tail.min(r - 1); // force n % r != 0
        let n = full_chunks * r + tail;
        let layout = ChunkLayout::new(n, r, q).unwrap();
        prop_assert_eq!(layout.chunk_len(layout.n_chunks() - 1), tail);
        let mut rng = StdRng::seed_from_u64(seed);
        let levels =
            LevelMemory::generate(128, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let materialized = LookupEncoder::new(
            layout, &levels, quantizer.clone(), TableMode::Materialized, seed,
        ).unwrap();
        let on_the_fly = LookupEncoder::new(
            layout, &levels, quantizer, TableMode::OnTheFly, seed,
        ).unwrap();
        // Walk every address of the remainder chunk through both LUTs.
        let last = layout.n_chunks() - 1;
        for addr in 0..layout.table_rows(last) as u64 {
            let row_a = materialized.lut().row(last, addr);
            let row_b = on_the_fly.lut().row(last, addr);
            prop_assert_eq!(row_a.as_slice(), row_b.as_slice(), "row {} diverged", addr);
        }
    }
}
