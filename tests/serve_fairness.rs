//! Read-fairness and bit-identity tests for the edge-triggered reactor.
//!
//! The ET rewrite drains sockets to `WouldBlock` under a per-connection
//! read budget instead of a fixed per-event cap. These tests pin the two
//! user-visible contracts of that change:
//!
//! * **Fairness** — a firehose client pipelining thousands of requests
//!   cannot monopolize its reactor thread: polite request/response
//!   clients sharing the same reactor keep completing round trips with
//!   bounded latency, and the budget exhaustions show up in the
//!   `serve.fairness_deferrals` counter.
//! * **Bit identity** — edge triggering, budget deferrals, and the
//!   zero-copy borrowed-frame decode path change *no response bytes*:
//!   the raw byte stream a client reads back is exactly the
//!   length-prefixed encoding of the direct `Classifier::predict`
//!   answers, even when requests arrive in pathological 3-byte slivers.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lookhd_paper::obs;
use lookhd_paper::prelude::*;
use lookhd_paper::serve::wire::{encode_request, encode_response};
use lookhd_paper::serve::{self, Client, Request, Response, ServeConfig};

/// Well-separated 3-class training set plus off-grid query rows.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.5 + t / 3.0, t * t, 0.3 + t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

fn trained_bytes() -> (Vec<u8>, Vec<Vec<f64>>) {
    let (xs, ys, queries) = dataset();
    let config = LookHdConfig::new().with_dim(256).with_retrain_epochs(2);
    let clf = LookHdClassifier::fit(&config, &xs, &ys).expect("training failed");
    (clf.to_bytes().expect("serialization failed"), queries)
}

/// A handful of firehose connections each pipeline thousands of requests
/// in one burst — far more buffered bytes per socket than the reactor's
/// maximum per-round read budget — while polite closed-loop clients share
/// the same single reactor. The polite clients' p99 stays under a
/// generous bound (they are not starved behind the firehose backlog),
/// every request from both populations is answered correctly, and the
/// reactor records at least one budget exhaustion in
/// `serve.fairness_deferrals`.
#[test]
fn firehose_client_cannot_starve_polite_clients() {
    const FIREHOSES: usize = 4;
    const FIREHOSE_REQUESTS: usize = 4000;
    const POLITE: usize = 4;
    const POLITE_ROUNDS: usize = 100;
    /// Generous: polite round trips share workers with the firehose
    /// backlog, so they queue — but must never wait out the firehose.
    const POLITE_P99_BOUND: Duration = Duration::from_secs(5);

    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    let expected: Arc<Vec<usize>> = Arc::new(
        queries
            .iter()
            .map(|q| direct.predict(q).expect("direct predict failed"))
            .collect(),
    );
    let queries = Arc::new(queries);

    obs::set_enabled(true);

    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new()
            .with_workers(2)
            .with_max_batch(64)
            .with_queue_cap(2 * FIREHOSES * FIREHOSE_REQUESTS)
            .with_timeout(Duration::from_secs(60))
            .with_reactors(1) // everyone shares one reactor thread
            .with_max_conns(64),
    )
    .expect("bind failed");
    let addr = handle.addr();

    let mut polite_latencies: Vec<Vec<Duration>> = Vec::new();
    std::thread::scope(|scope| {
        let mut firehoses = Vec::new();
        for f in 0..FIREHOSES {
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            firehoses.push(scope.spawn(move || {
                let mut client =
                    Client::connect(addr).unwrap_or_else(|e| panic!("firehose {f} connect: {e}"));
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // Blast the whole quota before reading anything: the
                // socket's receive queue on the server side stays far
                // deeper than any single round's read budget.
                for i in 0..FIREHOSE_REQUESTS {
                    let q = (f + i) % queries.len();
                    client
                        .send(&Request::Predict {
                            id: i as u64,
                            trace_id: 0,
                            features: queries[q].clone(),
                        })
                        .expect("firehose send failed");
                }
                // Workers may answer a window out of order: match by id.
                let mut seen = vec![false; FIREHOSE_REQUESTS];
                for _ in 0..FIREHOSE_REQUESTS {
                    match client.recv().expect("firehose recv failed") {
                        Response::Predict { id, class, .. } => {
                            let i = usize::try_from(id).unwrap();
                            assert!(!std::mem::replace(&mut seen[i], true), "duplicate id {id}");
                            let q = (f + i) % queries.len();
                            assert_eq!(class as usize, expected[q], "firehose answer diverged");
                        }
                        other => panic!("unexpected firehose response {other:?}"),
                    }
                }
            }));
        }

        let polite: Vec<_> = (0..POLITE)
            .map(|p| {
                let queries = Arc::clone(&queries);
                let expected = Arc::clone(&expected);
                scope.spawn(move || {
                    let mut client =
                        Client::connect(addr).unwrap_or_else(|e| panic!("polite {p} connect: {e}"));
                    client
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut latencies = Vec::with_capacity(POLITE_ROUNDS);
                    for r in 0..POLITE_ROUNDS {
                        let q = (p + r) % queries.len();
                        let started = Instant::now();
                        match client
                            .predict(r as u64, &queries[q])
                            .expect("polite predict failed")
                        {
                            Response::Predict { id, class, .. } => {
                                assert_eq!(id, r as u64);
                                assert_eq!(class as usize, expected[q], "polite answer diverged");
                            }
                            other => panic!("unexpected polite response {other:?}"),
                        }
                        latencies.push(started.elapsed());
                    }
                    latencies
                })
            })
            .collect();

        for handle in firehoses {
            handle.join().expect("firehose thread panicked");
        }
        for handle in polite {
            polite_latencies.push(handle.join().expect("polite thread panicked"));
        }
    });

    // Polite tail latency: the firehose backlog must not starve the
    // closed-loop clients sharing its reactor.
    let mut all: Vec<Duration> = polite_latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let p99 = all[(all.len() * 99) / 100 - 1];
    assert!(
        p99 < POLITE_P99_BOUND,
        "polite p99 {p99:?} exceeded {POLITE_P99_BOUND:?} — firehose starved polite clients"
    );

    // Each firehose socket buffered far more than the maximum per-round
    // budget, so the reactor must have deferred at least once.
    let deferrals = obs::snapshot().counter("serve.fairness_deferrals");
    assert!(
        deferrals > 0,
        "expected at least one read-budget deferral under firehose load"
    );

    handle.shutdown();
    handle.join();
}

/// Raw-byte differential: pipeline requests over a plain `TcpStream`
/// (written in 3-byte slivers to force partial-frame reads, mid-frame
/// compaction, and repeated ET re-arms on the server) and compare the
/// complete response byte stream against the locally computed expected
/// encoding. One worker keeps response order deterministic, so the
/// comparison is exact: ET + zero-copy decode must change no bytes.
#[test]
fn edge_triggered_zero_copy_keeps_response_bytes_identical() {
    const REQUESTS: usize = 200;

    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");

    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new()
            .with_workers(1)
            .with_max_batch(7)
            .with_queue_cap(4 * REQUESTS)
            .with_timeout(Duration::from_secs(60)),
    )
    .expect("bind failed");

    // Build the request byte stream and, in lockstep, the exact byte
    // stream the server must answer with. Odd requests use the traced v2
    // layout so both frame versions cross the zero-copy path.
    let mut outbound = Vec::new();
    let mut expected = Vec::new();
    for i in 0..REQUESTS {
        let q = i % queries.len();
        let trace_id = if i % 2 == 1 { i as u64 + 1 } else { 0 };
        let body = encode_request(&Request::Predict {
            id: i as u64,
            trace_id,
            features: queries[q].clone(),
        });
        outbound.extend_from_slice(&u32::try_from(body.len()).unwrap().to_le_bytes());
        outbound.extend_from_slice(&body);

        let class = direct.predict(&queries[q]).expect("direct predict failed");
        let reply = encode_response(&Response::Predict {
            id: i as u64,
            trace_id,
            class: u32::try_from(class).unwrap(),
        });
        expected.extend_from_slice(&u32::try_from(reply.len()).unwrap().to_le_bytes());
        expected.extend_from_slice(&reply);
    }

    let mut stream = TcpStream::connect(handle.addr()).expect("connect failed");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.set_nodelay(true).unwrap();

    // Reader first, writer second: the server answers while the writer
    // is still dribbling slivers, so responses interleave with partial
    // request frames in the decoder buffer.
    let mut actual = vec![0u8; expected.len()];
    std::thread::scope(|scope| {
        let mut reader = stream.try_clone().expect("clone failed");
        let actual = &mut actual;
        scope.spawn(move || {
            reader.read_exact(actual).expect("short response stream");
        });
        for sliver in outbound.chunks(3) {
            stream.write_all(sliver).expect("sliver write failed");
        }
    });
    assert_eq!(
        actual, expected,
        "response bytes diverged from the direct-predict encoding"
    );

    handle.shutdown();
    handle.join();
}
