//! Property-based round-trip tests for the binary persistence formats.

use lookhd_paper::hdc::hv::DenseHv;
use lookhd_paper::hdc::model::ClassModel;
use lookhd_paper::hdc::persist::{model_from_bytes, model_to_bytes};
use lookhd_paper::lookhd::{CompressedModel, CompressionConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any valid class model survives HDC1 serialization bit-exactly.
    #[test]
    fn class_model_round_trips(
        k in 1usize..8,
        dim in 1usize..64,
        seed in any::<i32>(),
    ) {
        let classes: Vec<DenseHv> = (0..k)
            .map(|c| {
                DenseHv::from_vec(
                    (0..dim)
                        .map(|d| seed.wrapping_mul(31).wrapping_add((c * dim + d) as i32))
                        .collect(),
                )
            })
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let back = model_from_bytes(&model_to_bytes(&model).unwrap()).unwrap();
        prop_assert_eq!(back.n_classes(), model.n_classes());
        for c in 0..k {
            prop_assert_eq!(back.class(c), model.class(c));
        }
    }

    /// Truncating an HDC1 stream at any point fails cleanly (no panic).
    #[test]
    fn truncation_never_panics(cut in 0usize..200) {
        let model = ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![1, 2, 3, 4]),
            DenseHv::from_vec(vec![-1, -2, -3, -4]),
        ])
        .unwrap();
        let bytes = model_to_bytes(&model).unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(model_from_bytes(&bytes[..cut]).is_err());
    }

    /// LKC1 compressed models round-trip for arbitrary grouping configs.
    #[test]
    fn compressed_model_round_trips(
        k in 1usize..12,
        group in 1usize..14,
        decorrelate in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let dim = 96;
        let classes: Vec<DenseHv> = (0..k)
            .map(|c| {
                DenseHv::from_vec(
                    (0..dim).map(|d| ((c * 7 + d * 13) % 41) as i32 - 20).collect(),
                )
            })
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let cfg = CompressionConfig::new()
            .with_max_classes_per_vector(group)
            .with_decorrelate(decorrelate)
            .with_seed(seed);
        let cm = CompressedModel::compress(&model, &cfg).unwrap();
        let back = CompressedModel::from_bytes(&cm.to_bytes().unwrap()).unwrap();
        prop_assert_eq!(back.n_vectors(), cm.n_vectors());
        let query = model.class(0).clone();
        prop_assert_eq!(back.predict(&query).unwrap(), cm.predict(&query).unwrap());
        let sa = cm.scores(&query).unwrap();
        let sb = back.scores(&query).unwrap();
        for (a, b) in sa.iter().zip(&sb) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
