//! Fault-injection integration tests: HDC's graceful degradation.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::hv::BipolarHv;
use lookhd_paper::hdc::noise::{corrupt_model, flip_bipolar};
use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn small_model_faults_do_not_change_accuracy_much() {
    let profile = App::Physical.profile();
    let data = profile.generate_small(31);
    let clf = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(1024).with_retrain_epochs(2),
        &data.train.features,
        &data.train.labels,
    )
    .expect("training failed");
    let accuracy_with_faults = |p: f64, seed: u64| -> f64 {
        let mut model = clf.model().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        corrupt_model(&mut model, p, &mut rng);
        let correct = data
            .test
            .features
            .iter()
            .zip(&data.test.labels)
            .filter(|(x, &y)| {
                let h = clf.encode(x).expect("encode failed");
                model.predict(&h).expect("predict failed") == y
            })
            .count();
        correct as f64 / data.test.len() as f64
    };
    let clean = accuracy_with_faults(0.0, 1);
    let faulty = accuracy_with_faults(0.02, 2);
    assert!(
        faulty >= clean - 0.10,
        "2% sign faults cost too much: {clean:.3} -> {faulty:.3}"
    );
}

#[test]
fn degradation_is_monotone_ish_in_fault_rate() {
    let profile = App::Activity.profile();
    let data = profile.generate_small(32);
    let clf = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(1024).with_retrain_epochs(2),
        &data.train.features,
        &data.train.labels,
    )
    .expect("training failed");
    let acc_at = |p: f64| -> f64 {
        let mut model = clf.model().clone();
        let mut rng = StdRng::seed_from_u64(77);
        corrupt_model(&mut model, p, &mut rng);
        data.test
            .features
            .iter()
            .zip(&data.test.labels)
            .filter(|(x, &y)| {
                let h = clf.encode(x).expect("encode failed");
                model.predict(&h).expect("predict failed") == y
            })
            .count() as f64
            / data.test.len() as f64
    };
    let low = acc_at(0.01);
    let high = acc_at(0.40);
    assert!(
        low >= high - 0.05,
        "1% faults ({low:.3}) should not be worse than 40% faults ({high:.3})"
    );
}

#[test]
fn bipolar_noise_injection_hits_requested_rate() {
    let mut rng = StdRng::seed_from_u64(5);
    let original = BipolarHv::random(20_000, &mut rng);
    let mut noisy = original.clone();
    flip_bipolar(&mut noisy, 0.25, &mut rng);
    let rate = original.hamming(&noisy) as f64 / 20_000.0;
    assert!((rate - 0.25).abs() < 0.02, "flip rate {rate}");
}
