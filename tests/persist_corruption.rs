//! Exhaustive corruption sweep over the persistence formats.
//!
//! Serialized artifacts cross a trust boundary (flashed storage, files on
//! disk), so deserialization must never panic or abort on hostile input:
//! every truncation of a valid artifact must return `Err`, and every
//! single-byte corruption must either return `Err` or produce a model
//! that still works. The intact artifact must keep predicting
//! identically.

use lookhd_paper::hdc::persist::{model_from_bytes, model_to_bytes};
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{
    CompressedModel, CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig,
};

/// A tiny but non-trivial trained classifier (small dim keeps the byte
/// sweeps fast: the artifact is ~1–2 KB, and we parse it once per byte).
fn tiny_classifier() -> (LookHdClassifier, Vec<Vec<f64>>) {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let class = i % 2;
        let base = if class == 0 { 0.25 } else { 0.75 };
        let jitter = (i / 2) as f64 * 0.01;
        features.push(vec![base + jitter, base - jitter, base, 1.0 - base]);
        labels.push(class);
    }
    let config = LookHdConfig::new().with_dim(64).with_retrain_epochs(1);
    let clf = LookHdClassifier::fit(&config, &features, &labels).expect("training failed");
    (clf, features)
}

#[test]
fn classifier_truncated_at_every_length_errors() {
    let (clf, _) = tiny_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for cut in 0..bytes.len() {
        assert!(
            LookHdClassifier::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} parsed successfully",
            bytes.len()
        );
    }
    // Appending trailing garbage must also be rejected.
    let mut longer = bytes.clone();
    longer.push(0);
    assert!(LookHdClassifier::from_bytes(&longer).is_err());
}

#[test]
fn classifier_survives_every_single_byte_flip() {
    let (clf, features) = tiny_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        // Structural corruption must error; payload corruption may parse
        // into a different-but-valid model. Either way: no panic, and any
        // Ok result must be usable.
        if let Ok(back) = LookHdClassifier::from_bytes(&bad) {
            let _ = back.predict(&features[0]);
        }
    }
}

#[test]
fn classifier_intact_round_trip_predicts_identically() {
    let (clf, features) = tiny_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    let back = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    for x in &features {
        assert_eq!(
            clf.predict(x).expect("predict failed"),
            back.predict(x).expect("predict failed")
        );
    }
}

/// Like [`tiny_classifier`] but with the score-LUT kernel built, so the
/// sweeps also cover the SLT1 section and its flag byte. Small q/r keep
/// the tables (and thus the per-byte parse cost) tiny.
fn tiny_lut_classifier() -> (LookHdClassifier, Vec<Vec<f64>>) {
    let (_, features) = tiny_classifier();
    let labels: Vec<usize> = (0..features.len()).map(|i| i % 2).collect();
    let config = LookHdConfig::new()
        .with_dim(64)
        .with_q(2)
        .with_r(2)
        .with_retrain_epochs(1)
        .with_compression(CompressionConfig::new().with_decorrelate(false))
        .with_kernel(KernelSpec::auto());
    let clf = LookHdClassifier::fit(&config, &features, &labels).expect("training failed");
    assert!(clf.score_lut().is_some(), "kernel should have been built");
    (clf, features)
}

#[test]
fn lut_classifier_truncated_at_every_length_errors() {
    let (clf, _) = tiny_lut_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for cut in 0..bytes.len() {
        assert!(
            LookHdClassifier::from_bytes(&bytes[..cut]).is_err(),
            "lut truncation at {cut}/{} parsed successfully",
            bytes.len()
        );
    }
    let mut longer = bytes.clone();
    longer.push(0);
    assert!(LookHdClassifier::from_bytes(&longer).is_err());
}

#[test]
fn lut_classifier_survives_every_single_byte_flip() {
    let (clf, features) = tiny_lut_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        if let Ok(back) = LookHdClassifier::from_bytes(&bad) {
            let _ = back.predict(&features[0]);
        }
    }
}

#[test]
fn lut_classifier_intact_round_trip_predicts_identically() {
    let (clf, features) = tiny_lut_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    let back = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    assert!(back.score_lut().is_some(), "kernel lost in round trip");
    for x in &features {
        assert_eq!(
            clf.predict(x).expect("predict failed"),
            back.predict(x).expect("predict failed")
        );
        assert_eq!(
            clf.scores(x).expect("scores failed"),
            back.scores(x).expect("scores failed")
        );
    }
}

/// Like [`tiny_lut_classifier`] but carrying a `BIN1` binary-kernel
/// section (multifold on, so the escalation fields round-trip too).
fn tiny_binary_classifier() -> (LookHdClassifier, Vec<Vec<f64>>) {
    let (_, features) = tiny_classifier();
    let labels: Vec<usize> = (0..features.len()).map(|i| i % 2).collect();
    let config = LookHdConfig::new()
        .with_dim(64)
        .with_q(2)
        .with_r(2)
        .with_retrain_epochs(1)
        .with_compression(CompressionConfig::new().with_decorrelate(false))
        .with_kernel(KernelSpec::binary().with_multifold(2));
    let clf = LookHdClassifier::fit(&config, &features, &labels).expect("training failed");
    assert_eq!(clf.kernel().name(), "binary");
    (clf, features)
}

#[test]
fn binary_classifier_truncated_at_every_length_errors() {
    let (clf, _) = tiny_binary_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for cut in 0..bytes.len() {
        assert!(
            LookHdClassifier::from_bytes(&bytes[..cut]).is_err(),
            "binary truncation at {cut}/{} parsed successfully",
            bytes.len()
        );
    }
    let mut longer = bytes.clone();
    longer.push(0);
    assert!(LookHdClassifier::from_bytes(&longer).is_err());
}

#[test]
fn binary_classifier_survives_every_single_byte_flip() {
    let (clf, features) = tiny_binary_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        if let Ok(back) = LookHdClassifier::from_bytes(&bad) {
            let _ = back.predict(&features[0]);
        }
    }
}

#[test]
fn binary_classifier_intact_round_trip_predicts_identically() {
    let (clf, features) = tiny_binary_classifier();
    let bytes = clf.to_bytes().expect("serialization failed");
    let back = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    assert_eq!(back.kernel().name(), "binary", "kernel lost in round trip");
    for x in &features {
        assert_eq!(
            clf.predict(x).expect("predict failed"),
            back.predict(x).expect("predict failed")
        );
        assert_eq!(
            clf.scores(x).expect("scores failed"),
            back.scores(x).expect("scores failed")
        );
    }
}

#[test]
fn hdc1_model_sweep_never_panics() {
    let (clf, _) = tiny_classifier();
    let bytes = model_to_bytes(clf.model()).expect("serialization failed");
    for cut in 0..bytes.len() {
        assert!(
            model_from_bytes(&bytes[..cut]).is_err(),
            "HDC1 truncation at {cut}/{} parsed successfully",
            bytes.len()
        );
    }
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        let _ = model_from_bytes(&bad);
    }
}

#[test]
fn lkc1_compressed_sweep_never_panics() {
    let (clf, features) = tiny_classifier();
    let bytes = clf.compressed().to_bytes().expect("serialization failed");
    for cut in 0..bytes.len() {
        assert!(
            CompressedModel::from_bytes(&bytes[..cut]).is_err(),
            "LKC1 truncation at {cut}/{} parsed successfully",
            bytes.len()
        );
    }
    let query = clf.encode(&features[0]).expect("encode failed");
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        if let Ok(back) = CompressedModel::from_bytes(&bad) {
            let _ = back.predict(&query);
        }
    }
}
