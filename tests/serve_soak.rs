//! High-concurrency soak and admission-control tests for the readiness-
//! based serve event loop.
//!
//! The acceptance bar of the reactor rewrite: a thousand-plus concurrent
//! pipelined connections served with responses **bit-identical** to the
//! direct single-threaded predict path and zero in-deadline drops, the
//! tiered admission control (connection cap at accept, queue-pressure
//! shed at accept, per-request overload) answering with explicit
//! `Overloaded` errors instead of hangs, and event-driven shutdown that
//! wakes the reactors without the old self-connect hack — including on
//! `0.0.0.0` binds, where self-connect used to wedge `join()`.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use lookhd_paper::hdc::Classifier;
use lookhd_paper::prelude::*;
use lookhd_paper::serve::{self, Client, ErrorCode, Request, Response, ServeConfig};

/// Well-separated 3-class training set plus off-grid query rows.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.5 + t / 3.0, t * t, 0.3 + t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

fn trained_bytes() -> (Vec<u8>, Vec<Vec<f64>>) {
    let (xs, ys, queries) = dataset();
    let config = LookHdConfig::new().with_dim(256).with_retrain_epochs(2);
    let clf = LookHdClassifier::fit(&config, &xs, &ys).expect("training failed");
    (clf.to_bytes().expect("serialization failed"), queries)
}

/// A classifier that holds every predict for a fixed duration — lets the
/// admission tests fill the request queue deterministically.
struct SlowStub {
    hold: Duration,
}

impl Classifier for SlowStub {
    fn num_classes(&self) -> usize {
        2
    }

    fn predict(&self, _features: &[f64]) -> lookhd_paper::hdc::Result<usize> {
        std::thread::sleep(self.hold);
        Ok(0)
    }
}

/// ≥1k concurrent pipelined connections, every response bit-identical to
/// the direct predict path, zero drops. Connections are all opened (and
/// verified accepted) before any load is issued, so the server really
/// holds the full population concurrently.
#[test]
fn soak_1k_pipelined_connections_stay_bit_identical() {
    const CONNS: usize = 1024;
    const DRIVERS: usize = 8;
    const WINDOW: usize = 3;

    let (bytes, queries) = trained_bytes();
    let direct = LookHdClassifier::from_bytes(&bytes).expect("reload failed");
    let expected: Arc<Vec<usize>> = Arc::new(
        queries
            .iter()
            .map(|q| direct.predict(q).expect("direct predict failed"))
            .collect(),
    );
    let queries = Arc::new(queries);

    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new()
            .with_workers(2)
            .with_max_batch(64)
            .with_queue_cap(CONNS * WINDOW)
            .with_timeout(Duration::from_secs(30))
            .with_reactors(2)
            .with_max_conns(2 * CONNS),
    )
    .expect("bind failed");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for driver in 0..DRIVERS {
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                // Phase 1: open this driver's share of the population and
                // prove each connection live with one round trip, so all
                // CONNS sockets are concurrently accepted before the
                // pipelined load starts.
                let mut clients: Vec<Client> = (0..CONNS / DRIVERS)
                    .map(|i| {
                        let client = Client::connect(addr)
                            .unwrap_or_else(|e| panic!("driver {driver} conn {i}: {e}"));
                        client
                            .set_read_timeout(Some(Duration::from_secs(30)))
                            .unwrap();
                        client
                    })
                    .collect();
                for (i, client) in clients.iter_mut().enumerate() {
                    let q = (driver + i) % queries.len();
                    match client
                        .predict(q as u64, &queries[q])
                        .expect("warmup failed")
                    {
                        Response::Predict { id, class, .. } => {
                            assert_eq!(id, q as u64);
                            assert_eq!(class as usize, expected[q], "warmup {q} diverged");
                        }
                        other => panic!("unexpected warmup response {other:?}"),
                    }
                }
                // Phase 2: WINDOW pipelined requests on every connection,
                // then collect. Workers may answer a connection's window
                // out of order, so responses are matched by id.
                for (i, client) in clients.iter_mut().enumerate() {
                    for w in 0..WINDOW {
                        let q = (driver + i + w) % queries.len();
                        // Odd drivers speak the traced v2 layout.
                        let trace_id = if driver % 2 == 1 { q as u64 + 1 } else { 0 };
                        client
                            .send(&Request::Predict {
                                id: q as u64,
                                trace_id,
                                features: queries[q].clone(),
                            })
                            .expect("pipelined send failed");
                    }
                }
                for client in clients.iter_mut() {
                    for _ in 0..WINDOW {
                        match client.recv().expect("pipelined recv failed") {
                            Response::Predict {
                                id,
                                trace_id,
                                class,
                            } => {
                                let q = id as usize;
                                let want_trace = if driver % 2 == 1 { id + 1 } else { 0 };
                                assert_eq!(trace_id, want_trace, "trace id not echoed");
                                assert_eq!(
                                    class as usize, expected[q],
                                    "pipelined query {q} diverged under 1k-connection load"
                                );
                            }
                            other => panic!("unexpected soak response {other:?}"),
                        }
                    }
                }
            });
        }
    });

    handle.shutdown();
    handle.join();
}

/// Connections beyond `max_conns` are rejected at accept with an
/// explicit `Overloaded` error frame and an immediate close, while the
/// admitted population keeps serving.
#[test]
fn connection_cap_rejects_excess_connections_with_overloaded() {
    const CAP: usize = 4;

    let (bytes, queries) = trained_bytes();
    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new()
            .with_workers(1)
            .with_timeout(Duration::from_secs(30))
            .with_max_conns(CAP),
    )
    .expect("bind failed");
    let addr = handle.addr();

    // Fill the cap, proving each admitted connection live (the round
    // trips also guarantee all CAP accepts happened before the probe).
    let mut admitted: Vec<Client> = (0..CAP)
        .map(|i| {
            let mut client = Client::connect(addr).expect("connect failed");
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            match client
                .predict(i as u64, &queries[0])
                .expect("predict failed")
            {
                Response::Predict { id, .. } => assert_eq!(id, i as u64),
                other => panic!("unexpected response {other:?}"),
            }
            client
        })
        .collect();

    // The CAP+1'th connection gets one Overloaded frame, then EOF.
    let mut probe = Client::connect(addr).expect("probe connect failed");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match probe.recv().expect("rejection frame expected") {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Overloaded, "{message}");
            assert!(
                message.contains("connection"),
                "rejection should name the connection cap: {message}"
            );
        }
        other => panic!("expected Overloaded rejection, got {other:?}"),
    }
    assert!(
        probe.recv().is_err(),
        "rejected connection must be closed after the error frame"
    );

    // The admitted population is unaffected by the rejection.
    for (i, client) in admitted.iter_mut().enumerate() {
        match client
            .predict(100 + i as u64, &queries[1])
            .expect("post-rejection predict failed")
        {
            Response::Predict { id, .. } => assert_eq!(id, 100 + i as u64),
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Closing an admitted connection frees its slot for a newcomer.
    drop(admitted.pop());
    let mut retry = None;
    for _ in 0..100 {
        let mut client = Client::connect(addr).expect("retry connect failed");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        match client.predict(999, &queries[0]) {
            Ok(Response::Predict { id, .. }) => {
                assert_eq!(id, 999);
                retry = Some(client);
                break;
            }
            // The reactor may not have reaped the closed socket yet.
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(
        retry.is_some(),
        "freed slot was never granted to a newcomer"
    );

    handle.shutdown();
    handle.join();
}

/// With the request queue full, new connections are shed at accept with
/// an `Overloaded` frame (tier 2) and requests on admitted connections
/// get per-request `Overloaded` responses (tier 4) — neither hangs.
#[test]
fn queue_pressure_sheds_new_connections_and_requests() {
    let hold = Duration::from_millis(2000);
    let model: serve::SharedClassifier = Arc::new(SlowStub { hold });
    let handle = serve::start(
        "127.0.0.1:0",
        model,
        ServeConfig::new()
            .with_workers(1)
            .with_max_batch(1)
            .with_queue_cap(2)
            .with_timeout(Duration::from_secs(30)),
    )
    .expect("bind failed");
    let addr = handle.addr();

    // Request 0 first, alone, so the worker pops it and falls asleep in
    // the stub; then a burst: 1 and 2 fill the queue (the worker is held
    // for `hold`), and 3 must be shed per-request.
    let mut filler = Client::connect(addr).expect("connect failed");
    filler
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    filler
        .send(&Request::Predict {
            id: 0,
            trace_id: 0,
            features: vec![0.5],
        })
        .expect("send failed");
    std::thread::sleep(Duration::from_millis(300));
    for id in 1..4u64 {
        filler
            .send(&Request::Predict {
                id,
                trace_id: 0,
                features: vec![0.5],
            })
            .expect("send failed");
    }
    // The shed response arrives immediately (the worker holds the rest).
    match filler.recv().expect("shed response expected") {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 3, "the over-quota request should be shed");
            assert_eq!(code, ErrorCode::Overloaded);
        }
        other => panic!("expected per-request Overloaded, got {other:?}"),
    }

    // While the queue is still full (the stub holds the worker for
    // `hold`), a brand-new connection is shed at accept time.
    let mut probe = Client::connect(addr).expect("probe connect failed");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match probe.recv().expect("accept-shed frame expected") {
        Response::Error { code, message, .. } => {
            assert_eq!(code, ErrorCode::Overloaded, "{message}");
            assert!(
                message.contains("queue"),
                "accept shed should name the queue: {message}"
            );
        }
        other => panic!("expected accept-time Overloaded, got {other:?}"),
    }
    assert!(
        probe.recv().is_err(),
        "shed connection must be closed after the error frame"
    );

    // The filler's three admitted requests all complete.
    let mut served: Vec<u64> = (0..3)
        .map(|_| match filler.recv().expect("held response expected") {
            Response::Predict { id, class, .. } => {
                assert_eq!(class, 0);
                id
            }
            other => panic!("unexpected response {other:?}"),
        })
        .collect();
    served.sort_unstable();
    assert_eq!(served, [0, 1, 2]);

    handle.shutdown();
    handle.join();
}

/// `shutdown()` + `join()` complete promptly on a `0.0.0.0` bind with
/// live idle connections — the regression the event-driven drain fixes:
/// the old accept-loop unblocking self-connected to `local_addr()`,
/// which on an unspecified bind address never reached the listener and
/// wedged `join()` forever.
#[test]
fn shutdown_wakes_reactors_on_unspecified_bind() {
    let (bytes, queries) = trained_bytes();
    let model = serve::classifier_from_bytes(&bytes).expect("model load failed");
    let handle =
        serve::start("0.0.0.0:0", model, ServeConfig::new().with_workers(1)).expect("bind failed");
    let port = handle.addr().port();

    // An idle connection (no pending request) must not block the drain.
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client.predict(7, &queries[0]).expect("predict failed") {
        Response::Predict { id, .. } => assert_eq!(id, 7),
        other => panic!("unexpected response {other:?}"),
    }

    handle.shutdown();
    let (done_tx, done_rx) = mpsc::channel();
    let joiner = std::thread::spawn(move || {
        handle.join();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("join() wedged after shutdown on a 0.0.0.0 bind");
    joiner.join().unwrap();
}
