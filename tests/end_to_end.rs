//! End-to-end integration tests: the full LookHD pipeline against every
//! application profile, plus baseline-vs-LookHD sanity on each.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::classifier::{HdcClassifier, HdcConfig};
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};

const DIM: usize = 768;

#[test]
fn lookhd_learns_every_application_profile() {
    for app in App::ALL {
        let profile = app.profile();
        let data = profile.generate_small(11);
        let config = LookHdConfig::new()
            .with_dim(DIM)
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(3);
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let acc = clf
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        let chance = 1.0 / profile.n_classes as f64;
        // Halfway between chance and the paper's accuracy for this app
        // (the profiles include an ambiguous subpopulation, so the paper
        // accuracy — not 100% — is the ceiling).
        let floor = chance + 0.5 * (profile.paper_accuracy_baseline - chance);
        assert!(
            acc > floor,
            "{}: accuracy {acc:.3} below floor {floor:.3}",
            profile.name
        );
    }
}

#[test]
fn baseline_learns_every_application_profile() {
    for app in App::ALL {
        let profile = app.profile();
        let data = profile.generate_small(12);
        let config = HdcConfig::new()
            .with_dim(DIM)
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(3);
        let clf = HdcClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let acc = clf
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        let chance = 1.0 / profile.n_classes as f64;
        let floor = chance + 0.5 * (profile.paper_accuracy_baseline - chance);
        assert!(
            acc > floor,
            "{}: accuracy {acc:.3} below floor {floor:.3}",
            profile.name
        );
    }
}

#[test]
fn uncompressed_lookhd_matches_baseline_on_easy_profile() {
    // On PHYSICAL (well-separated), the LookHD pipeline with q=2 equalized
    // levels should match the baseline's q=8 linear accuracy (the paper's
    // quantization-reduction claim).
    let profile = App::Physical.profile();
    let data = profile.generate_small(13);
    let base = HdcClassifier::fit(
        &HdcConfig::new()
            .with_dim(DIM)
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(3),
        &data.train.features,
        &data.train.labels,
    )
    .expect("baseline failed");
    let look = LookHdClassifier::fit(
        &LookHdConfig::new()
            .with_dim(DIM)
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(3),
        &data.train.features,
        &data.train.labels,
    )
    .expect("lookhd failed");
    let base_acc = base
        .evaluate(&data.test.features, &data.test.labels)
        .expect("scoring failed");
    let mut unc = 0usize;
    for (x, &y) in data.test.features.iter().zip(&data.test.labels) {
        if look.predict_uncompressed(x).expect("predict failed") == y {
            unc += 1;
        }
    }
    let look_acc = unc as f64 / data.test.len() as f64;
    assert!(
        look_acc + 0.07 >= base_acc,
        "LookHD q=2 equalized ({look_acc:.3}) should track baseline q=8 linear ({base_acc:.3})"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let profile = App::Extra.profile();
    let data = profile.generate_small(14);
    let config = LookHdConfig::new()
        .with_dim(512)
        .with_seed(1234)
        .with_retrain_epochs(2);
    let a = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
        .expect("training failed");
    let b = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
        .expect("training failed");
    assert_eq!(
        a.predict_batch(&data.test.features)
            .expect("predict failed"),
        b.predict_batch(&data.test.features)
            .expect("predict failed")
    );
}

#[test]
fn compressed_model_is_smaller_for_every_app() {
    for app in App::ALL {
        let profile = app.profile();
        let data = profile.generate_small(15);
        let clf = LookHdClassifier::fit(
            &LookHdConfig::new().with_dim(256).with_retrain_epochs(0),
            &data.train.features,
            &data.train.labels,
        )
        .expect("training failed");
        assert!(
            clf.compressed().size_bytes() <= clf.model().size_bytes(),
            "{}: compression must not grow the model",
            profile.name
        );
        // Adaptive grouping may shrink groups below 12 when validation
        // shows quality loss, but never below one class per vector.
        let min_vectors = profile.n_classes.div_ceil(12);
        let vectors = clf.compressed().n_vectors();
        assert!(
            (min_vectors..=profile.n_classes).contains(&vectors),
            "{}: {vectors} vectors outside [{min_vectors}, {}]",
            profile.name,
            profile.n_classes
        );
        // With adaptive grouping disabled, the paper's fixed ⌈k/12⌉ holds.
        let fixed = LookHdClassifier::fit(
            &LookHdConfig::new()
                .with_dim(256)
                .with_retrain_epochs(0)
                .with_adaptive_grouping(false),
            &data.train.features,
            &data.train.labels,
        )
        .expect("training failed");
        assert_eq!(
            fixed.compressed().n_vectors(),
            min_vectors,
            "{}",
            profile.name
        );
    }
}
