//! Property-based tests of the hypervector algebra (proptest).

use lookhd_paper::hdc::hv::{BipolarHv, DenseHv};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bipolar(dim: usize, seed: u64) -> BipolarHv {
    let mut rng = StdRng::seed_from_u64(seed);
    BipolarHv::random(dim, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binding is commutative, associative, self-inverse, and preserves
    /// the dot product (it is an isometry of the hypercube).
    #[test]
    fn bind_algebra(dim in 1usize..300, s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let a = bipolar(dim, s1);
        let b = bipolar(dim, s2);
        let c = bipolar(dim, s3);
        prop_assert_eq!(a.bind(&b), b.bind(&a));
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
        prop_assert_eq!(a.bind(&b).bind(&b), a.clone());
        prop_assert_eq!(a.bind(&c).dot(&b.bind(&c)), a.dot(&b));
    }

    /// Rotation is a group action: ρ^i ∘ ρ^j = ρ^{i+j}, ρ^D = id, and it
    /// preserves dot products.
    #[test]
    fn rotation_group(dim in 1usize..300, i in 0usize..500, j in 0usize..500, s in any::<u64>()) {
        let a = bipolar(dim, s);
        prop_assert_eq!(a.rotated(i).rotated(j), a.rotated(i + j));
        prop_assert_eq!(a.rotated(dim), a.clone());
        let b = bipolar(dim, s ^ 0xdead);
        prop_assert_eq!(a.rotated(i).dot(&b.rotated(i)), a.dot(&b));
    }

    /// Dot products satisfy |a·b| ≤ D with equality iff a = ±b, and
    /// hamming/dot stay consistent.
    #[test]
    fn dot_bounds(dim in 1usize..300, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = bipolar(dim, s1);
        let b = bipolar(dim, s2);
        let d = a.dot(&b);
        prop_assert!(d.abs() <= dim as i64);
        prop_assert_eq!(d, dim as i64 - 2 * a.hamming(&b) as i64);
        prop_assert_eq!(a.dot(&a), dim as i64);
        prop_assert_eq!(a.dot(&a.negated()), -(dim as i64));
    }

    /// Bundling then subtracting the same hypervectors returns to zero,
    /// and the fused rotated-add matches the explicit rotation.
    #[test]
    fn dense_accumulation(dim in 1usize..300, rot in 0usize..600, s in any::<u64>()) {
        let hv = bipolar(dim, s);
        let mut acc = DenseHv::zeros(dim);
        acc.add_rotated_bipolar(&hv, rot);
        let mut explicit = DenseHv::zeros(dim);
        explicit.add_bipolar(&hv.rotated(rot));
        prop_assert_eq!(&acc, &explicit);
        acc.sub_bipolar(&hv.rotated(rot));
        prop_assert_eq!(acc, DenseHv::zeros(dim));
    }

    /// Binding a dense vector twice with the same key is the identity, and
    /// `dot_bipolar` agrees with densifying the key.
    #[test]
    fn dense_bind_involution(dim in 1usize..200, s in any::<u64>(), vals in proptest::collection::vec(-50i32..50, 1..200)) {
        let dim = dim.min(vals.len()).max(1);
        let v = DenseHv::from_vec(vals[..dim].to_vec());
        let key = bipolar(dim, s);
        prop_assert_eq!(v.bound(&key).bound(&key), v.clone());
        prop_assert_eq!(v.dot_bipolar(&key), v.dot(&DenseHv::from(&key)));
    }

    /// The sign of a bundle of one bipolar hypervector is that hypervector.
    #[test]
    fn sign_of_single_bundle(dim in 1usize..300, s in any::<u64>()) {
        let hv = bipolar(dim, s);
        let mut acc = DenseHv::zeros(dim);
        acc.add_bipolar(&hv);
        prop_assert_eq!(acc.sign(), hv);
    }
}
