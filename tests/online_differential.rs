//! Online-vs-batch training differential: streaming examples one at a
//! time into a [`StreamingTrainer`] (in any order, sharded across any
//! worker count) must materialize a model **bit-identical** to a single
//! batch `fit` on the same data.
//!
//! The property holds by construction — counter training is additive,
//! so counter accumulation is associative and commutative, and
//! `materialize` runs the exact pipeline tail batch `fit` runs once its
//! sample-dependent stages are disabled (`retrain_epochs = 0`,
//! `validation_fraction = 0`, `adaptive_grouping = false`):
//! finalize → refresh norms → compress → kernel build, all
//! deterministic given the encoder and seed. These tests pin that
//! argument at three layers: the raw chunk counters (`PartialEq`), the
//! persisted `LKS1` artifact bytes (encoder + model + compressed
//! weights + kernel tables, engine/report state excluded by design),
//! and wire-level predictions.

use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{
    CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig, StreamingTrainer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Well-separated 3-class training set (5 features) plus off-grid
/// queries — the serve-soak dataset shape.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..45 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let jitter = (i / 3) as f64 * 0.006;
        xs.push(vec![base + jitter, base - jitter, base, 1.0 - base, base]);
        ys.push(class);
    }
    let queries = (0..37)
        .map(|i| {
            let t = i as f64 / 36.0;
            vec![t, 1.0 - t, 0.3 + t / 3.0, t * t, 0.9 - t / 2.0]
        })
        .collect();
    (xs, ys, queries)
}

/// The streaming-compatible batch configuration: every stage that
/// depends on *how many* samples arrived together is off, leaving the
/// counter pipeline that incremental observation reproduces exactly.
fn normalized_config(kernel: KernelSpec) -> LookHdConfig {
    // The integer lut/binary kernels require compression without
    // decorrelation (the CLI's train path applies the same rule).
    let decorrelate = kernel == KernelSpec::dense();
    LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_adaptive_grouping(false)
        .with_compression(CompressionConfig::new().with_decorrelate(decorrelate))
        .with_kernel(kernel)
}

fn artifact(clf: &LookHdClassifier) -> Vec<u8> {
    clf.to_bytes().expect("serialization failed")
}

#[test]
fn streaming_one_at_a_time_matches_batch_fit_for_every_kernel() {
    let (xs, ys, queries) = dataset();
    for kernel in [KernelSpec::dense(), KernelSpec::lut(), KernelSpec::binary()] {
        let config = normalized_config(kernel);
        let reference = LookHdClassifier::fit(&config, &xs, &ys).expect("batch fit failed");

        let mut trainer =
            StreamingTrainer::from_classifier(&reference).expect("trainer derivation failed");
        assert_eq!(trainer.observed(), 0, "fresh trainer must start at zero");
        for (x, &y) in xs.iter().zip(&ys) {
            trainer.observe(x, y).expect("observe failed");
        }
        assert_eq!(trainer.observed(), xs.len() as u64);

        let streamed = trainer.materialize().expect("materialize failed");
        assert_eq!(
            artifact(&streamed),
            artifact(&reference),
            "streamed artifact diverged from batch fit (kernel {})",
            streamed.kernel().name(),
        );
        for q in &queries {
            assert_eq!(
                streamed.predict(q).unwrap(),
                reference.predict(q).unwrap(),
                "prediction diverged on {q:?}",
            );
        }
    }
}

#[test]
fn shuffled_order_and_sharded_merge_are_bit_identical_across_worker_counts() {
    let (xs, ys, _) = dataset();
    let config = normalized_config(KernelSpec::lut());
    let reference = LookHdClassifier::fit(&config, &xs, &ys).expect("batch fit failed");
    let reference_bytes = artifact(&reference);

    let mut serial = StreamingTrainer::from_classifier(&reference).expect("trainer failed");
    for (x, &y) in xs.iter().zip(&ys) {
        serial.observe(x, y).expect("observe failed");
    }

    let mut rng = StdRng::seed_from_u64(0xd1ff);
    for workers in [1usize, 2, 3, 7] {
        // Shuffle the example order, then shard round-robin across
        // `workers` independent trainers.
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.shuffle(&mut rng);
        let mut shards: Vec<StreamingTrainer> = (0..workers)
            .map(|_| StreamingTrainer::from_classifier(&reference).expect("trainer failed"))
            .collect();
        for (slot, &i) in order.iter().enumerate() {
            shards[slot % workers]
                .observe(&xs[i], ys[i])
                .expect("observe failed");
        }
        // Merge the shards back in a shuffled order too: counter
        // addition must not care.
        let mut merged = shards.pop().expect("at least one shard");
        shards.shuffle(&mut rng);
        for shard in &shards {
            merged.merge(shard).expect("merge failed");
        }

        assert_eq!(
            merged.counters(),
            serial.counters(),
            "{workers}-way sharded counters diverged from serial streaming",
        );
        let materialized = merged.materialize().expect("materialize failed");
        assert_eq!(
            artifact(&materialized),
            reference_bytes,
            "{workers}-way sharded artifact diverged from batch fit",
        );
    }
}

#[test]
fn observed_counters_track_the_fed_label_histogram() {
    let (xs, ys, _) = dataset();
    let config = normalized_config(KernelSpec::dense());
    let reference = LookHdClassifier::fit(&config, &xs, &ys).expect("batch fit failed");
    let mut trainer = StreamingTrainer::from_classifier(&reference).expect("trainer failed");

    let mut expected = [0u64; 3];
    for (x, &y) in xs.iter().zip(&ys).take(31) {
        trainer.observe(x, y).expect("observe failed");
        expected[y] += 1;
    }
    assert_eq!(trainer.observed(), 31);
    for (class, &want) in expected.iter().enumerate() {
        assert_eq!(
            trainer.observed_for(class),
            want,
            "class {class} observation count drifted",
        );
    }
    assert_eq!(
        trainer.observed_for(99),
        0,
        "out-of-range class must read 0"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any dataset, any stream permutation: the streamed counters and
    /// the materialized artifact equal the batch fit's, exactly.
    #[test]
    fn any_permutation_streams_to_the_batch_model(
        xs in proptest::collection::vec(
            proptest::collection::vec(0.05f64..0.95, 4),
            16..40,
        ),
        label_seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        // Labels derive deterministically from the seed; the first
        // three are forced distinct so fit and streaming agree on the
        // class count.
        let mut ys: Vec<usize> = xs
            .iter()
            .enumerate()
            .map(|(i, _)| (label_seed.rotate_left((i % 64) as u32) ^ i as u64) as usize % 3)
            .collect();
        for (class, y) in ys.iter_mut().enumerate().take(3) {
            *y = class;
        }

        let config = normalized_config(KernelSpec::dense()).with_dim(128);
        let reference = LookHdClassifier::fit(&config, &xs, &ys).expect("batch fit failed");

        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let mut trainer = StreamingTrainer::from_classifier(&reference).expect("trainer failed");
        for &i in &order {
            trainer.observe(&xs[i], ys[i]).expect("observe failed");
        }

        let streamed = trainer.materialize().expect("materialize failed");
        prop_assert_eq!(artifact(&streamed), artifact(&reference));
    }
}
