//! Property-based tests for the `lookhd-serve` wire codec: encode→decode
//! round trips for arbitrary feature vectors and request ids — across
//! the LHQ1 predict family and the LHF1 feedback family (feedback /
//! refresh / stamped predict) — and decoder totality (never panics,
//! never overallocates) on arbitrary byte soup. The totality properties
//! cover LHF1 for free: arbitrary bytes include the `LHF1` magic, and
//! any Ok must re-encode/re-decode to itself.

use lookhd_paper::serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorCode, Request, Response, WireError, MAX_FRAME_LEN,
};
use proptest::prelude::*;

fn error_code(tag: u8) -> ErrorCode {
    match tag % 5 {
        0 => ErrorCode::BadRequest,
        1 => ErrorCode::DeadlineExceeded,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::Internal,
        _ => ErrorCode::ShuttingDown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Predict requests round-trip bit-exactly for arbitrary ids, trace
    /// ids (zero = v1 layout, non-zero = v2), and feature vectors (f64 LE
    /// bytes are preserved verbatim).
    #[test]
    fn predict_request_round_trips(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        features in proptest::collection::vec(-1e9f64..1e9, 0..300),
    ) {
        let request = Request::Predict { id, trace_id, features };
        let body = encode_request(&request);
        let back = decode_request(&body).unwrap();
        prop_assert_eq!(&back, &request);
        // And through framing.
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let unframed = read_frame(&mut std::io::Cursor::new(&framed)).unwrap();
        prop_assert_eq!(decode_request(&unframed).unwrap(), request);
    }

    /// A v2 frame is exactly its v1 sibling with the 8-byte trace id
    /// spliced in after the request id, for every id/payload.
    #[test]
    fn traced_layout_is_v1_plus_spliced_trace_id(
        id in any::<u64>(),
        trace_id in 1u64..=u64::MAX,
        features in proptest::collection::vec(-1e9f64..1e9, 0..50),
    ) {
        let v1 = encode_request(&Request::Predict { id, trace_id: 0, features: features.clone() });
        let v2 = encode_request(&Request::Predict { id, trace_id, features });
        prop_assert_eq!(v2.len(), v1.len() + 8);
        prop_assert_eq!(&v2[..4], &v1[..4]);           // magic
        prop_assert_eq!(v1[4], 1u8);                   // version
        prop_assert_eq!(v2[4], 2u8);
        prop_assert_eq!(&v2[5..14], &v1[5..14]);       // kind + request id
        prop_assert_eq!(&v2[14..22], &trace_id.to_le_bytes()[..]);
        prop_assert_eq!(&v2[22..], &v1[14..]);         // payload
    }

    /// LHF1 feedback-family requests round-trip bit-exactly — feedback,
    /// refresh, and stamped predicts, in both the v1 and v2 (traced)
    /// layouts, through the codec and through framing.
    #[test]
    fn feedback_family_requests_round_trip(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        label in any::<u32>(),
        features in proptest::collection::vec(-1e9f64..1e9, 0..300),
    ) {
        let requests = [
            Request::Feedback { id, trace_id, label, features: features.clone() },
            Request::Refresh { id, trace_id },
            Request::PredictStamped { id, trace_id, features },
        ];
        for request in requests {
            let body = encode_request(&request);
            prop_assert_eq!(&decode_request(&body).unwrap(), &request);
            let mut framed = Vec::new();
            write_frame(&mut framed, &body).unwrap();
            let unframed = read_frame(&mut std::io::Cursor::new(&framed)).unwrap();
            prop_assert_eq!(decode_request(&unframed).unwrap(), request);
        }
    }

    /// The LHF1 traced layout obeys the same splice rule as LHQ1: a v2
    /// feedback frame is its v1 sibling with the 8-byte trace id
    /// inserted after the request id.
    #[test]
    fn feedback_traced_layout_is_v1_plus_spliced_trace_id(
        id in any::<u64>(),
        trace_id in 1u64..=u64::MAX,
        label in any::<u32>(),
        features in proptest::collection::vec(-1e9f64..1e9, 0..50),
    ) {
        let v1 = encode_request(&Request::Feedback {
            id, trace_id: 0, label, features: features.clone(),
        });
        let v2 = encode_request(&Request::Feedback { id, trace_id, label, features });
        prop_assert_eq!(v2.len(), v1.len() + 8);
        prop_assert_eq!(&v2[..4], b"LHF1");               // magic
        prop_assert_eq!(v1[4], 1u8);                      // version
        prop_assert_eq!(v2[4], 2u8);
        prop_assert_eq!(&v2[5..14], &v1[5..14]);          // kind + request id
        prop_assert_eq!(&v2[14..22], &trace_id.to_le_bytes()[..]);
        prop_assert_eq!(&v2[22..], &v1[14..]);            // payload
    }

    /// Feedback-family responses round-trip for arbitrary versions,
    /// observation counts, and classes.
    #[test]
    fn feedback_family_responses_round_trip(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        class in any::<u32>(),
        version in any::<u64>(),
        observed in any::<u64>(),
    ) {
        let responses = [
            Response::FeedbackAck { id, trace_id, version, observed },
            Response::RefreshAck { id, trace_id, version },
            Response::PredictStamped { id, trace_id, class, version },
        ];
        for response in responses {
            prop_assert_eq!(
                decode_response(&encode_response(&response)).unwrap(),
                response
            );
        }
    }

    /// Control requests round-trip for arbitrary ids.
    #[test]
    fn control_requests_round_trip(id in any::<u64>(), shutdown in any::<bool>()) {
        let request = if shutdown {
            Request::Shutdown { id }
        } else {
            Request::Ping { id }
        };
        prop_assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
    }

    /// Responses round-trip for arbitrary ids, classes, error codes, and
    /// in-cap messages.
    #[test]
    fn responses_round_trip(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        class in any::<u32>(),
        tag in any::<u8>(),
        message in "[a-z ]{0,80}",
    ) {
        let responses = [
            Response::Predict { id, trace_id, class },
            Response::Pong { id },
            Response::Error { id, trace_id, code: error_code(tag), message },
        ];
        for response in responses {
            prop_assert_eq!(
                decode_response(&encode_response(&response)).unwrap(),
                response
            );
        }
    }

    /// The request decoder is total on arbitrary bytes: it returns, never
    /// panics, and any Ok re-encodes to something it decodes again.
    #[test]
    fn request_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        if let Ok(request) = decode_request(&bytes) {
            prop_assert_eq!(decode_request(&encode_request(&request)).unwrap(), request);
        }
    }

    /// The response decoder is total on arbitrary bytes.
    #[test]
    fn response_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        if let Ok(response) = decode_response(&bytes) {
            prop_assert_eq!(decode_response(&encode_response(&response)).unwrap(), response);
        }
    }

    /// The frame reader is total on arbitrary byte streams and never
    /// hands back a body larger than the cap, whatever the length prefix
    /// claims.
    #[test]
    fn frame_reader_never_panics_or_overallocates(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        match read_frame(&mut std::io::Cursor::new(&bytes)) {
            Ok(body) => prop_assert!(body.len() <= MAX_FRAME_LEN),
            Err(
                WireError::TooLarge { .. } | WireError::Truncated { .. } | WireError::Io(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected framing error {other:?}"),
        }
    }
}
