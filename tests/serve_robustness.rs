//! Robustness tests for the batched inference server's flow-control
//! machinery: per-request deadlines expire queued work (and free the
//! slot), a full bounded queue rejects with a backpressure error instead
//! of buffering unboundedly, and graceful shutdown drains every accepted
//! request before the workers exit.

use std::sync::Arc;
use std::time::Duration;

use lookhd_paper::hdc::{Classifier, HdcError, Result as HdcResult};
use lookhd_paper::serve::{self, Client, ErrorCode, Request, Response, ServeConfig};

/// Sign-of-first-feature classifier that sleeps in `predict`, simulating
/// an expensive model so requests pile up behind the workers.
struct SlowStub {
    delay: Duration,
}

impl Classifier for SlowStub {
    fn num_classes(&self) -> usize {
        2
    }

    fn predict(&self, features: &[f64]) -> HdcResult<usize> {
        std::thread::sleep(self.delay);
        match features.first() {
            Some(&v) => Ok(usize::from(v >= 0.0)),
            None => Err(HdcError::invalid_dataset("empty feature vector")),
        }
    }
}

fn start_slow(delay: Duration, config: ServeConfig) -> serve::ServerHandle {
    serve::start("127.0.0.1:0", Arc::new(SlowStub { delay }), config).expect("bind failed")
}

/// Requests that sit in the queue past their deadline get a
/// `DeadlineExceeded` error instead of a stale (but expensive) answer,
/// and the freed server keeps serving fresh requests afterwards.
#[test]
fn queued_requests_past_their_deadline_time_out() {
    let handle = start_slow(
        Duration::from_millis(80),
        ServeConfig::new()
            .with_workers(1)
            .with_max_batch(1)
            .with_timeout(Duration::from_millis(30)),
    );
    let mut client = Client::connect(handle.addr()).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Pipeline three requests: the first is picked up fresh; the other
    // two wait the full 80 ms service time and expire (80 ms > 30 ms).
    for id in 0..3u64 {
        client
            .send(&Request::Predict {
                id,
                trace_id: 0,
                features: vec![1.0],
            })
            .expect("send failed");
    }
    let mut ok = 0usize;
    let mut expired = 0usize;
    for _ in 0..3 {
        match client.recv().expect("recv failed") {
            Response::Predict { class: 1, .. } => ok += 1,
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                ..
            } => expired += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok, 1, "exactly the fresh request should be served");
    assert_eq!(expired, 2, "stale queued requests should expire");

    // The expired requests freed their slots: a fresh request succeeds.
    match client.predict(99, &[1.0]).expect("round trip failed") {
        Response::Predict {
            id: 99, class: 1, ..
        } => {}
        other => panic!("unexpected response {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

/// With the queue full and the worker busy, further requests are
/// rejected immediately with `Overloaded` — every request still gets
/// exactly one response, and the server recovers once drained.
#[test]
fn full_queue_rejects_with_backpressure_error() {
    const BURST: u64 = 8;
    let handle = start_slow(
        Duration::from_millis(100),
        ServeConfig::new()
            .with_workers(1)
            .with_max_batch(1)
            .with_queue_cap(2)
            .with_timeout(Duration::from_secs(10)),
    );
    let mut client = Client::connect(handle.addr()).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    for id in 0..BURST {
        client
            .send(&Request::Predict {
                id,
                trace_id: 0,
                features: vec![1.0],
            })
            .expect("send failed");
    }
    let mut served = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..BURST {
        match client.recv().expect("recv failed") {
            Response::Predict { id, class: 1, .. } => served.push(id),
            Response::Error {
                id,
                code: ErrorCode::Overloaded,
                ..
            } => rejected.push(id),
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(
        !rejected.is_empty(),
        "a burst of {BURST} against queue_cap=2 must trip backpressure"
    );
    assert!(!served.is_empty(), "accepted requests must still be served");
    let mut all: Vec<u64> = served.iter().chain(&rejected).copied().collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..BURST).collect::<Vec<_>>(),
        "every id answered once"
    );

    // Once the backlog drains, capacity is available again.
    match client.predict(1000, &[1.0]).expect("round trip failed") {
        Response::Predict {
            id: 1000, class: 1, ..
        } => {}
        other => panic!("unexpected response {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

/// Graceful shutdown drains in-flight work: every request accepted
/// before the shutdown gets its real response, then all threads join.
#[test]
fn graceful_shutdown_drains_accepted_requests() {
    const PREDICTS: u64 = 4;
    let handle = start_slow(
        Duration::from_millis(20),
        ServeConfig::new()
            .with_workers(1)
            .with_max_batch(1)
            .with_queue_cap(64)
            .with_timeout(Duration::from_secs(10)),
    );
    let mut client = Client::connect(handle.addr()).expect("connect failed");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    for id in 0..PREDICTS {
        client
            .send(&Request::Predict {
                id,
                trace_id: 0,
                features: vec![1.0],
            })
            .expect("send failed");
    }
    // The ping is answered inline by the reader thread, so receiving the
    // pong proves the server consumed (and enqueued) all four predicts.
    // It must arrive *before* we trigger shutdown: shutdown half-closes
    // the read side, and unread frames would otherwise race with it.
    client
        .send(&Request::Ping { id: u64::MAX })
        .expect("send failed");
    let mut pongs = 0usize;
    let mut classes = vec![None; PREDICTS as usize];
    while pongs == 0 {
        match client.recv().expect("recv failed") {
            Response::Pong { id } => {
                assert_eq!(id, u64::MAX);
                pongs += 1;
            }
            Response::Predict { id, class, .. } => classes[id as usize] = Some(class),
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Trigger shutdown while the slow worker still has a backlog, then
    // collect the remaining predict responses — none may be dropped.
    handle.shutdown();
    while classes.iter().any(Option::is_none) {
        match client.recv().expect("shutdown dropped an accepted request") {
            Response::Predict { id, class, .. } => classes[id as usize] = Some(class),
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(
        classes.iter().all(|c| *c == Some(1)),
        "every accepted predict must be answered before shutdown: {classes:?}"
    );

    // All threads (accept, readers, workers) terminate.
    handle.join();
}
