//! Differential tests across the pluggable scoring kernels.
//!
//! Every kernel dispatches through the same `ScoreKernel` seam, so the
//! kernels are directly comparable on the five Table-I application
//! profiles: dense and score-LUT must agree *bit for bit* (scores and
//! argmax), and the binary Hamming kernel — an explicit approximation —
//! must keep its argmax agreement with the dense reference above a
//! recorded per-workload floor. Multifold prefix scoring only accepts a
//! fold's argmax early when the margin is unambiguous, so its agreement
//! with multifold-off binary scoring is pinned too, and a proptest checks
//! the Schmuck-style rematerialization property: binary class words
//! rebuilt from a round-tripped (seed-regenerated) model are bit-identical
//! to the words stored in the BIN1 section.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{
    BinaryKernel, CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig,
};
use proptest::prelude::*;

const DIM: usize = 512;

/// Dimensionality for the binary-agreement test. Hamming fidelity to the
/// dense argmax grows with `D` (binarization noise averages out); at 512
/// the hardest profile agrees ≈ 0.77, at 2048 every profile clears 0.85.
const DIM_BINARY: usize = 2048;

/// Minimum fraction of test queries on which the binary kernel's argmax
/// matches the dense reference at `DIM_BINARY`. The synthetic profiles
/// include an ambiguous subpopulation, so exact agreement is not the
/// ceiling; observed agreement per profile is printed by the test for
/// re-tuning (lowest observed: Extra at 0.868).
const BINARY_AGREEMENT_FLOOR: f64 = 0.80;

fn fit_dense_at(app: App, seed: u64, dim: usize) -> (LookHdClassifier, Vec<Vec<f64>>) {
    let profile = app.profile();
    let data = profile.generate_small(seed);
    let config = LookHdConfig::new()
        .with_dim(dim)
        .with_q(profile.paper_q_lookhd)
        .with_retrain_epochs(3)
        .with_compression(CompressionConfig::new().with_decorrelate(false));
    let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
        .expect("training failed");
    (clf, data.test.features)
}

fn fit_dense(app: App, seed: u64) -> (LookHdClassifier, Vec<Vec<f64>>) {
    fit_dense_at(app, seed, DIM)
}

#[test]
fn dense_and_lut_agree_bit_for_bit_on_all_profiles() {
    for app in App::ALL {
        let (dense, queries) = fit_dense(app, 41);
        // The same trained model behind a different kernel: `set_kernel`
        // swaps the scoring path without touching encoder or weights.
        let mut lut = dense.clone();
        lut.set_kernel(&KernelSpec::lut()).expect("lut build");
        assert_eq!(lut.kernel().name(), "lut");
        for x in &queries {
            assert_eq!(
                dense.scores(x).expect("dense scores"),
                lut.scores(x).expect("lut scores"),
                "{app:?}: lut scores diverged from dense"
            );
            assert_eq!(
                dense.predict(x).expect("dense predict"),
                lut.predict(x).expect("lut predict"),
                "{app:?}: lut argmax diverged from dense"
            );
        }
    }
}

#[test]
fn binary_argmax_agreement_stays_above_recorded_floor() {
    for app in App::ALL {
        let (dense, queries) = fit_dense_at(app, 43, DIM_BINARY);
        let mut binary = dense.clone();
        binary
            .set_kernel(&KernelSpec::binary())
            .expect("binary build");
        assert_eq!(binary.kernel().name(), "binary");
        let mut agree = 0usize;
        for x in &queries {
            if dense.predict(x).expect("dense predict") == binary.predict(x).expect("binary") {
                agree += 1;
            }
        }
        let rate = agree as f64 / queries.len() as f64;
        println!("{app:?}: binary/dense argmax agreement {rate:.3}");
        assert!(
            rate >= BINARY_AGREEMENT_FLOOR,
            "{app:?}: binary agreement {rate:.3} below floor {BINARY_AGREEMENT_FLOOR}"
        );
    }
}

#[test]
fn multifold_matches_full_binary_scoring_when_margins_are_clear() {
    for app in App::ALL {
        let (dense, queries) = fit_dense(app, 47);
        let mut full = dense.clone();
        full.set_kernel(&KernelSpec::binary()).expect("binary");
        let mut folded = dense.clone();
        folded
            .set_kernel(&KernelSpec::binary().with_multifold(4))
            .expect("multifold binary");
        let mut agree = 0usize;
        for x in &queries {
            let full_pred = full.predict(x).expect("full binary");
            let folded_pred = folded.predict(x).expect("folded binary");
            if full_pred == folded_pred {
                agree += 1;
            }
            // Early acceptance requires margin ≥ 4·√(remaining bits), so a
            // disagreement can only come from a query whose full-score
            // margin was within that drift bound: verify the margin on any
            // disagreeing query really is thin (< 8·√D is generous).
            if full_pred != folded_pred {
                let scores = full.scores(x).expect("binary scores");
                let mut sorted = scores.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                let margin = sorted[0] - sorted[1];
                assert!(
                    margin < 8.0 * (DIM as f64).sqrt(),
                    "{app:?}: multifold flipped a clear-margin query (margin {margin})"
                );
            }
        }
        let rate = agree as f64 / queries.len() as f64;
        println!("{app:?}: multifold/full agreement {rate:.3}");
        assert!(
            rate >= 0.95,
            "{app:?}: multifold agreement {rate:.3} below 0.95"
        );
    }
}

#[test]
fn every_kernel_round_trips_through_persistence_on_a_profile() {
    let (dense, queries) = fit_dense(App::Extra, 53);
    for spec in [KernelSpec::dense(), KernelSpec::lut(), KernelSpec::binary()] {
        let mut clf = dense.clone();
        clf.set_kernel(&spec).expect("kernel build");
        let back =
            LookHdClassifier::from_bytes(&clf.to_bytes().expect("serialize")).expect("deserialize");
        assert_eq!(back.kernel().name(), clf.kernel().name());
        for x in &queries {
            assert_eq!(
                back.predict(x).expect("reloaded predict"),
                clf.predict(x).expect("predict"),
                "kernel {} changed predictions across persistence",
                clf.kernel().name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Rematerialization: the BIN1 section stores only packed class
    /// words; position/`P'` keys regenerate from the seed. Rebuilding the
    /// binary kernel from the *round-tripped* classifier's regenerated
    /// encoder and compressed model must reproduce the stored words bit
    /// for bit.
    #[test]
    fn rematerialized_binary_words_are_bit_identical(
        seed in 0u64..1000,
        dim_ix in 0usize..3,
        multifold in 0usize..5,
    ) {
        let dim = [192usize, 256, 320][dim_ix];
        let data = App::Physical.profile().generate_small(seed);
        let config = LookHdConfig::new()
            .with_dim(dim)
            .with_q(2)
            .with_seed(seed ^ 0xB1A5)
            .with_retrain_epochs(1)
            .with_compression(CompressionConfig::new().with_decorrelate(false))
            .with_kernel(KernelSpec::binary().with_multifold(multifold));
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let back = LookHdClassifier::from_bytes(&clf.to_bytes().expect("serialize"))
            .expect("deserialize");
        let stored = back
            .kernel()
            .as_any()
            .downcast_ref::<BinaryKernel>()
            .expect("binary kernel survived persistence");
        let rebuilt = BinaryKernel::build(back.encoder(), back.compressed(), multifold)
            .expect("rematerialized build");
        prop_assert_eq!(stored.n_classes(), rebuilt.n_classes());
        prop_assert_eq!(stored.mean(), rebuilt.mean());
        for c in 0..stored.n_classes() {
            prop_assert_eq!(
                stored.class(c).words(),
                rebuilt.class(c).words(),
                "class {} words diverged after rematerialization",
                c
            );
        }
    }
}
