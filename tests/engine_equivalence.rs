//! The engine determinism contract, end to end: sharded training and
//! parallel batch inference must be *bit-identical* to the serial path
//! for every thread count, including shard counts that do not divide the
//! sample count evenly.

use lookhd_paper::datasets::apps::App;
use lookhd_paper::prelude::*;

const THREADS: [usize; 4] = [1, 2, 3, 8];
/// 7 does not divide the sample counts below: the last shard is a
/// remainder shard, exercising the uneven-partition path.
const SHARD: usize = 7;

type Split = (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>, Vec<usize>);

fn dataset() -> Split {
    let data = App::Physical.profile().generate_small(97);
    (
        data.train.features,
        data.train.labels,
        data.test.features,
        data.test.labels,
    )
}

#[test]
fn sharded_counter_training_is_bit_identical() {
    let (xs, ys, txs, _) = dataset();
    assert_ne!(xs.len() % SHARD, 0, "want a remainder shard");
    let base = LookHdConfig::new().with_dim(512).with_retrain_epochs(2);
    let serial = LookHdClassifier::fit(&base, &xs, &ys).unwrap();
    for threads in THREADS {
        let config = base.clone().with_engine(
            EngineConfig::new()
                .with_threads(threads)
                .with_shard_size(SHARD),
        );
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert_eq!(
            clf.model().classes(),
            serial.model().classes(),
            "{threads}-thread counter training diverged from serial"
        );
        assert_eq!(
            clf.predict_batch(&txs).unwrap(),
            serial.predict_batch(&txs).unwrap()
        );
    }
}

#[test]
fn sharded_bundling_training_is_bit_identical() {
    let (xs, ys, txs, _) = dataset();
    let base = HdcConfig::new().with_dim(512).with_retrain_epochs(2);
    let serial = HdcClassifier::fit(&base, &xs, &ys).unwrap();
    for threads in THREADS {
        let config = base.clone().with_engine(
            EngineConfig::new()
                .with_threads(threads)
                .with_shard_size(SHARD),
        );
        let clf = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        assert_eq!(
            clf.model().classes(),
            serial.model().classes(),
            "{threads}-thread bundling diverged from serial"
        );
        assert_eq!(
            clf.predict_batch(&txs).unwrap(),
            serial.predict_batch(&txs).unwrap()
        );
    }
}

#[test]
fn parallel_batch_inference_matches_serial_on_both_models() {
    let (xs, ys, txs, _) = dataset();
    let clf = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(512).with_retrain_epochs(1),
        &xs,
        &ys,
    )
    .unwrap();
    let serial_compressed = clf.predict_batch(&txs).unwrap();
    let serial_uncompressed = clf.predict_batch_uncompressed(&txs).unwrap();
    for threads in THREADS {
        let mut threaded = clf.clone();
        threaded.set_engine(
            EngineConfig::new()
                .with_threads(threads)
                .with_shard_size(SHARD),
        );
        assert_eq!(threaded.predict_batch(&txs).unwrap(), serial_compressed);
        assert_eq!(
            threaded.predict_batch_uncompressed(&txs).unwrap(),
            serial_uncompressed
        );
    }
}

#[test]
fn engine_stats_account_for_every_sample() {
    let (xs, ys, txs, _) = dataset();
    let config = LookHdConfig::new()
        .with_dim(256)
        .with_retrain_epochs(0)
        .with_engine(EngineConfig::new().with_threads(2).with_shard_size(SHARD));
    let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
    assert_eq!(clf.fit_stats().items, xs.len());
    assert_eq!(clf.fit_stats().threads, 2);
    let (preds, stats) = clf.predict_batch_stats(&txs).unwrap();
    assert_eq!(preds.len(), txs.len());
    assert_eq!(stats.items, txs.len());
    assert_eq!(stats.shards.len(), txs.len().div_ceil(SHARD));
}

/// All three model families construct and run through `dyn Classifier`.
#[test]
fn all_classifiers_work_through_trait_objects() {
    let (xs, ys, txs, tys) = dataset();
    let n_classes = ys.iter().max().unwrap() + 1;
    let models: Vec<Box<dyn Classifier>> = vec![
        Box::new(
            HdcClassifier::fit(
                &HdcConfig::new().with_dim(256).with_retrain_epochs(1),
                &xs,
                &ys,
            )
            .unwrap(),
        ),
        Box::new(
            LookHdClassifier::fit(
                &LookHdConfig::new().with_dim(256).with_retrain_epochs(1),
                &xs,
                &ys,
            )
            .unwrap(),
        ),
        Box::new(
            Mlp::fit(
                &MlpConfig::new().with_hidden(vec![32]).with_epochs(10),
                &xs,
                &ys,
            )
            .unwrap(),
        ),
    ];
    for model in &models {
        assert_eq!(model.num_classes(), n_classes);
        let preds = model.predict_batch(&txs).unwrap();
        assert_eq!(preds.len(), txs.len());
        assert!(preds.iter().all(|&p| p < n_classes));
        let acc = model.evaluate(&txs, &tys).unwrap();
        assert!(
            acc > 1.0 / n_classes as f64,
            "trait-object path should beat chance, got {acc}"
        );
        // Single-query path agrees with the batch path.
        assert_eq!(model.predict(&txs[0]).unwrap(), preds[0]);
    }
}
