//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate provides the (small) `rand 0.8` API subset the
//! workspace actually uses, with no external dependencies:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] and [`rngs::SmallRng`], both backed by xoshiro256**
//!   seeded through SplitMix64;
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic per seed, as the workspace requires, but they
//! are **not** bit-compatible with upstream `rand`'s ChaCha12-based
//! `StdRng`. Nothing in the workspace depends on the upstream streams; all
//! reproducibility contracts are "same seed ⇒ same result within this
//! codebase".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their whole value domain by
/// [`Rng::gen`] (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Uniform sample in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The concrete generators: [`StdRng`] and [`SmallRng`].

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, high-quality 64-bit PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256StarStar {
        s: [u64; 4],
    }

    impl Xoshiro256StarStar {
        /// Seeds the four state words through SplitMix64, as the xoshiro
        /// authors recommend.
        pub fn from_seed_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for Xoshiro256StarStar {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The workspace's standard generator (upstream: ChaCha12; here:
    /// xoshiro256** — deterministic per seed, not stream-compatible).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256StarStar);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256StarStar::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A small fast generator; here identical to [`StdRng`] apart from a
    /// seed perturbation so the two never share a stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256StarStar);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256StarStar::from_seed_u64(
                seed ^ 0x5ead_5eed_5ead_5eed,
            ))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and random choice.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice in order"
        );
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
