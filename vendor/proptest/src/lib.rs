//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest 1.x the workspace's property tests
//! use: the [`proptest!`] macro with `#![proptest_config(...)]`, range /
//! `any::<T>()` / simple-regex / `collection::vec` strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are sampled from a fixed deterministic
//! stream (no persisted failure seeds) and **no shrinking** is performed —
//! a failing case reports the sampled inputs as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Case-count configuration and the error type test bodies return.

    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy};

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`]; `size` may be a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, gen: &mut crate::strategy::Gen) -> Self::Value {
            let len = self.size.clone().sample_usize(gen);
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }

    trait SampleUsize {
        fn sample_usize(self, gen: &mut crate::strategy::Gen) -> usize;
    }

    impl SampleUsize for std::ops::Range<usize> {
        fn sample_usize(self, gen: &mut crate::strategy::Gen) -> usize {
            assert!(self.start < self.end, "empty vec-size range");
            self.start + (gen.next_u64() as usize) % (self.end - self.start)
        }
    }
}

/// Strategy sampling values over the whole domain of `T` (like upstream
/// `any::<T>()`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    //! One-stop import for property tests, mirroring upstream's prelude.

    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut gen = $crate::strategy::Gen::from_name(stringify!($name));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let mut __parts: Vec<String> = Vec::new();
                $(
                    let __sampled = $crate::strategy::Strategy::sample(&($strat), &mut gen);
                    __parts.push(format!("{} = {:?}", stringify!($arg), &__sampled));
                    let $arg = __sampled;
                )*
                let described = __parts.join(", ");
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 64 * config.cases.max(16),
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed after {} passing case(s)\n  inputs: {}\n  {}",
                            stringify!($name),
                            passed,
                            described,
                            message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left:  {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case (counts as rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
