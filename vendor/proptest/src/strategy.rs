//! Strategies: deterministic samplers for test-case inputs.

use std::marker::PhantomData;

/// The deterministic sample source driving a property test (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Derives a generator from a test name, so every property gets a
    /// distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state }
    }

    /// Returns the next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A sampler of values for one test parameter.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (gen.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (gen.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * gen.next_unit_f64() as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

/// Types [`crate::any`] can produce.
pub trait Arbitrary: Sized {
    /// Draws one value over the whole domain.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> Self {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.next_unit_f64()
    }
}

/// Length specifications accepted by [`crate::collection::vec`].
pub trait SizeRange {
    /// Converts to a half-open length range.
    fn into_range(self) -> std::ops::Range<usize>;
}

impl SizeRange for std::ops::Range<usize> {
    fn into_range(self) -> std::ops::Range<usize> {
        self
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn into_range(self) -> std::ops::Range<usize> {
        *self.start()..self.end() + 1
    }
}

impl SizeRange for usize {
    fn into_range(self) -> std::ops::Range<usize> {
        self..self + 1
    }
}

/// The strategy returned by [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// String strategy from a miniature regex: a single character class with a
/// bounded repetition, e.g. `"[a-d]{4,24}"` (the only pattern shape the
/// workspace uses). Upstream proptest accepts full regexes; unsupported
/// shapes panic with a clear message rather than silently mis-sampling.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, gen: &mut Gen) -> String {
        let (chars, lo, hi) = parse_mini_regex(self);
        let span = hi - lo + 1;
        let len = lo + (gen.next_u64() as usize) % span;
        (0..len)
            .map(|_| chars[(gen.next_u64() as usize) % chars.len()])
            .collect()
    }
}

/// Parses `[class]{m}`, `[class]{m,n}` where class is literal chars and
/// `a-z`-style ranges.
fn parse_mini_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    fn unsupported(pattern: &str) -> ! {
        panic!("unsupported mini-regex strategy: {pattern:?}")
    }
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| unsupported(pattern));
    let (class, rep) = rest.split_once(']').unwrap_or_else(|| unsupported(pattern));
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
            assert!(a <= b, "bad char range in {pattern:?}");
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pattern:?}");
    let rep = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| unsupported(pattern));
    let (lo, hi) = match rep.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok(), h.trim().parse().ok()),
        None => {
            let n = rep.trim().parse().ok();
            (n, n)
        }
    };
    match (lo, hi) {
        (Some(l), Some(h)) if l <= h => (chars, l, h),
        _ => unsupported(pattern),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut gen = Gen::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut gen);
            assert!((3..17).contains(&v));
            let w = (-100_000i64..100_000).sample(&mut gen);
            assert!((-100_000..100_000).contains(&w));
            let f = (-2e3f64..2e3).sample(&mut gen);
            assert!((-2e3..2e3).contains(&f));
        }
    }

    #[test]
    fn mini_regex_samples_class_and_length() {
        let mut gen = Gen::from_name("regex");
        for _ in 0..200 {
            let s = "[a-d]{4,24}".sample(&mut gen);
            assert!((4..=24).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s}");
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut gen = Gen::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(-50i32..50, 1..200).sample(&mut gen);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|x| (-50..50).contains(x)));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = Gen::from_name("same");
        let mut b = Gen::from_name("same");
        let mut c = Gen::from_name("different");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(Gen::from_name("same").next_u64(), c.next_u64());
    }
}
