//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the small benchmarking surface the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::finish`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! It measures wall-clock time only: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints min / median / mean per
//! iteration. There is no statistical outlier analysis, no HTML report,
//! and no saved baselines — numbers are indicative, not publication-grade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching upstream's API.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples);
        self
    }

    /// Ends the group (kept for API parity; reporting happens per function).
    pub fn finish(self) {}
}

/// Collects timed samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called repeatedly, recording per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibration of iterations-per-sample so that very
        // fast routines are timed over enough iterations to be resolvable.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed();
        let iters = iters_per_sample(once);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted. `batch_size` is accepted for API parity — every call here
    /// runs setup once per timed call, like upstream's `PerIteration`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, batch_size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = batch_size;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// How much setup output a batched benchmark amortises per timed run.
/// Accepted for upstream API parity; this harness always sets up per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream batches few per allocation.
    LargeInput,
    /// One setup per timed call.
    PerIteration,
}

/// Picks an iteration count so each sample spans at least ~1ms.
fn iters_per_sample(once: Duration) -> u32 {
    let floor = Duration::from_millis(1);
    if once >= floor {
        1
    } else {
        let once_nanos = once.as_nanos().max(1);
        (floor.as_nanos() / once_nanos).clamp(1, 10_000) as u32
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {id}: no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "  {group}/{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        sorted.len()
    );
}

/// Declares a benchmark group function, mirroring upstream's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, bench_smoke);

    #[test]
    fn harness_runs_and_samples() {
        benches();
    }

    #[test]
    fn calibration_bounds_iteration_count() {
        assert_eq!(iters_per_sample(Duration::from_millis(5)), 1);
        assert!(iters_per_sample(Duration::from_nanos(10)) > 1);
        assert!(iters_per_sample(Duration::from_nanos(1)) <= 10_000);
    }
}
