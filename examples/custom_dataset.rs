//! Bring your own data: parse CSV text, inspect it, train, persist — the
//! library-level version of the `lookhd` CLI workflow.
//!
//! Run: `cargo run --release --example custom_dataset`

use lookhd_paper::datasets::csv;
use lookhd_paper::datasets::summary::{suggest_config, summarize};
use lookhd_paper::hdc::HdcError;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    // Imagine this arrived as a file; labels in the last column.
    let mut text = String::from("temp,vibration,current,label\n");
    for i in 0..120 {
        let class = i % 3;
        let base = [0.2, 0.5, 0.8][class];
        let j = (i % 9) as f64 * 0.005;
        text.push_str(&format!(
            "{:.3},{:.3},{:.3},{}\n",
            base + j,
            base - j,
            (base + 2.0 * j).powi(2),
            class
        ));
    }
    let split = csv::parse_split(&text).expect("CSV parse failed");

    // Inspect before choosing hyperparameters.
    let summary = summarize(&split).expect("summary failed");
    let hint = suggest_config(&summary);
    println!(
        "{} samples, n = {}, k = {}, skew {:+.2} -> suggested q = {}, r = {}, D = {}",
        summary.n_samples,
        summary.n_features,
        summary.n_classes,
        summary.skew_indicator,
        hint.q,
        hint.r,
        hint.dim
    );

    // Train with the suggestion (scaled-down D for the example).
    let config = LookHdConfig::new()
        .with_dim(512)
        .with_q(hint.q)
        .with_r(hint.r)
        .with_retrain_epochs(3);
    let clf = LookHdClassifier::fit(&config, &split.features, &split.labels)?;
    println!(
        "train accuracy {:.1}%, model {} bytes ({} combined vectors)",
        clf.evaluate(&split.features, &split.labels)? * 100.0,
        clf.compressed().size_bytes(),
        clf.compressed().n_vectors()
    );

    // Persist for deployment and verify the round trip.
    let bytes = clf.to_bytes()?;
    let restored = LookHdClassifier::from_bytes(&bytes)?;
    let probe = vec![0.21, 0.19, 0.04];
    assert_eq!(clf.predict(&probe)?, restored.predict(&probe)?);
    println!(
        "persisted {} bytes; restored model classifies the probe as {}",
        bytes.len(),
        restored.predict(&probe)?
    );
    Ok(())
}
