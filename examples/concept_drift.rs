//! Adapting to concept drift with online updates.
//!
//! A static model trained before deployment decays as the data drifts; a
//! model that keeps consuming the stream with novelty-scaled updates
//! tracks the drift. This is the IoT maintenance story behind §I's
//! "real-time learning on IoT devices".
//!
//! Run: `cargo run --release --example concept_drift`

use lookhd_paper::datasets::drift::DriftStream;
use lookhd_paper::datasets::synthetic::GeneratorConfig;
use lookhd_paper::hdc::encoding::Encode;
use lookhd_paper::hdc::HdcError;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::online::{OnlineConfig, OnlineTrainer};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), HdcError> {
    let mut rng = StdRng::seed_from_u64(2024);
    let config = GeneratorConfig {
        n_features: 32,
        n_classes: 4,
        noise: 0.05,
        shared_weight: 0.2,
        informative_fraction: 1.0,
        skew_power: 2.0,
        ambiguous_fraction: 0.0,
    };
    let mut stream = DriftStream::new(config, 1200, &mut rng);

    // Phase 1: collect a pre-deployment training set (no drift yet).
    let (train_xs, train_ys) = stream.snapshot(40, &mut rng);
    let scaffold = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(1024).with_retrain_epochs(3),
        &train_xs,
        &train_ys,
    )?;
    let encoder = scaffold.encoder();
    let mut adaptive = OnlineTrainer::new(4, 1024, OnlineConfig::new())?;
    for (x, &y) in train_xs.iter().zip(&train_ys) {
        adaptive.observe(&encoder.encode(x)?, y)?;
    }

    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "samples", "drift", "static", "adaptive"
    );
    // Phase 2: deployment. The static model is frozen; the adaptive one
    // keeps learning from the (labelled) stream.
    for checkpoint in 1..=6 {
        for _ in 0..200 {
            let (x, y) = stream.next_sample(&mut rng);
            adaptive.observe(&encoder.encode(&x)?, y)?;
        }
        let (test_xs, test_ys) = stream.snapshot(25, &mut rng);
        let adaptive_model = adaptive.finalize()?;
        let (mut stat, mut adapt) = (0usize, 0usize);
        for (x, &y) in test_xs.iter().zip(&test_ys) {
            if scaffold.predict(x)? == y {
                stat += 1;
            }
            if adaptive_model.predict(&encoder.encode(x)?)? == y {
                adapt += 1;
            }
        }
        let n = test_xs.len() as f64;
        println!(
            "{:<10} {:>7.0}% {:>11.1}% {:>11.1}%",
            checkpoint * 200,
            stream.progress() * 100.0,
            100.0 * stat as f64 / n,
            100.0 * adapt as f64 / n
        );
    }
    println!(
        "\nThe static model decays as the prototypes drift; online novelty-scaled\n\
         updates keep the adaptive model on track at one pass over the stream."
    );
    Ok(())
}
