//! Train once, deploy everywhere: persist a trained LookHD classifier to a
//! file and reload it for inference (what an edge device would flash).
//!
//! Run: `cargo run --release --example save_load`

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::HdcError;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    let profile = App::Physical.profile();
    let data = profile.generate_small(17);
    let config = LookHdConfig::new().with_dim(1024).with_retrain_epochs(3);
    let trained = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)?;
    let accuracy = trained.evaluate(&data.test.features, &data.test.labels)?;

    // Persist: hyperparameters + quantizer + models. Level/position
    // hypervectors regenerate from the seed, keeping the artifact small.
    let bytes = trained.to_bytes()?;
    let path = std::env::temp_dir().join("lookhd_physical.lks");
    std::fs::write(&path, &bytes).expect("writing model file failed");
    println!(
        "trained {} (test accuracy {:.1}%), saved {} bytes to {}",
        profile.name,
        accuracy * 100.0,
        bytes.len(),
        path.display()
    );

    // …on the device: reload and classify.
    let flashed = std::fs::read(&path).expect("reading model file failed");
    let deployed = LookHdClassifier::from_bytes(&flashed)?;
    let agree = data
        .test
        .features
        .iter()
        .filter(|x| deployed.predict(x).ok() == trained.predict(x).ok())
        .count();
    println!(
        "reloaded model agrees with the original on {agree}/{} test queries",
        data.test.len()
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
