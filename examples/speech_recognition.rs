//! Speech recognition (ISOLET-like): the paper's flagship workload.
//!
//! Trains the baseline HDC and LookHD on the SPEECH profile (n = 617,
//! k = 26) and compares accuracy, model size, and the estimated per-query
//! deployment cost on an ARM A53 and the KC705 FPGA.
//!
//! Run: `cargo run --release --example speech_recognition`
//! (set `LOOKHD_FAST=1` for a quick pass)

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::classifier::{HdcClassifier, HdcConfig};
use lookhd_paper::hdc::HdcError;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::hwsim::fpga::FpgaPhase;
use lookhd_paper::hwsim::{CpuModel, FpgaModel, WorkloadShape};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    let fast = std::env::var("LOOKHD_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let profile = App::Speech.profile();
    let data = if fast {
        profile.generate_small(7)
    } else {
        profile.generate(7)
    };
    let dim = if fast { 512 } else { 2000 };
    println!("dataset: {data}");

    // Baseline HDC needs q = 16 linear levels for max accuracy (Table I).
    let base_cfg = HdcConfig::new()
        .with_dim(dim)
        .with_q(profile.paper_q_baseline)
        .with_retrain_epochs(5);
    let baseline = HdcClassifier::fit(&base_cfg, &data.train.features, &data.train.labels)?;
    let base_acc = baseline.evaluate(&data.test.features, &data.test.labels)?;

    // LookHD: q = 4 equalized levels, r = 5 chunks, compressed model.
    let look_cfg = LookHdConfig::new().with_dim(dim).with_retrain_epochs(5);
    let lookhd = LookHdClassifier::fit(&look_cfg, &data.train.features, &data.train.labels)?;
    let look_acc = lookhd.evaluate(&data.test.features, &data.test.labels)?;
    let mut unc = 0usize;
    for (x, &y) in data.test.features.iter().zip(&data.test.labels) {
        if lookhd.predict_uncompressed(x)? == y {
            unc += 1;
        }
    }
    let unc_acc = unc as f64 / data.test.len() as f64;

    println!(
        "\naccuracy:  baseline (q=16 linear) {:.1}%   LookHD {:.1}% compressed / {:.1}% uncompressed",
        base_acc * 100.0,
        look_acc * 100.0,
        unc_acc * 100.0
    );
    println!(
        "(compression cross-talk shrinks with 1/sqrt(D); at D = 2000 and 8 classes\n\
         per vector the compressed path matches the uncompressed one — see Fig. 15)"
    );
    println!(
        "model:     baseline {} KiB   LookHD {} KiB ({} combined vectors)",
        baseline.model().size_bytes() / 1024,
        lookhd.compressed().size_bytes() / 1024,
        lookhd.compressed().n_vectors()
    );

    // Estimated per-query deployment cost.
    let shape = WorkloadShape {
        n_features: profile.n_features,
        q: profile.paper_q_lookhd,
        dim: 2000,
        n_classes: profile.n_classes,
        r: 5,
        max_classes_per_vector: 12,
        train_samples: data.train.len(),
        retrain_epochs: 0,
        avg_updates_per_epoch: 0,
    };
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let cpu_cost = cpu.execute(&shape.lookhd_inference());
    let fpga_cost = fpga.execute_as(&shape.lookhd_inference(), FpgaPhase::LookHdInference);
    println!("\nestimated LookHD per-query cost (D = 2000):");
    println!("  ARM A53: {cpu_cost}");
    println!("  KC705:   {fpga_cost}");
    Ok(())
}
