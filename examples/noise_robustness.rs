//! HDC noise robustness (the §I claim that motivates HDC on unreliable
//! hardware): inject sign faults into the stored model and watch accuracy
//! degrade gracefully.
//!
//! Run: `cargo run --release --example noise_robustness`

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::noise::corrupt_model;
use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::hdc::HdcError;
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), HdcError> {
    let fast = std::env::var("LOOKHD_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let profile = App::Physical.profile();
    let data = if fast {
        profile.generate_small(5)
    } else {
        profile.generate(5)
    };
    let dim = if fast { 512 } else { 2000 };
    let config = LookHdConfig::new().with_dim(dim).with_retrain_epochs(3);
    let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)?;

    let mut rng = StdRng::seed_from_u64(99);
    println!(
        "{} model under sign-fault injection (D = {dim}):\n",
        profile.name
    );
    println!("{:<12} {:<10}", "fault rate", "accuracy");
    for &p in &[0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let mut model = clf.model().clone();
        corrupt_model(&mut model, p, &mut rng);
        let mut correct = 0usize;
        for (x, &y) in data.test.features.iter().zip(&data.test.labels) {
            let h = clf.encode(x)?;
            if model.predict(&h)? == y {
                correct += 1;
            }
        }
        println!(
            "{:<12} {:<10.1}",
            format!("{:.1}%", p * 100.0),
            100.0 * correct as f64 / data.test.len() as f64
        );
    }
    println!(
        "\nHypervectors distribute information across all D dimensions: accuracy\n\
         degrades gracefully with the fault rate instead of collapsing at the\n\
         first bit error (correlated classes with slim margins erode fastest)."
    );
    Ok(())
}
