//! Streaming / single-pass learning on a device that cannot afford
//! training epochs (§VI-F's "single-pass or few-pass training" setting).
//!
//! Samples arrive one at a time; the OnlineHD-style trainer updates the
//! model with novelty-scaled increments. We periodically snapshot accuracy
//! to show the model converging within its single pass, then compress the
//! final model for deployment.
//!
//! Run: `cargo run --release --example online_learning`

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::encoding::Encode;
use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::hdc::HdcError;
use lookhd_paper::lookhd::online::{OnlineConfig, OnlineTrainer};
use lookhd_paper::lookhd::{CompressedModel, CompressionConfig, LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    let fast = std::env::var("LOOKHD_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let profile = App::Activity.profile();
    let data = if fast {
        profile.generate_small(23)
    } else {
        profile.generate(23)
    };
    let dim = if fast { 512 } else { 2000 };

    // Borrow the encoder from a zero-epoch classifier fit (same pipeline).
    let scaffold = LookHdClassifier::fit(
        &LookHdConfig::new().with_dim(dim).with_retrain_epochs(0),
        &data.train.features,
        &data.train.labels,
    )?;
    let encoder = scaffold.encoder();

    let mut trainer = OnlineTrainer::new(profile.n_classes, dim, OnlineConfig::new())?;
    let checkpoint_every = (data.train.len() / 6).max(1);
    println!("streaming {} samples, one pass:\n", data.train.len());
    for (i, (x, &y)) in data
        .train
        .features
        .iter()
        .zip(&data.train.labels)
        .enumerate()
    {
        trainer.observe(&encoder.encode(x)?, y)?;
        if (i + 1) % checkpoint_every == 0 {
            let model = trainer.finalize()?;
            let mut correct = 0usize;
            for (tx, &ty) in data.test.features.iter().zip(&data.test.labels) {
                if model.predict(&encoder.encode(tx)?)? == ty {
                    correct += 1;
                }
            }
            println!(
                "  after {:>5} samples: test accuracy {:.1}%",
                i + 1,
                100.0 * correct as f64 / data.test.len() as f64
            );
        }
    }

    // Deploy: compress the single-pass model. (The full classifier picks
    // the group size by validation; here we compress pairwise, which is
    // safe for the online model's tightly clustered classes.)
    let model = trainer.finalize()?;
    let compressed = CompressedModel::compress(
        &model,
        &CompressionConfig::new().with_max_classes_per_vector(2),
    )?;
    let (mut correct, mut correct_unc) = (0usize, 0usize);
    for (tx, &ty) in data.test.features.iter().zip(&data.test.labels) {
        let h = encoder.encode(tx)?;
        if compressed.predict(&h)? == ty {
            correct += 1;
        }
        if model.predict(&h)? == ty {
            correct_unc += 1;
        }
    }
    println!(
        "\ncompressed single-pass model: {:.1}% test accuracy (uncompressed {:.1}%), {} bytes ({} vectors)",
        100.0 * correct as f64 / data.test.len() as f64,
        100.0 * correct_unc as f64 / data.test.len() as f64,
        compressed.size_bytes(),
        compressed.n_vectors()
    );
    Ok(())
}
