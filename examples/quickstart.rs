//! Quickstart: train and query a LookHD classifier in a few lines.
//!
//! Run: `cargo run --release --example quickstart`

use lookhd_paper::hdc::HdcError;
use lookhd_paper::hdc::{Classifier, FitClassifier};
use lookhd_paper::lookhd::{LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    // A toy sensor problem: 12 features, three regimes (low / mid / high).
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..90 {
        let class = i % 3;
        let base = [0.15, 0.5, 0.85][class];
        let row: Vec<f64> = (0..12)
            .map(|j| base + 0.03 * ((i * 7 + j * 13) % 10) as f64 / 10.0)
            .collect();
        features.push(row);
        labels.push(class);
    }

    // LookHD with the paper's defaults scaled down: D = 1024, q = 4
    // equalized levels, chunks of r = 5, compressed model, retraining.
    let config = LookHdConfig::new().with_dim(1024).with_retrain_epochs(5);
    let classifier = LookHdClassifier::fit(&config, &features, &labels)?;

    let probe_low = vec![0.16; 12];
    let probe_high = vec![0.86; 12];
    println!(
        "low-regime probe  -> class {}",
        classifier.predict(&probe_low)?
    );
    println!(
        "high-regime probe -> class {}",
        classifier.predict(&probe_high)?
    );

    println!(
        "training accuracy: {:.1}%",
        classifier.evaluate(&features, &labels)? * 100.0
    );
    println!(
        "model: {} classes compressed into {} hypervector(s), {} bytes \
         (uncompressed: {} bytes)",
        classifier.compressed().n_classes(),
        classifier.compressed().n_vectors(),
        classifier.compressed().size_bytes(),
        classifier.model().size_bytes(),
    );
    println!(
        "lookup tables: {} chunks of r = {} features, mode {:?}",
        classifier.encoder().layout().n_chunks(),
        classifier.encoder().layout().r(),
        classifier.encoder().lut().mode(),
    );
    Ok(())
}
