//! Language identification with n-gram HDC encoding — the classic workload
//! of the prior FPGA/binary HDC systems the paper compares against (§VII).
//!
//! Trains one bundled profile hypervector per "language" from raw text and
//! classifies unseen sentences by cosine similarity of trigram profiles.
//!
//! Run: `cargo run --release --example language_identification`

use lookhd_paper::hdc::hv::DenseHv;
use lookhd_paper::hdc::sequence::NgramEncoder;
use lookhd_paper::hdc::HdcError;

const ENGLISH: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "a journey of a thousand miles begins with a single step",
    "to be or not to be that is the question",
    "all that glitters is not gold",
    "the early bird catches the worm",
];

const PSEUDO_SPANISH: &[&str] = &[
    "el rapido zorro marron salta sobre el perro perezoso",
    "un viaje de mil millas comienza con un solo paso",
    "ser o no ser esa es la cuestion",
    "no todo lo que brilla es oro",
    "al que madruga dios le ayuda",
];

const PSEUDO_GERMAN: &[&str] = &[
    "der schnelle braune fuchs springt ueber den faulen hund",
    "eine reise von tausend meilen beginnt mit einem schritt",
    "sein oder nicht sein das ist hier die frage",
    "es ist nicht alles gold was glaenzt",
    "der fruehe vogel faengt den wurm",
];

fn main() -> Result<(), HdcError> {
    let dim = 8192;
    let mut encoder = NgramEncoder::<char>::new(dim, 3, 0xBABE)?;
    let corpora = [
        ("english", ENGLISH),
        ("spanish", PSEUDO_SPANISH),
        ("german", PSEUDO_GERMAN),
    ];

    // Train: bundle every sentence's trigram profile per language.
    let mut profiles: Vec<(String, DenseHv)> = Vec::new();
    for (name, texts) in corpora {
        let mut acc = DenseHv::zeros(dim);
        for text in texts {
            acc.add_assign_hv(&encoder.encode_str(text)?);
        }
        profiles.push((name.to_owned(), acc));
    }
    println!(
        "trained {} language profiles over {} distinct symbols\n",
        profiles.len(),
        encoder.memory().len()
    );

    // Classify unseen sentences.
    let probes = [
        ("the dog begins a thousand questions", "english"),
        ("el perro comienza con mil cuestiones", "spanish"),
        ("der hund beginnt mit tausend fragen", "german"),
    ];
    let mut correct = 0usize;
    for (text, expected) in probes {
        let h = encoder.encode_str(text)?;
        let (best, sim) = profiles
            .iter()
            .map(|(name, p)| (name.as_str(), h.cosine(p)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty profiles");
        let mark = if best == expected { "ok " } else { "MISS" };
        if best == expected {
            correct += 1;
        }
        println!("[{mark}] {text:?} -> {best} (cosine {sim:.3})");
    }
    println!("\n{correct}/{} unseen sentences identified", probes.len());
    Ok(())
}
