//! Activity recognition (UCI-HAR-like): model compression end to end.
//!
//! Walks through the §IV pipeline on the ACTIVITY profile: train with
//! counters, inspect class correlation, decorrelate, compress to a single
//! hypervector, quantify the Eq. 5 signal/noise split, and retrain on the
//! compressed model.
//!
//! Run: `cargo run --release --example activity_recognition`

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hdc::encoding::Encode;
use lookhd_paper::hdc::FitClassifier;
use lookhd_paper::hdc::HdcError;
use lookhd_paper::lookhd::compress::decorrelate;
use lookhd_paper::lookhd::retrain::{retrain_compressed, UpdateRule};
use lookhd_paper::lookhd::{CompressedModel, CompressionConfig, LookHdClassifier, LookHdConfig};

fn main() -> Result<(), HdcError> {
    let fast = std::env::var("LOOKHD_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let profile = App::Activity.profile();
    let data = if fast {
        profile.generate_small(3)
    } else {
        profile.generate(3)
    };
    let dim = if fast { 512 } else { 2000 };

    // 1. Counter-based training (no per-sample hypervector arithmetic).
    let config = LookHdConfig::new().with_dim(dim).with_retrain_epochs(0);
    let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)?;
    println!(
        "trained {} classes; class-hypervector correlation: {:.3}",
        clf.model().n_classes(),
        clf.model().class_correlation()
    );

    // 2. Decorrelation (§IV-C) widens the cosine spread.
    let decorrelated = decorrelate(clf.model())?;
    println!(
        "after decorrelation: correlation {:.3}",
        decorrelated.class_correlation()
    );

    // 3. Compress all classes into a single hypervector.
    let compressed = CompressedModel::compress(
        clf.model(),
        &CompressionConfig::new().with_max_classes_per_vector(profile.n_classes),
    )?;
    println!(
        "compressed {} classes -> {} vector(s): {} bytes vs {} bytes",
        compressed.n_classes(),
        compressed.n_vectors(),
        compressed.size_bytes(),
        clf.model().size_bytes()
    );

    // 4. Eq. 5 signal/noise on one query.
    let query = clf.encoder().encode(&data.test.features[0])?;
    let truth = data.test.labels[0];
    let sn = compressed.signal_noise(clf.model(), &query)?;
    println!(
        "query of class {truth}: signal {:.0}, cross-talk noise {:.0} (n/s = {:.3})",
        sn[truth].signal,
        sn[truth].noise,
        sn[truth].noise_to_signal()
    );

    // 5. Retrain directly on the compressed model (§IV-D).
    let mut retrained = compressed.clone();
    let encoded: Vec<_> = data
        .train
        .features
        .iter()
        .map(|f| clf.encoder().encode(f))
        .collect::<Result<_, _>>()?;
    let report = retrain_compressed(
        &mut retrained,
        &encoded,
        &data.train.labels,
        if fast { 2 } else { 10 },
        UpdateRule::Exact,
    )?;
    let accuracy = |cm: &CompressedModel| -> Result<f64, HdcError> {
        let mut correct = 0usize;
        for (x, &y) in data.test.features.iter().zip(&data.test.labels) {
            if cm.predict(&clf.encoder().encode(x)?)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.test.len() as f64)
    };
    println!(
        "test accuracy: compressed {:.1}% -> retrained {:.1}% ({} epochs, {} updates)",
        accuracy(&compressed)? * 100.0,
        accuracy(&retrained)? * 100.0,
        report.epochs_run(),
        report.total_updates()
    );
    Ok(())
}
