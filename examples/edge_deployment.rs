//! Edge deployment planning with the hardware cost models.
//!
//! Given an application, sweep LookHD's `(q, r)` design space, check which
//! configurations' lookup tables fit the KC705's BRAM (the §III
//! feasibility constraint), and report estimated training time, per-query
//! latency, and energy on both the FPGA and an ARM A53 — the
//! design-space-exploration workflow the paper's architecture enables.
//!
//! Run: `cargo run --release --example edge_deployment`

use lookhd_paper::datasets::apps::App;
use lookhd_paper::hwsim::fpga::FpgaPhase;
use lookhd_paper::hwsim::{CpuModel, FpgaModel, WorkloadShape};

fn main() {
    let profile = App::Physical.profile(); // n = 52, k = 12: a wearable
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    println!(
        "design-space exploration for {} (n = {}, k = {}):\n",
        profile.name, profile.n_features, profile.n_classes
    );
    println!(
        "{:<10} {:<10} {:<12} {:<26} {:<26}",
        "q, r", "BRAM fit", "table rows", "FPGA: train / query", "A53: train / query"
    );
    for q in [2usize, 4, 8, 16] {
        for r in [3usize, 5, 8] {
            let shape = WorkloadShape {
                n_features: profile.n_features,
                q,
                dim: 2000,
                n_classes: profile.n_classes,
                r,
                max_classes_per_vector: 12,
                train_samples: profile.default_train_per_class * profile.n_classes,
                retrain_epochs: 0,
                avg_updates_per_epoch: 0,
            };
            let fits = fpga.tables_fit(&shape);
            let f_train = fpga.initial_training_cost(&shape, FpgaPhase::LookHdTraining);
            let f_query = fpga.execute_as(&shape.lookhd_inference(), FpgaPhase::LookHdInference);
            let c_train = cpu.execute(&shape.lookhd_initial_training());
            let c_query = cpu.execute(&shape.lookhd_inference());
            println!(
                "q={q:<2} r={r:<2}  {:<10} {:<12} {:>9.2} ms / {:>7.1} us   {:>9.2} ms / {:>7.1} us",
                if fits { "yes" } else { "NO" },
                shape.table_rows(),
                f_train.seconds * 1e3,
                f_query.seconds * 1e6,
                c_train.seconds * 1e3,
                c_query.seconds * 1e6,
            );
        }
    }
    println!(
        "\nPick the largest (q, r) whose tables fit BRAM and whose training budget\n\
         holds; the paper settles on q = 2..4, r = 5 for all five applications."
    );
}
