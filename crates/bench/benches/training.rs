//! Criterion microbench: encode-and-bundle training vs LookHD counter
//! training (Fig. 13's wall-clock backing).
//!
//! Both trainers produce bit-identical class models; the counter trainer
//! defers all hypervector arithmetic to a single finalize step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::encoding::Encode;
use hdc::levels::{LevelMemory, LevelScheme};
use hdc::quantize::{Quantization, Quantizer};
use lookhd::chunking::ChunkLayout;
use lookhd::encoder::LookupEncoder;
use lookhd::lut::TableMode;
use lookhd::trainer::CounterTrainer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 225; // EXTRA geometry keeps the bench quick
const D: usize = 2000;
const Q: usize = 4;
const R: usize = 5;
const K: usize = 4;
const SAMPLES: usize = 200;

fn setup() -> (LookupEncoder, Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(9);
    let levels = LevelMemory::generate(D, Q, LevelScheme::RandomFlips, &mut rng).unwrap();
    let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
    let quantizer = Quantizer::fit(Quantization::Equalized, &samples, Q).unwrap();
    let layout = ChunkLayout::new(N, R, Q).unwrap();
    let encoder =
        LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, 9).unwrap();
    let xs: Vec<Vec<f64>> = (0..SAMPLES)
        .map(|_| (0..N).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<usize> = (0..SAMPLES).map(|i| i % K).collect();
    (encoder, xs, ys)
}

fn bench_training(c: &mut Criterion) {
    let (encoder, xs, ys) = setup();
    let mut group = c.benchmark_group("training_extra_n225_d2000_200samples");
    group.sample_size(10);
    group.bench_function("encode_and_bundle", |b| {
        b.iter(|| {
            let encoded = encoder.encode_batch(black_box(&xs)).unwrap();
            hdc::train::initial_fit(&encoded, &ys, K).unwrap()
        })
    });
    group.bench_function("counter_training", |b| {
        b.iter(|| CounterTrainer::fit(&encoder, black_box(&xs), &ys, K).unwrap())
    });
    // The streaming part alone (what scales with the dataset).
    group.bench_function("counter_observe_only", |b| {
        b.iter(|| {
            let mut trainer = CounterTrainer::new(&encoder, K).unwrap();
            for (x, &y) in xs.iter().zip(&ys) {
                trainer.observe(&encoder, black_box(x), y).unwrap();
            }
            trainer
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
