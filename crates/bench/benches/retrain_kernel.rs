//! Criterion microbench: retraining update kernels (Fig. 14b backing).
//!
//! Compares the baseline model update (add/sub a `D`-wide encoded sample
//! into two class hypervectors, then re-normalize) with the compressed
//! update rules (exact keyed update and the paper's §V-C shift rule).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use lookhd::compress::{CompressedModel, CompressionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 2000;
const K: usize = 12;

fn setup() -> (ClassModel, CompressedModel, DenseHv) {
    let mut rng = StdRng::seed_from_u64(13);
    let classes: Vec<DenseHv> = (0..K)
        .map(|_| DenseHv::from_vec((0..D).map(|_| rng.gen_range(-40..=40)).collect()))
        .collect();
    let model = ClassModel::from_classes(classes).unwrap();
    let compressed =
        CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
            .unwrap();
    let query = DenseHv::from_vec((0..D).map(|_| rng.gen_range(-30..=30)).collect());
    (model, compressed, query)
}

fn bench_retrain(c: &mut Criterion) {
    let (model, compressed, query) = setup();
    let mut group = c.benchmark_group("retrain_update_k12_d2000");
    group.sample_size(30);
    group.bench_function("baseline_add_sub_refresh", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| {
                m.add(0, black_box(&query)).unwrap();
                m.sub(1, black_box(&query)).unwrap();
                m.refresh_norms();
                m
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("compressed_exact_update", |b| {
        b.iter_batched(
            || compressed.clone(),
            |mut cm| {
                cm.update(0, 1, black_box(&query)).unwrap();
                cm
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("compressed_paper_shift_update", |b| {
        b.iter_batched(
            || compressed.clone(),
            |mut cm| {
                cm.update_paper_shift(0, 1, black_box(&query)).unwrap();
                cm
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_retrain);
criterion_main!(benches);
