//! Criterion microbench: full associative search vs compressed-model
//! scoring (the wall-clock counterpart of Fig. 14a / Fig. 15b).
//!
//! SPEECH geometry: k = 26 classes, D = 2000. The full model computes
//! k·D multiplications per query; the compressed model computes D per
//! combined vector plus sign-flipped accumulation.
//!
//! Expected outcome on a SIMD CPU: the *full* model wins or ties — 32-bit
//! MACs and masked adds have identical vector throughput, so eliminating
//! multiplications buys nothing here. The compression win is architectural
//! (FPGA DSP scarcity: Fig. 14/15 cost models) and spatial (g·D vs k·D
//! model bytes streamed per query); this bench exists to keep that claim
//! honest rather than to show a speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use lookhd::compress::{CompressedModel, CompressionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 2000;
const K: usize = 26;

fn setup() -> (
    ClassModel,
    CompressedModel,
    CompressedModel,
    CompressedModel,
    DenseHv,
) {
    let mut rng = StdRng::seed_from_u64(11);
    let classes: Vec<DenseHv> = (0..K)
        .map(|_| DenseHv::from_vec((0..D).map(|_| rng.gen_range(-40..=40)).collect()))
        .collect();
    let model = ClassModel::from_classes(classes).unwrap();
    let exact = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
    let single = CompressedModel::compress(
        &model,
        &CompressionConfig::new().with_max_classes_per_vector(K),
    )
    .unwrap();
    // The hardware integer datapath: no decorrelation/whitening front-end.
    let hardware = CompressedModel::compress(
        &model,
        &CompressionConfig::new()
            .with_decorrelate(false)
            .with_max_classes_per_vector(K),
    )
    .unwrap();
    let query = DenseHv::from_vec((0..D).map(|_| rng.gen_range(-30..=30)).collect());
    (model, exact, single, hardware, query)
}

fn bench_search(c: &mut Criterion) {
    let (model, exact, single, hardware, query) = setup();
    let mut group = c.benchmark_group("associative_search_k26_d2000");
    group.sample_size(30);
    group.bench_function("full_model", |b| {
        b.iter(|| model.predict(black_box(&query)).unwrap())
    });
    group.bench_function("compressed_exact_mode_3vec", |b| {
        b.iter(|| exact.predict(black_box(&query)).unwrap())
    });
    group.bench_function("compressed_single_vector", |b| {
        b.iter(|| single.predict(black_box(&query)).unwrap())
    });
    group.bench_function("compressed_hardware_integer_path", |b| {
        b.iter(|| hardware.predict(black_box(&query)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
