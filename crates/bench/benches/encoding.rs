//! Criterion microbench: baseline permutation encoding vs LookHD lookup
//! encoding (the wall-clock evidence behind the Fig. 13/14 encoding story).
//!
//! SPEECH geometry: n = 617 features, D = 2000, q = 4, r = 5 → m = 124
//! chunks. The lookup encoder replaces 617 rotated D-wide adds with 124
//! table fetches + keyed accumulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::encoding::{Encode, PermutationEncoder};
use hdc::levels::{LevelMemory, LevelScheme};
use hdc::quantize::{Quantization, Quantizer};
use lookhd::chunking::ChunkLayout;
use lookhd::encoder::LookupEncoder;
use lookhd::lut::TableMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 617;
const D: usize = 2000;
const Q: usize = 4;
const R: usize = 5;

fn setup() -> (PermutationEncoder, LookupEncoder, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(7);
    let levels = LevelMemory::generate(D, Q, LevelScheme::RandomFlips, &mut rng).unwrap();
    let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
    let quantizer = Quantizer::fit(Quantization::Equalized, &samples, Q).unwrap();
    let baseline = PermutationEncoder::new(levels.clone(), quantizer.clone(), N).unwrap();
    let layout = ChunkLayout::new(N, R, Q).unwrap();
    let lookup =
        LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, 7).unwrap();
    let features: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..1.0)).collect();
    (baseline, lookup, features)
}

fn bench_encoding(c: &mut Criterion) {
    let (baseline, lookup, features) = setup();
    let mut group = c.benchmark_group("encoding_speech_n617_d2000");
    group.sample_size(20);
    group.bench_function("baseline_permutation", |b| {
        b.iter(|| baseline.encode(black_box(&features)).unwrap())
    });
    group.bench_function("lookhd_lookup", |b| {
        b.iter(|| lookup.encode(black_box(&features)).unwrap())
    });
    // The per-sample training path: quantize + counter addresses only.
    group.bench_function("lookhd_addresses_only", |b| {
        b.iter(|| lookup.addresses(black_box(&features)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
