//! Criterion microbench: the pluggable scoring kernels (dense, score-LUT,
//! binary Hamming) on a Table-I-shaped workload (SPEECH: n = 617
//! features, k = 26 classes, q = 4, r = 5, D = 2000).
//!
//! All models are trained identically (decorrelation off — the kernels'
//! eligibility requirement); dense and LUT predict bit-identically, the
//! binary kernel is an approximation whose argmax agreement and accuracy
//! delta are recorded alongside its latency.
//!
//! Besides the per-function criterion report, the bench self-times the
//! same operations and writes a schema-versioned perf-trajectory record
//! to `BENCH_score_lut.json` at the repo root (override with
//! `LOOKHD_BENCH_OUT`), so future PRs can diff medians/percentiles
//! against this baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use hdc::{Classifier, FitClassifier};
use lookhd::{CompressionConfig, KernelSpec, LookHdClassifier, LookHdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 617;
const N_CLASSES: usize = 26;

/// A SPEECH-shaped synthetic training set: 26 class prototypes over 617
/// features with mild jitter.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(617);
    let protos: Vec<Vec<f64>> = (0..N_CLASSES)
        .map(|_| (0..N_FEATURES).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (c, p) in protos.iter().enumerate() {
        for _ in 0..8 {
            xs.push(
                p.iter()
                    .map(|&v| (v + rng.gen_range(-0.05f64..0.05)).clamp(0.0, 1.0))
                    .collect(),
            );
            ys.push(c);
        }
    }
    let queries = (0..64)
        .map(|i| {
            let p = &protos[i % N_CLASSES];
            p.iter()
                .map(|&v| (v + rng.gen_range(-0.05f64..0.05)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    (xs, ys, queries)
}

fn bench_score_lut(c: &mut Criterion) {
    let (xs, ys, queries) = dataset();
    // Retraining and validation are inference-irrelevant; keep training
    // cheap so the bench starts quickly.
    let base = LookHdConfig::new()
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_compression(CompressionConfig::new().with_decorrelate(false));
    let dense = LookHdClassifier::fit(&base, &xs, &ys).expect("dense training failed");
    let fast = LookHdClassifier::fit(&base.clone().with_kernel(KernelSpec::auto()), &xs, &ys)
        .expect("lut training failed");
    let lut = fast.score_lut().expect("kernel should have been built");
    let binary = LookHdClassifier::fit(&base.clone().with_kernel(KernelSpec::binary()), &xs, &ys)
        .expect("binary training failed");
    eprintln!(
        "score-LUT tables: {} chunks x {} classes = {} MiB; binary kernel: {}",
        lut.n_chunks(),
        lut.n_classes(),
        lut.size_bytes() >> 20,
        binary.kernel().describe()
    );
    // Differential sanity before timing anything: dense and LUT are exact
    // siblings, the binary kernel's agreement is recorded (not asserted
    // beyond non-degeneracy).
    let mut binary_agree = 0usize;
    for q in &queries {
        assert_eq!(
            fast.predict(q).unwrap(),
            dense.predict(q).unwrap(),
            "kernel diverged from dense path"
        );
        if binary.predict(q).unwrap() == dense.predict(q).unwrap() {
            binary_agree += 1;
        }
    }
    assert!(
        binary_agree * 2 > queries.len(),
        "binary kernel degenerate: {binary_agree}/{} agreement",
        queries.len()
    );

    let mut group = c.benchmark_group("score_lut_table1_speech");
    group.sample_size(20);
    group.bench_function("dense_predict_1", |b| {
        b.iter(|| dense.predict(black_box(&queries[0])).unwrap())
    });
    group.bench_function("lut_predict_1", |b| {
        b.iter(|| fast.predict(black_box(&queries[0])).unwrap())
    });
    group.bench_function("binary_predict_1", |b| {
        b.iter(|| binary.predict(black_box(&queries[0])).unwrap())
    });
    group.bench_function("dense_predict_batch_64", |b| {
        b.iter(|| dense.predict_batch(black_box(&queries)).unwrap())
    });
    group.bench_function("lut_predict_batch_64", |b| {
        b.iter(|| fast.predict_batch(black_box(&queries)).unwrap())
    });
    group.bench_function("binary_predict_batch_64", |b| {
        b.iter(|| binary.predict_batch(black_box(&queries)).unwrap())
    });
    group.finish();

    write_bench_json(&dense, &fast, &binary, binary_agree, &queries);
}

/// Timed nanosecond samples for one closure: short warm-up, then `n`
/// wall-clock samples.
fn sample_ns(n: usize, mut f: impl FnMut()) -> Vec<u64> {
    for _ in 0..(n / 10).max(3) {
        f();
    }
    (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect()
}

/// Renders `{"min": .., "mean": .., "p50": .., "p90": .., "p99": .., "max": ..}`
/// from raw nanosecond samples.
fn stats_json(mut samples: Vec<u64>) -> String {
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize];
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    format!(
        "{{\"min\": {}, \"mean\": {mean}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        samples[0],
        pct(0.50),
        pct(0.90),
        pct(0.99),
        samples[samples.len() - 1]
    )
}

/// Self-times the benched operations for every kernel and writes the
/// perf-trajectory record (separate from criterion's console report,
/// whose samples are not exposed by the vendored stub).
fn write_bench_json(
    dense: &LookHdClassifier,
    fast: &LookHdClassifier,
    binary: &LookHdClassifier,
    binary_agree: usize,
    queries: &[Vec<f64>],
) {
    const SAMPLES: usize = 200;
    let ops: [(&str, &dyn Fn()); 6] = [
        ("dense_predict_1_ns", &|| {
            dense.predict(black_box(&queries[0])).unwrap();
        }),
        ("lut_predict_1_ns", &|| {
            fast.predict(black_box(&queries[0])).unwrap();
        }),
        ("binary_predict_1_ns", &|| {
            binary.predict(black_box(&queries[0])).unwrap();
        }),
        ("dense_predict_batch_64_ns", &|| {
            dense.predict_batch(black_box(queries)).unwrap();
        }),
        ("lut_predict_batch_64_ns", &|| {
            fast.predict_batch(black_box(queries)).unwrap();
        }),
        ("binary_predict_batch_64_ns", &|| {
            binary.predict_batch(black_box(queries)).unwrap();
        }),
    ];
    let mut results = String::new();
    for (i, (name, op)) in ops.iter().enumerate() {
        if i > 0 {
            results.push_str(",\n    ");
        }
        let n = if name.contains("batch") { 50 } else { SAMPLES };
        let _ = write!(results, "\"{name}\": {}", stats_json(sample_ns(n, op)));
    }
    // Query labels are known by construction (query i jitters prototype
    // i % k), so the binary kernel's accuracy delta is measurable.
    let correct = |clf: &LookHdClassifier| -> usize {
        queries
            .iter()
            .enumerate()
            .filter(|(i, q)| clf.predict(q).unwrap() == i % N_CLASSES)
            .count()
    };
    let n_q = queries.len() as f64;
    let dense_acc = correct(dense) as f64 / n_q;
    let binary_acc = correct(binary) as f64 / n_q;
    let agreement = binary_agree as f64 / n_q;
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"score_lut_table1_speech\",\n  \
         \"workload\": {{\"n_features\": {N_FEATURES}, \"n_classes\": {N_CLASSES}, \
         \"dim\": 2000, \"q\": 4, \"r\": 5, \"batch\": 64, \"samples\": {SAMPLES}}},\n  \
         \"host\": {{\"cores\": {cores}}},\n  \
         \"kernels\": [\"dense\", \"lut\", \"binary\"],\n  \
         \"binary_quality\": {{\"argmax_agreement\": {agreement:.4}, \
         \"accuracy_dense\": {dense_acc:.4}, \"accuracy_binary\": {binary_acc:.4}, \
         \"accuracy_delta\": {:.4}}},\n  \"results\": {{\n    {results}\n  }}\n}}\n",
        binary_acc - dense_acc
    );
    let path = std::env::var("LOOKHD_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_score_lut.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote perf trajectory to {path}"),
        Err(e) => eprintln!("warning: writing {path}: {e}"),
    }
}

criterion_group!(benches, bench_score_lut);
criterion_main!(benches);
