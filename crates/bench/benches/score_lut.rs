//! Criterion microbench: the score-LUT inference kernel vs the dense
//! compressed path on a Table-I-shaped workload (SPEECH: n = 617
//! features, k = 26 classes, q = 4, r = 5, D = 2000).
//!
//! Both models are trained identically (decorrelation off — the kernel's
//! eligibility requirement) and predict bit-identically; the bench
//! isolates the per-query cost of materialize-H-then-score against
//! address-extraction + table gathers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::{Classifier, FitClassifier};
use lookhd::{CompressionConfig, LookHdClassifier, LookHdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_FEATURES: usize = 617;
const N_CLASSES: usize = 26;

/// A SPEECH-shaped synthetic training set: 26 class prototypes over 617
/// features with mild jitter.
fn dataset() -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(617);
    let protos: Vec<Vec<f64>> = (0..N_CLASSES)
        .map(|_| (0..N_FEATURES).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (c, p) in protos.iter().enumerate() {
        for _ in 0..8 {
            xs.push(
                p.iter()
                    .map(|&v| (v + rng.gen_range(-0.05f64..0.05)).clamp(0.0, 1.0))
                    .collect(),
            );
            ys.push(c);
        }
    }
    let queries = (0..64)
        .map(|i| {
            let p = &protos[i % N_CLASSES];
            p.iter()
                .map(|&v| (v + rng.gen_range(-0.05f64..0.05)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    (xs, ys, queries)
}

fn bench_score_lut(c: &mut Criterion) {
    let (xs, ys, queries) = dataset();
    // Retraining and validation are inference-irrelevant; keep training
    // cheap so the bench starts quickly.
    let base = LookHdConfig::new()
        .with_retrain_epochs(0)
        .with_validation_fraction(0.0)
        .with_compression(CompressionConfig::new().with_decorrelate(false));
    let dense = LookHdClassifier::fit(&base, &xs, &ys).expect("dense training failed");
    let fast = LookHdClassifier::fit(&base.clone().with_score_lut(true), &xs, &ys)
        .expect("lut training failed");
    let lut = fast.score_lut().expect("kernel should have been built");
    eprintln!(
        "score-LUT tables: {} chunks x {} classes = {} MiB",
        lut.n_chunks(),
        lut.n_classes(),
        lut.size_bytes() >> 20
    );
    // Differential sanity before timing anything.
    for q in &queries {
        assert_eq!(
            fast.predict(q).unwrap(),
            dense.predict(q).unwrap(),
            "kernel diverged from dense path"
        );
    }

    let mut group = c.benchmark_group("score_lut_table1_speech");
    group.sample_size(20);
    group.bench_function("dense_predict_1", |b| {
        b.iter(|| dense.predict(black_box(&queries[0])).unwrap())
    });
    group.bench_function("lut_predict_1", |b| {
        b.iter(|| fast.predict(black_box(&queries[0])).unwrap())
    });
    group.bench_function("dense_predict_batch_64", |b| {
        b.iter(|| dense.predict_batch(black_box(&queries)).unwrap())
    });
    group.bench_function("lut_predict_batch_64", |b| {
        b.iter(|| fast.predict_batch(black_box(&queries)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_score_lut);
criterion_main!(benches);
