//! Criterion bench: thread scaling of the sharded execution engine on the
//! SPEECH profile (the paper's largest workload by `n × k`).
//!
//! Times LookHD counter training and compressed batch inference at 1, 2,
//! and 4 engine threads. The determinism contract means every variant
//! produces bit-identical models and predictions — only wall-clock time
//! may differ. On a single-core host all three variants necessarily cost
//! the same (plus scheduling overhead); see results/ext_engine_scaling.txt
//! for the recorded run and host note.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::{Classifier, FitClassifier};
use lookhd::{LookHdClassifier, LookHdConfig};
use lookhd_datasets::apps::App;
use lookhd_engine::EngineConfig;

const DIM: usize = 1024;
const THREADS: [usize; 3] = [1, 2, 4];

fn config(threads: usize) -> LookHdConfig {
    LookHdConfig::new()
        .with_dim(DIM)
        .with_retrain_epochs(0)
        .with_engine(EngineConfig::new().with_threads(threads))
}

fn bench_training(c: &mut Criterion) {
    let data = App::Speech.profile().generate_small(42);
    let mut group = c.benchmark_group("engine_scaling/train");
    group.sample_size(10);
    for threads in THREADS {
        let cfg = config(threads);
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                LookHdClassifier::fit(
                    black_box(&cfg),
                    black_box(&data.train.features),
                    black_box(&data.train.labels),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let data = App::Speech.profile().generate_small(42);
    let clf = LookHdClassifier::fit(&config(1), &data.train.features, &data.train.labels)
        .expect("training failed");
    let mut group = c.benchmark_group("engine_scaling/predict_batch");
    group.sample_size(10);
    for threads in THREADS {
        let mut threaded = clf.clone();
        threaded.set_engine(EngineConfig::new().with_threads(threads));
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                threaded
                    .predict_batch(black_box(&data.test.features))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Same single-threaded training workload with the observability registry
/// off vs on — the delta is the full cost of span/counter instrumentation
/// on the hot path (budget: < 5%; disabled, it is one relaxed atomic load
/// per site).
fn bench_obs_overhead(c: &mut Criterion) {
    let data = App::Speech.profile().generate_small(42);
    let cfg = config(1);
    let mut group = c.benchmark_group("engine_scaling/obs_overhead");
    group.sample_size(10);
    for enabled in [false, true] {
        let label = if enabled { "enabled" } else { "disabled" };
        group.bench_function(label, |b| {
            obs::set_enabled(enabled);
            b.iter(|| {
                LookHdClassifier::fit(
                    black_box(&cfg),
                    black_box(&data.train.features),
                    black_box(&data.train.labels),
                )
                .unwrap()
            });
            obs::set_enabled(false);
            obs::reset();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference, bench_obs_overhead);
criterion_main!(benches);
