//! Criterion microbench: supporting kernels — quantization, word-level
//! rotation, n-gram encoding, and hyperspace k-means assignment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hdc::cluster::kmeans;
use hdc::hv::{BipolarHv, DenseHv};
use hdc::quantize::{Quantization, Quantizer};
use hdc::sequence::NgramEncoder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let values: Vec<f64> = (0..100_000)
        .map(|_| rng.gen_range(0.0f64..1.0).powi(2))
        .collect();
    let mut group = c.benchmark_group("quantization_100k_values");
    group.sample_size(20);
    group.bench_function("fit_linear_q4", |b| {
        b.iter(|| Quantizer::fit(Quantization::Linear, black_box(&values), 4).unwrap())
    });
    group.bench_function("fit_equalized_q4", |b| {
        b.iter(|| Quantizer::fit(Quantization::Equalized, black_box(&values), 4).unwrap())
    });
    let quantizer = Quantizer::fit(Quantization::Equalized, &values, 4).unwrap();
    let features: Vec<f64> = values[..617].to_vec();
    group.bench_function("quantize_617_features", |b| {
        b.iter(|| quantizer.levels_of(black_box(&features)))
    });
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(32);
    let word_aligned = BipolarHv::random(2048, &mut rng);
    let unaligned = BipolarHv::random(2000, &mut rng);
    let mut group = c.benchmark_group("rotation_d2048");
    group.sample_size(30);
    group.bench_function("word_path_d2048", |b| {
        b.iter(|| black_box(&word_aligned).rotated(617))
    });
    group.bench_function("bit_path_d2000", |b| {
        b.iter(|| black_box(&unaligned).rotated(617))
    });
    group.finish();
}

fn bench_sequence(c: &mut Criterion) {
    let mut encoder = NgramEncoder::<char>::new(4096, 3, 33).unwrap();
    let text = "the quick brown fox jumps over the lazy dog and keeps running";
    // Warm the item memory so the bench measures encoding, not interning.
    let _ = encoder.encode_str(text).unwrap();
    let mut group = c.benchmark_group("sequence_encoding");
    group.sample_size(20);
    group.bench_function("trigrams_62_chars_d4096", |b| {
        b.iter(|| encoder.encode_str(black_box(text)).unwrap())
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(34);
    let protos: Vec<BipolarHv> = (0..4).map(|_| BipolarHv::random(1024, &mut rng)).collect();
    let samples: Vec<DenseHv> = (0..120)
        .map(|i| {
            let mut hv = protos[i % 4].clone();
            let idx: Vec<usize> = (0..40).map(|_| rng.gen_range(0..1024)).collect();
            hv.flip(&idx);
            DenseHv::from(&hv)
        })
        .collect();
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.bench_function("kmeans_120x1024_k4", |b| {
        b.iter(|| {
            let mut local_rng = StdRng::seed_from_u64(35);
            kmeans(black_box(&samples), 4, 15, &mut local_rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_quantization,
    bench_rotation,
    bench_sequence,
    bench_clustering
);
criterion_main!(benches);
