//! Bridges application profiles and trained models into `lookhd-hwsim`
//! workload shapes.

use lookhd_datasets::apps::AppProfile;
use lookhd_hwsim::WorkloadShape;

/// Parameters that vary per experiment when building a workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeParams {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// LookHD quantization levels `q` (the baseline shape uses the
    /// profile's own `q`).
    pub q: usize,
    /// Chunk size `r`.
    pub r: usize,
    /// Classes per compressed vector.
    pub max_classes_per_vector: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Retraining epochs.
    pub retrain_epochs: usize,
    /// Average updates per retraining epoch (measure or estimate).
    pub avg_updates_per_epoch: usize,
}

impl ShapeParams {
    /// Paper-default parameters for an application: `D = 2000`, the
    /// profile's LookHD `q`, `r = 5`, 12 classes/vector, 10 retraining
    /// epochs, updates estimated at 10% of the training set.
    pub fn paper_default(profile: &AppProfile) -> Self {
        let train_samples = profile.default_train_per_class * profile.n_classes;
        Self {
            dim: 2000,
            q: profile.paper_q_lookhd,
            r: 5,
            max_classes_per_vector: 12,
            train_samples,
            retrain_epochs: 10,
            avg_updates_per_epoch: train_samples / 10,
        }
    }
}

/// The LookHD workload shape for an application.
pub fn lookhd_shape(profile: &AppProfile, p: ShapeParams) -> WorkloadShape {
    WorkloadShape {
        n_features: profile.n_features,
        q: p.q,
        dim: p.dim,
        n_classes: profile.n_classes,
        r: p.r.min(profile.n_features),
        max_classes_per_vector: p.max_classes_per_vector,
        train_samples: p.train_samples,
        retrain_epochs: p.retrain_epochs,
        avg_updates_per_epoch: p.avg_updates_per_epoch,
    }
}

/// The baseline HDC workload shape for an application (its own larger `q`,
/// no compression: one hypervector per class).
pub fn baseline_shape(profile: &AppProfile, p: ShapeParams) -> WorkloadShape {
    WorkloadShape {
        n_features: profile.n_features,
        q: profile.paper_q_baseline,
        dim: p.dim,
        n_classes: profile.n_classes,
        r: p.r.min(profile.n_features),
        max_classes_per_vector: 1,
        train_samples: p.train_samples,
        retrain_epochs: p.retrain_epochs,
        avg_updates_per_epoch: p.avg_updates_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookhd_datasets::apps::App;

    #[test]
    fn shapes_reflect_profile_and_params() {
        let profile = App::Speech.profile();
        let params = ShapeParams::paper_default(&profile);
        let look = lookhd_shape(&profile, params);
        let base = baseline_shape(&profile, params);
        assert_eq!(look.n_features, 617);
        assert_eq!(look.q, 4);
        assert_eq!(base.q, 16);
        assert_eq!(look.n_vectors(), 3); // ⌈26/12⌉
        assert_eq!(base.n_vectors(), 26);
        assert_eq!(look.train_samples, 60 * 26);
    }
}
