//! Experiment sizing: full (paper-scale) vs fast (smoke-test) runs.
//!
//! Every experiment binary honours `LOOKHD_FAST=1`, which shrinks datasets,
//! dimensionality, and retraining epochs so the whole suite runs in
//! seconds. The default sizes match the DESIGN.md per-experiment index.

use lookhd_datasets::apps::AppProfile;
use lookhd_datasets::Dataset;

/// Shared experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Context {
    /// Whether `LOOKHD_FAST=1` is set.
    pub fast: bool,
    /// Dataset seed (fixed for reproducibility).
    pub seed: u64,
}

impl Context {
    /// Reads the context from the environment.
    pub fn from_env() -> Self {
        Self {
            fast: std::env::var("LOOKHD_FAST")
                .map(|v| v == "1")
                .unwrap_or(false),
            seed: 42,
        }
    }

    /// The evaluation dimensionality `D` (paper: 2000).
    pub fn dim(&self) -> usize {
        if self.fast {
            512
        } else {
            2000
        }
    }

    /// Retraining epochs (paper: ~10).
    pub fn retrain_epochs(&self) -> usize {
        if self.fast {
            2
        } else {
            10
        }
    }

    /// Generates an application dataset at context size.
    pub fn dataset(&self, profile: &AppProfile) -> Dataset {
        if self.fast {
            profile.generate_small(self.seed)
        } else {
            profile.generate(self.seed)
        }
    }

    /// Scales an iteration/sample count down in fast mode.
    pub fn scaled(&self, n: usize) -> usize {
        if self.fast {
            (n / 8).max(2)
        } else {
            n
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookhd_datasets::apps::App;

    #[test]
    fn fast_mode_shrinks_everything() {
        let fast = Context {
            fast: true,
            seed: 1,
        };
        let full = Context {
            fast: false,
            seed: 1,
        };
        assert!(fast.dim() < full.dim());
        assert!(fast.retrain_epochs() < full.retrain_epochs());
        assert!(fast.scaled(100) < 100);
        let p = App::Physical.profile();
        assert!(fast.dataset(&p).train.len() < full.dataset(&p).train.len());
    }
}
