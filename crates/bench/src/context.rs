//! Experiment sizing: full (paper-scale) vs fast (smoke-test) runs.
//!
//! Every experiment binary honours `LOOKHD_FAST=1`, which shrinks datasets,
//! dimensionality, and retraining epochs so the whole suite runs in
//! seconds. The default sizes match the DESIGN.md per-experiment index.
//!
//! `LOOKHD_METRICS=path.json` additionally enables the [`obs`]
//! observability registry for the run; experiments that call
//! [`Context::write_metrics`] at the end dump the recorded spans and
//! counters as one JSON document.

use lookhd_datasets::apps::AppProfile;
use lookhd_datasets::Dataset;

/// Shared experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Context {
    /// Whether `LOOKHD_FAST=1` is set.
    pub fast: bool,
    /// Dataset seed (fixed for reproducibility).
    pub seed: u64,
    /// Where to write the observability snapshot (`LOOKHD_METRICS`), if
    /// anywhere. Leaked to keep `Context` `Copy`; one leak per process.
    pub metrics: Option<&'static str>,
}

impl Context {
    /// Reads the context from the environment. When `LOOKHD_METRICS` is
    /// set, the global observability registry is switched on so spans and
    /// counters accumulate for [`Self::write_metrics`].
    pub fn from_env() -> Self {
        let metrics = std::env::var("LOOKHD_METRICS")
            .ok()
            .filter(|p| !p.is_empty())
            .map(|p| &*Box::leak(p.into_boxed_str()));
        if metrics.is_some() {
            obs::set_enabled(true);
        }
        Self {
            fast: std::env::var("LOOKHD_FAST")
                .map(|v| v == "1")
                .unwrap_or(false),
            seed: 42,
            metrics,
        }
    }

    /// Writes the observability snapshot as JSON to the `LOOKHD_METRICS`
    /// path. A no-op when the variable is unset; I/O failures are reported
    /// on stderr rather than aborting an otherwise-finished experiment.
    pub fn write_metrics(&self) {
        let Some(path) = self.metrics else { return };
        let json = obs::snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("warning: writing metrics to {path}: {e}");
        }
    }

    /// The evaluation dimensionality `D` (paper: 2000).
    pub fn dim(&self) -> usize {
        if self.fast {
            512
        } else {
            2000
        }
    }

    /// Retraining epochs (paper: ~10).
    pub fn retrain_epochs(&self) -> usize {
        if self.fast {
            2
        } else {
            10
        }
    }

    /// Generates an application dataset at context size.
    pub fn dataset(&self, profile: &AppProfile) -> Dataset {
        if self.fast {
            profile.generate_small(self.seed)
        } else {
            profile.generate(self.seed)
        }
    }

    /// Scales an iteration/sample count down in fast mode.
    pub fn scaled(&self, n: usize) -> usize {
        if self.fast {
            (n / 8).max(2)
        } else {
            n
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookhd_datasets::apps::App;

    #[test]
    fn fast_mode_shrinks_everything() {
        let fast = Context {
            fast: true,
            seed: 1,
            metrics: None,
        };
        let full = Context {
            fast: false,
            seed: 1,
            metrics: None,
        };
        assert!(fast.dim() < full.dim());
        assert!(fast.retrain_epochs() < full.retrain_epochs());
        assert!(fast.scaled(100) < 100);
        let p = App::Physical.profile();
        assert!(fast.dataset(&p).train.len() < full.dataset(&p).train.len());
    }

    #[test]
    fn write_metrics_is_a_noop_without_a_path_and_writes_json_with_one() {
        let silent = Context {
            fast: true,
            seed: 1,
            metrics: None,
        };
        silent.write_metrics();
        let path = std::env::temp_dir().join("lookhd_ctx_metrics_test.json");
        let leaked: &'static str = Box::leak(path.display().to_string().into_boxed_str());
        let ctx = Context {
            fast: true,
            seed: 1,
            metrics: Some(leaked),
        };
        ctx.write_metrics();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"version\": 3"));
        let _ = std::fs::remove_file(&path);
    }
}
