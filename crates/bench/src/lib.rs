//! # lookhd-bench — experiment harness for the LookHD reproduction
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus Criterion microbenches backing the wall-clock claims.
//! This library holds the shared plumbing: text-table rendering, sized
//! experiment contexts, and workload-shape construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod shapes;
pub mod table;
