//! Ablation — single-pass training regimes (extension; the paper's §VI-F
//! notes HDC "supports single-pass or few-pass training").
//!
//! Compares, per application:
//! * one-pass counter training (plain bundling, no retraining);
//! * one-pass OnlineHD-style novelty-scaled training;
//! * counter training + the full 10-epoch compressed retraining
//!   (the reference LookHD pipeline).
//!
//! All three evaluate on the *uncompressed* model so the comparison
//! isolates the training rule.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ablation_online`

use hdc::model::ClassModel;
use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd::online::{OnlineConfig, OnlineTrainer};
use lookhd::trainer::CounterTrainer;
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "App",
        "one-pass bundling",
        "one-pass online",
        "bundling + retraining",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        // Shared encoder via the classifier scaffolding (retraining off).
        let config = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let encoder = clf.encoder();
        let accuracy = |model: &ClassModel| -> f64 {
            let correct = data
                .test
                .features
                .iter()
                .zip(&data.test.labels)
                .filter(|(x, &y)| {
                    let h = hdc::encoding::Encode::encode(encoder, x).expect("encode failed");
                    model.predict(&h).expect("predict failed") == y
                })
                .count();
            correct as f64 / data.test.len() as f64
        };

        let mut bundled = CounterTrainer::fit(
            encoder,
            &data.train.features,
            &data.train.labels,
            profile.n_classes,
        )
        .expect("counter training failed");
        bundled.refresh_norms();
        let online = OnlineTrainer::fit(
            encoder,
            &data.train.features,
            &data.train.labels,
            profile.n_classes,
            OnlineConfig::new(),
        )
        .expect("online training failed");

        // Reference: full pipeline with retraining, scored uncompressed.
        let full_cfg = config.clone().with_retrain_epochs(ctx.retrain_epochs());
        let full = LookHdClassifier::fit(&full_cfg, &data.train.features, &data.train.labels)
            .expect("training failed");
        let full_acc = data
            .test
            .features
            .iter()
            .zip(&data.test.labels)
            .filter(|(x, &y)| full.predict_uncompressed(x).expect("predict failed") == y)
            .count() as f64
            / data.test.len() as f64;

        table.row([
            profile.name.to_owned(),
            pct(accuracy(&bundled)),
            pct(accuracy(&online)),
            pct(full_acc),
        ]);
    }
    println!(
        "Ablation: single-pass training regimes, uncompressed scoring (D = {})\n",
        ctx.dim()
    );
    table.print();
    println!(
        "\nOnlineHD-style novelty scaling closes part of the gap between one-pass\n\
         bundling and the full bundle-plus-retrain pipeline at one pass's cost."
    );
}
