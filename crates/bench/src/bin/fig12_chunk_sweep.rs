//! Fig. 12 — impact of the chunk size `r` and the quantization level count
//! `q` on LookHD accuracy, per application, against the linear-quantized
//! baseline.
//!
//! The paper's claims: accuracy generally improves with chunk size (small
//! chunks need more `P` hypervectors → more aggregation noise), `r = 5` is
//! enough for most applications, and `q = 2..4` equalized levels suffice.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig12_chunk_sweep`

use hdc::classifier::{HdcClassifier, HdcConfig};
use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let r_values: Vec<usize> = if ctx.fast {
        vec![1, 5]
    } else {
        vec![1, 2, 3, 5, 7, 10]
    };
    let q_values: Vec<usize> = if ctx.fast { vec![2, 4] } else { vec![2, 4, 8] };
    let epochs = if ctx.fast { 1 } else { 3 };
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        // Baseline: the profile's linear q.
        let base_cfg = HdcConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(epochs);
        let baseline = HdcClassifier::fit(&base_cfg, &data.train.features, &data.train.labels)
            .expect("baseline training failed");
        let base_acc = baseline
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        println!(
            "\nFig. 12 [{}]: baseline (linear q={}) = {}",
            profile.name,
            profile.paper_q_baseline,
            pct(base_acc)
        );
        let mut table = Table::new(
            std::iter::once("r".to_owned()).chain(q_values.iter().map(|q| format!("q={q}"))),
        );
        for &r in &r_values {
            let mut row = vec![r.to_string()];
            for &q in &q_values {
                let cfg = LookHdConfig::new()
                    .with_dim(ctx.dim())
                    .with_q(q)
                    .with_r(r)
                    .with_retrain_epochs(epochs);
                let clf = LookHdClassifier::fit(&cfg, &data.train.features, &data.train.labels)
                    .expect("training failed");
                let acc = clf
                    .evaluate(&data.test.features, &data.test.labels)
                    .expect("scoring failed");
                row.push(pct(acc));
            }
            table.row(row);
        }
        table.print();
    }
    println!(
        "\nPaper: larger chunks help (fewer P hypervectors to aggregate); r = 5 and\n\
         q = 2..4 equalized levels reach the baseline's accuracy or better."
    );
}
