//! Table IV — LookHD vs an MLP mapped on the same FPGA (DNNWeaver-style
//! inference, FPDeep-style training).
//!
//! For each application: the MLP's MAC workload is mapped through the same
//! KC705 model (DSP-bound), LookHD through its own pipelines, and we report
//! training/test speedup and energy efficiency plus the model-size and
//! accuracy comparison. The MLP is also actually trained (small budget) so
//! the comparison is between working classifiers, not just cost formulas.
//!
//! Paper headlines (5-app average): training 23.1× faster / 43.6× more
//! energy-efficient; inference 11.7× / 5.1×; 63.2× smaller models.
//!
//! Run: `cargo run --release -p lookhd-bench --bin table04_mlp`

use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::shapes::{lookhd_shape, ShapeParams};
use lookhd_bench::table::{pct, ratio, Table};
use lookhd_datasets::apps::App;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{geomean, FpgaModel, OpCounts};
use lookhd_mlp::{Mlp, MlpConfig, MlpShape};

fn main() {
    let ctx = Context::from_env();
    let fpga = FpgaModel::kc705();
    let hidden = 512usize;
    let mlp_epochs = 20usize;
    let mut table = Table::new([
        "App",
        "train speedup",
        "train energy",
        "test speedup",
        "test energy",
        "model size",
        "LookHD acc",
        "MLP acc",
    ]);
    let mut avgs = vec![Vec::new(); 5];
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);

        // Accuracy of both real implementations.
        let look_cfg = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(ctx.retrain_epochs());
        let look = LookHdClassifier::fit(&look_cfg, &data.train.features, &data.train.labels)
            .expect("LookHD training failed");
        let look_acc = look
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        let mlp_cfg = MlpConfig::new()
            .with_hidden(vec![if ctx.fast { 64 } else { hidden }])
            .with_epochs(if ctx.fast { 3 } else { mlp_epochs });
        let mlp = Mlp::fit(&mlp_cfg, &data.train.features, &data.train.labels)
            .expect("MLP training failed");
        let mlp_acc = mlp
            .evaluate(&data.test.features, &data.test.labels)
            .expect("MLP scoring failed");

        // Cost comparison at paper scale.
        let mut params = ShapeParams::paper_default(&profile);
        params.dim = 2000;
        params.train_samples = data.train.len();
        let shape = lookhd_shape(&profile, params);
        let mlp_shape = MlpShape::new(vec![profile.n_features, hidden, profile.n_classes]);

        // MLP on the FPGA: MACs on DSPs, weights streamed from memory.
        let mlp_train_ops = OpCounts {
            mults: mlp_shape.training_step_macs()
                * (params.train_samples as u64)
                * mlp_epochs as u64,
            adds: mlp_shape.training_step_macs()
                * (params.train_samples as u64)
                * mlp_epochs as u64,
            mem_bytes: mlp_shape.inference_weight_bytes()
                * (params.train_samples as u64)
                * mlp_epochs as u64,
            ..OpCounts::zero()
        };
        let mlp_infer_ops = OpCounts {
            mults: mlp_shape.inference_macs(),
            adds: mlp_shape.inference_macs(),
            mem_bytes: mlp_shape.inference_weight_bytes(),
            ..OpCounts::zero()
        };
        // The MLP designs keep the DSP array and weight streams hot; use the
        // baseline-design power class (dense arithmetic datapath).
        let f_mlp_train = fpga.execute_as(&mlp_train_ops, FpgaPhase::BaselineTraining);
        let f_mlp_infer = fpga.execute_as(&mlp_infer_ops, FpgaPhase::BaselineInference);
        let f_look_train = fpga.execute_as(&shape.lookhd_training(), FpgaPhase::LookHdTraining);
        let f_look_infer = fpga.execute_as(&shape.lookhd_inference(), FpgaPhase::LookHdInference);

        let (_, look_bytes) = shape.model_bytes();
        let vals = [
            f_look_train.speedup_over(&f_mlp_train),
            f_look_train.energy_efficiency_over(&f_mlp_train),
            f_look_infer.speedup_over(&f_mlp_infer),
            f_look_infer.energy_efficiency_over(&f_mlp_infer),
            mlp_shape.model_bytes() as f64 / look_bytes as f64,
        ];
        for (series, &v) in avgs.iter_mut().zip(&vals) {
            series.push(v);
        }
        table.row([
            profile.name.to_owned(),
            ratio(vals[0]),
            ratio(vals[1]),
            ratio(vals[2]),
            ratio(vals[3]),
            ratio(vals[4]),
            pct(look_acc),
            pct(mlp_acc),
        ]);
    }
    table.row(
        std::iter::once("GEOMEAN".to_owned())
            .chain(avgs.iter().map(|s| ratio(geomean(s))))
            .chain(["".to_owned(), "".to_owned()]),
    );
    println!("Table IV: LookHD vs MLP (hidden = {hidden}) on the KC705 (D = 2000)\n");
    table.print();
    println!(
        "\nPaper (5-app average): training 23.1x faster / 43.6x more energy-efficient;\n\
         inference 11.7x / 5.1x; 63.2x smaller model."
    );
}
