//! Ablation — exact vs paper-shift retraining update rules (§V-C).
//!
//! The paper's FPGA replaces the exact `ΔP'·H` retraining update with a
//! negate/shift approximation. DESIGN.md documents that the printed table
//! is direction-blind as written; this ablation retrains the compressed
//! model with both the exact rule and our direction-corrected reading of
//! the shift rule and compares converged accuracy and convergence speed.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ablation_update_rule`

use hdc::encoding::Encode;
use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd::retrain::{retrain_compressed, UpdateRule};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let epochs = ctx.retrain_epochs();
    let mut table = Table::new([
        "App",
        "no retrain",
        "exact rule",
        "paper-shift rule",
        "exact epochs",
        "shift epochs",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let config = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let encoded_train = clf
            .encoder()
            .encode_batch(&data.train.features)
            .expect("encoding failed");
        let encoded_test: Vec<_> = data
            .test
            .features
            .iter()
            .map(|f| clf.encoder().encode(f).expect("encoding failed"))
            .collect();
        let score = |cm: &lookhd::CompressedModel| -> f64 {
            encoded_test
                .iter()
                .zip(&data.test.labels)
                .filter(|(h, &y)| cm.predict(h).expect("predict failed") == y)
                .count() as f64
                / encoded_test.len() as f64
        };
        let base_acc = score(clf.compressed());
        let mut accs = Vec::new();
        let mut epochs_run = Vec::new();
        for rule in [UpdateRule::Exact, UpdateRule::PaperShift] {
            let mut cm = clf.compressed().clone();
            let report =
                retrain_compressed(&mut cm, &encoded_train, &data.train.labels, epochs, rule)
                    .expect("retraining failed");
            accs.push(score(&cm));
            epochs_run.push(report.epochs_run());
        }
        table.row([
            profile.name.to_owned(),
            pct(base_acc),
            pct(accs[0]),
            pct(accs[1]),
            epochs_run[0].to_string(),
            epochs_run[1].to_string(),
        ]);
    }
    println!(
        "Ablation: retraining update arithmetic, {} max epochs (D = {})\n",
        epochs,
        ctx.dim()
    );
    table.print();
    println!(
        "\nThe shift rule is a ≈1/2-rate approximation of the exact update; it should\n\
         converge to similar accuracy, possibly needing more epochs."
    );
}
