//! Table II — impact of hypervector dimensionality on LookHD accuracy
//! (`r = 5`, per-app `q` from the paper).
//!
//! The paper's claim: LookHD at `D = 2000` is within 0.3% of `D = 10,000`.
//! We report both the compressed-model accuracy (the deployed LookHD path)
//! and the uncompressed model (which isolates the encoding/training
//! quality that Table II measures).
//!
//! Run: `cargo run --release -p lookhd-bench --bin table02_dimensionality`

use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let dims: Vec<usize> = if ctx.fast {
        vec![256, 512]
    } else {
        vec![1000, 2000, 4000, 8000, 10_000]
    };
    let mut table = Table::new(
        ["App", "q"]
            .into_iter()
            .map(str::to_owned)
            .chain(dims.iter().map(|d| format!("D={d}")))
            .chain(["paper D=2000".to_owned()]),
    );
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let mut row = vec![profile.name.to_owned(), profile.paper_q_lookhd.to_string()];
        for &dim in &dims {
            let config = LookHdConfig::new()
                .with_dim(dim)
                .with_q(profile.paper_q_lookhd)
                .with_retrain_epochs(if ctx.fast { 1 } else { 5 });
            let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
                .expect("training failed");
            let comp = clf
                .evaluate(&data.test.features, &data.test.labels)
                .expect("scoring failed");
            let unc = data
                .test
                .features
                .iter()
                .zip(&data.test.labels)
                .filter(|(x, &y)| clf.predict_uncompressed(x).expect("predict failed") == y)
                .count() as f64
                / data.test.len() as f64;
            row.push(format!("{} ({})", pct(comp), pct(unc)));
        }
        row.push(pct(profile.paper_accuracy_lookhd_d2000));
        table.row(row);
    }
    println!("Table II: LookHD accuracy vs dimensionality, r = 5");
    println!("cells: compressed accuracy (uncompressed accuracy)\n");
    table.print();
    println!(
        "\nPaper: accuracy is nearly flat in D — D = 2000 loses <0.3% vs D = 10,000.\n\
         Compression cross-talk shrinks as D grows (∝ 1/√D), so the compressed\n\
         column converges to the uncompressed one at large D."
    );
}
