//! Fig. 14 — (a) per-query inference time and energy, (b) per-iteration
//! retraining time and energy: LookHD vs baseline HDC on CPU and FPGA.
//!
//! Average updates per retraining iteration are measured by retraining the
//! Rust implementation (the paper likewise uses the average over the
//! training run).
//!
//! Paper headlines: inference — FPGA 2.2× faster / 4.1× more
//! energy-efficient, CPU 1.7× / 2.3×; retraining — FPGA 2.4× / 4.5×,
//! CPU 1.8× / 2.3×; SPEECH (most classes) gains the most.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig14_infer_retrain`

use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::shapes::{baseline_shape, lookhd_shape, ShapeParams};
use lookhd_bench::table::{ratio, Table};
use lookhd_datasets::apps::App;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{geomean, CpuModel, FpgaModel};

fn main() {
    let ctx = Context::from_env();
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let mut infer = Table::new([
        "App",
        "FPGA speed",
        "FPGA energy",
        "CPU speed",
        "CPU energy",
    ]);
    let mut retrain = Table::new([
        "App",
        "FPGA speed",
        "FPGA energy",
        "CPU speed",
        "CPU energy",
    ]);
    let mut infer_avgs = vec![Vec::new(); 4];
    let mut retrain_avgs = vec![Vec::new(); 4];
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let cfg = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(ctx.retrain_epochs());
        let clf = LookHdClassifier::fit(&cfg, &data.train.features, &data.train.labels)
            .expect("training failed");
        let avg_updates = clf.report().avg_updates_per_epoch().round() as usize;

        let mut params = ShapeParams::paper_default(&profile);
        params.dim = 2000;
        params.train_samples = data.train.len();
        params.avg_updates_per_epoch = avg_updates;
        let look = lookhd_shape(&profile, params);
        let base = baseline_shape(&profile, params);

        // (a) single-query inference
        let f_base = fpga.execute_as(&base.baseline_inference(), FpgaPhase::BaselineInference);
        let f_look = fpga.execute_as(&look.lookhd_inference(), FpgaPhase::LookHdInference);
        let c_base = cpu.execute(&base.baseline_inference());
        let c_look = cpu.execute(&look.lookhd_inference());
        let vals = [
            f_look.speedup_over(&f_base),
            f_look.energy_efficiency_over(&f_base),
            c_look.speedup_over(&c_base),
            c_look.energy_efficiency_over(&c_base),
        ];
        infer.row(std::iter::once(profile.name.to_owned()).chain(vals.iter().map(|&v| ratio(v))));
        for (series, &v) in infer_avgs.iter_mut().zip(&vals) {
            series.push(v);
        }

        // (b) one retraining iteration
        let f_base = fpga.execute_as(
            &base.baseline_retrain_epoch(),
            FpgaPhase::BaselineRetraining,
        );
        let f_look = fpga.execute_as(&look.lookhd_retrain_epoch(), FpgaPhase::LookHdRetraining);
        let c_base = cpu.execute(&base.baseline_retrain_epoch());
        let c_look = cpu.execute(&look.lookhd_retrain_epoch());
        let vals = [
            f_look.speedup_over(&f_base),
            f_look.energy_efficiency_over(&f_base),
            c_look.speedup_over(&c_base),
            c_look.energy_efficiency_over(&c_base),
        ];
        retrain.row(std::iter::once(profile.name.to_owned()).chain(vals.iter().map(|&v| ratio(v))));
        for (series, &v) in retrain_avgs.iter_mut().zip(&vals) {
            series.push(v);
        }
    }
    infer.row(
        std::iter::once("GEOMEAN".to_owned()).chain(infer_avgs.iter().map(|s| ratio(geomean(s)))),
    );
    retrain.row(
        std::iter::once("GEOMEAN".to_owned()).chain(retrain_avgs.iter().map(|s| ratio(geomean(s)))),
    );
    println!(
        "Fig. 14a: single-query inference — LookHD improvement over baseline HDC (D = 2000)\n"
    );
    infer.print();
    println!("\nPaper: FPGA 2.2x faster / 4.1x more energy-efficient; CPU 1.7x / 2.3x.\n");
    println!("Fig. 14b: one retraining iteration — LookHD improvement over baseline HDC\n");
    retrain.print();
    println!(
        "\nPaper: FPGA 2.4x / 4.5x; CPU 1.8x / 2.3x; SPEECH (k = 26) gains the most\n\
         because baseline search cost grows with the class count."
    );
}
