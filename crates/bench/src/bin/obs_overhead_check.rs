//! CI gate for the observability overhead budget: with the registry
//! *enabled*, instrumented LookHD training must stay within 5% of the
//! obs-disabled wall time (DESIGN.md §8; disabled, every site is one
//! relaxed atomic load).
//!
//! The `engine_scaling/obs_overhead` criterion group reports the same
//! delta but only prints it; this binary *enforces* the budget with a
//! nonzero exit so `scripts/ci.sh` can fail on regressions.
//!
//! Methodology: disabled/enabled fits are interleaved (A B A B …) so
//! slow drift on a shared host hits both arms equally, the comparison
//! uses medians (robust to one-off scheduler stalls), and a failed
//! round retries up to [`MAX_ROUNDS`] times before the check fails —
//! a genuine regression fails every round, noise does not.
//!
//! Usage: `obs_overhead_check [--budget-pct 5] [--pairs 9]`

use std::time::Instant;

use hdc::FitClassifier;
use lookhd::{LookHdClassifier, LookHdConfig};
use lookhd_datasets::apps::App;

const MAX_ROUNDS: usize = 3;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut budget_pct = 5.0f64;
    let mut pairs = 9usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--budget-pct" => budget_pct = value("--budget-pct").parse().expect("bad budget"),
            "--pairs" => pairs = value("--pairs").parse().expect("bad pairs"),
            other => panic!("unknown argument {other:?} (see module doc)"),
        }
    }

    let data = App::Speech.profile().generate_small(42);
    let cfg = LookHdConfig::new().with_dim(1024).with_retrain_epochs(0);
    let fit = |enabled: bool| -> u64 {
        obs::set_enabled(enabled);
        let start = Instant::now();
        let model = LookHdClassifier::fit(&cfg, &data.train.features, &data.train.labels)
            .expect("training failed");
        let ns = start.elapsed().as_nanos() as u64;
        obs::set_enabled(false);
        obs::reset();
        std::hint::black_box(model);
        ns
    };

    // Warm-up: page in the dataset and JIT-warm the allocator.
    fit(false);
    fit(true);

    for round in 1..=MAX_ROUNDS {
        let mut disabled = Vec::with_capacity(pairs);
        let mut enabled = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            disabled.push(fit(false));
            enabled.push(fit(true));
        }
        let (off, on) = (median_ns(disabled), median_ns(enabled));
        let overhead_pct = (on as f64 - off as f64) / off as f64 * 100.0;
        println!(
            "round {round}/{MAX_ROUNDS}: disabled median {:.2}ms, enabled median {:.2}ms, \
             overhead {overhead_pct:+.2}% (budget {budget_pct}%)",
            off as f64 / 1e6,
            on as f64 / 1e6,
        );
        if overhead_pct <= budget_pct {
            println!("obs overhead OK");
            return;
        }
    }
    eprintln!("obs overhead check FAILED: budget exceeded in all {MAX_ROUNDS} rounds");
    std::process::exit(1);
}
