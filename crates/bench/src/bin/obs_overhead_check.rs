//! CI gate for the observability overhead budget: with the registry
//! *enabled*, instrumented LookHD training must stay within 5% of the
//! obs-disabled wall time (DESIGN.md §8; disabled, every site is one
//! relaxed atomic load) — measured **both** single-threaded and with 8
//! concurrent recording threads, since the sharded registry's whole
//! point is that contention must not reintroduce overhead.
//!
//! The binary enforces the budget with a nonzero exit so
//! `scripts/ci.sh` can fail on regressions, and writes a
//! schema-versioned `BENCH_obs.json` holding the gate medians plus a
//! *contention benchmark*: raw record throughput of the sharded
//! registry against an in-bench reimplementation of the old
//! single-mutex string-keyed registry, 8 threads hammering both. The
//! "before" arm is rebuilt here rather than kept in the library so the
//! comparison survives the old code's deletion.
//!
//! Methodology: disabled/enabled samples are interleaved (A B A B …) so
//! slow drift on a shared host hits both arms equally, the comparison
//! uses medians (robust to one-off scheduler stalls), and a failed
//! round retries up to [`MAX_ROUNDS`] times before the check fails —
//! a genuine regression fails every round, noise does not.
//!
//! Usage: `obs_overhead_check [--budget-pct 5] [--pairs 9]
//!                            [--mt-pairs 5] [--out BENCH_obs.json]`

use std::collections::HashMap;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use hdc::FitClassifier;
use lookhd::{LookHdClassifier, LookHdConfig};
use lookhd_datasets::apps::App;

const MAX_ROUNDS: usize = 3;

/// Recording threads in the multi-threaded gate and the contention
/// benchmark (the acceptance scenario: up to [`obs::N_SHARDS`] threads
/// never share a stripe).
const MT_THREADS: usize = 8;

/// Operations per thread in the contention benchmark. Each op is one
/// counter bump plus one span record.
const CONTENTION_OPS: usize = 200_000;

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One gate arm's verdict: medians of the last round plus whether any
/// round fit the budget.
struct GateResult {
    disabled_median_ns: u64,
    enabled_median_ns: u64,
    overhead_pct: f64,
    rounds_used: usize,
    passed: bool,
}

/// Runs one interleaved-median gate over `sample(enabled)`, retrying up
/// to [`MAX_ROUNDS`] rounds.
fn run_gate(
    label: &str,
    pairs: usize,
    budget_pct: f64,
    mut sample: impl FnMut(bool) -> u64,
) -> GateResult {
    // Warm-up: page in the dataset and warm the allocator.
    sample(false);
    sample(true);
    let mut last = (0u64, 0u64, 0.0f64);
    for round in 1..=MAX_ROUNDS {
        let mut disabled = Vec::with_capacity(pairs);
        let mut enabled = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            disabled.push(sample(false));
            enabled.push(sample(true));
        }
        let (off, on) = (median_ns(disabled), median_ns(enabled));
        let overhead_pct = (on as f64 - off as f64) / off as f64 * 100.0;
        println!(
            "{label} round {round}/{MAX_ROUNDS}: disabled median {:.2}ms, \
             enabled median {:.2}ms, overhead {overhead_pct:+.2}% (budget {budget_pct}%)",
            off as f64 / 1e6,
            on as f64 / 1e6,
        );
        last = (off, on, overhead_pct);
        if overhead_pct <= budget_pct {
            return GateResult {
                disabled_median_ns: off,
                enabled_median_ns: on,
                overhead_pct,
                rounds_used: round,
                passed: true,
            };
        }
    }
    GateResult {
        disabled_median_ns: last.0,
        enabled_median_ns: last.1,
        overhead_pct: last.2,
        rounds_used: MAX_ROUNDS,
        passed: false,
    }
}

/// The old registry, reconstructed for the "before" contention arm: one
/// process-wide mutex around string-keyed maps, every record paying the
/// lock plus a name hash (and an allocation on first sight).
struct SingleMutexRegistry {
    counters: Mutex<HashMap<String, u64>>,
    #[allow(clippy::type_complexity)]
    spans: Mutex<HashMap<String, (u64, u64, [u64; obs::N_BUCKETS])>>,
}

impl SingleMutexRegistry {
    fn new() -> Self {
        Self {
            counters: Mutex::new(HashMap::new()),
            spans: Mutex::new(HashMap::new()),
        }
    }

    fn counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("poisoned");
        *counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    fn record(&self, name: &str, d: Duration) {
        let ns = d.as_nanos() as u64;
        let bucket = obs::bucket_index(d);
        let mut spans = self.spans.lock().expect("poisoned");
        let cell = spans
            .entry(name.to_owned())
            .or_insert((0, 0, [0; obs::N_BUCKETS]));
        cell.0 += 1;
        cell.1 += ns;
        cell.2[bucket] += 1;
    }
}

/// Wall time for [`MT_THREADS`] threads × `ops` (counter bump + span
/// record) through `op`, barrier-started so all threads contend.
fn timed_hammer(ops: usize, op: impl Fn(usize, usize) + Sync) -> u64 {
    let barrier = Barrier::new(MT_THREADS + 1);
    let mut wall_ns = 0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..MT_THREADS)
            .map(|t| {
                let barrier = &barrier;
                let op = &op;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..ops {
                        op(t, i);
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().expect("hammer thread panicked");
        }
        wall_ns = start.elapsed().as_nanos() as u64;
    });
    wall_ns
}

/// The contention benchmark: identical op streams through the old
/// single-mutex registry and the new sharded one. Returns
/// `(single_mutex_ns, sharded_ns)`.
fn contention_bench() -> (u64, u64) {
    let old = SingleMutexRegistry::new();
    // Same mixed key set both arms see: a few hot names, like the serve
    // path's counters and spans.
    const NAMES: [&str; 4] = ["bench.ops", "bench.hits", "bench.misses", "bench.errors"];
    const SPANS: [&str; 2] = ["bench/fast", "bench/slow"];
    // Warm both arms (first-sight allocations out of the timed region).
    for name in NAMES {
        old.counter(name, 0);
    }
    for span in SPANS {
        old.record(span, Duration::ZERO);
    }
    let single_mutex_ns = timed_hammer(CONTENTION_OPS, |t, i| {
        old.counter(NAMES[(t + i) % NAMES.len()], 1);
        old.record(
            SPANS[i % SPANS.len()],
            Duration::from_nanos((i & 0xFFFF) as u64),
        );
    });

    obs::reset();
    obs::set_enabled(true);
    let counter_ids: Vec<obs::MetricId> =
        NAMES.iter().map(|n| obs::intern_counter(n, &[])).collect();
    let span_ids: Vec<obs::SpanId> = SPANS.iter().map(|p| obs::intern_span(p, &[])).collect();
    let sharded_ns = timed_hammer(CONTENTION_OPS, |t, i| {
        obs::counter_id(counter_ids[(t + i) % counter_ids.len()], 1);
        obs::record_id(
            span_ids[i % span_ids.len()],
            Duration::from_nanos((i & 0xFFFF) as u64),
        );
    });
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter("bench.ops")
            + snap.counter("bench.hits")
            + snap.counter("bench.misses")
            + snap.counter("bench.errors"),
        (MT_THREADS * CONTENTION_OPS) as u64,
        "sharded registry lost counts under contention"
    );
    obs::set_enabled(false);
    obs::reset();
    (single_mutex_ns, sharded_ns)
}

fn mops(ops: u64, wall_ns: u64) -> f64 {
    ops as f64 / wall_ns.max(1) as f64 * 1e3
}

fn gate_json(g: &GateResult) -> String {
    format!(
        "{{\"disabled_median_ns\": {}, \"enabled_median_ns\": {}, \"overhead_pct\": {:.3}, \"rounds_used\": {}, \"passed\": {}}}",
        g.disabled_median_ns, g.enabled_median_ns, g.overhead_pct, g.rounds_used, g.passed
    )
}

fn main() {
    let mut budget_pct = 5.0f64;
    let mut pairs = 9usize;
    let mut mt_pairs = 5usize;
    let mut out_path = "BENCH_obs.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--budget-pct" => budget_pct = value("--budget-pct").parse().expect("bad budget"),
            "--pairs" => pairs = value("--pairs").parse().expect("bad pairs"),
            "--mt-pairs" => mt_pairs = value("--mt-pairs").parse().expect("bad mt-pairs"),
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (see module doc)"),
        }
    }

    // -- gate 1: single-threaded instrumented training ---------------------
    let data = App::Speech.profile().generate_small(42);
    let cfg = LookHdConfig::new().with_dim(1024).with_retrain_epochs(0);
    let single = run_gate("single-thread", pairs, budget_pct, |enabled| {
        obs::set_enabled(enabled);
        let start = Instant::now();
        let model = LookHdClassifier::fit(&cfg, &data.train.features, &data.train.labels)
            .expect("training failed");
        let ns = start.elapsed().as_nanos() as u64;
        obs::set_enabled(false);
        obs::reset();
        std::hint::black_box(model);
        ns
    });

    // -- gate 2: 8 threads training concurrently, all recording ------------
    let mt_cfg = LookHdConfig::new().with_dim(512).with_retrain_epochs(0);
    let multi = run_gate("multi-thread", mt_pairs, budget_pct, |enabled| {
        obs::set_enabled(enabled);
        let barrier = Barrier::new(MT_THREADS + 1);
        let mut wall_ns = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..MT_THREADS)
                .map(|_| {
                    let barrier = &barrier;
                    let (cfg, data) = (&mt_cfg, &data);
                    s.spawn(move || {
                        barrier.wait();
                        let model =
                            LookHdClassifier::fit(cfg, &data.train.features, &data.train.labels)
                                .expect("training failed");
                        std::hint::black_box(model);
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            for handle in handles {
                handle.join().expect("fit thread panicked");
            }
            wall_ns = start.elapsed().as_nanos() as u64;
        });
        obs::set_enabled(false);
        obs::reset();
        wall_ns
    });

    // -- contention: old single-mutex registry vs the sharded one ----------
    let (single_mutex_ns, sharded_ns) = contention_bench();
    let total_ops = (MT_THREADS * CONTENTION_OPS) as u64;
    let speedup = single_mutex_ns as f64 / sharded_ns.max(1) as f64;
    println!(
        "contention ({MT_THREADS} threads × {CONTENTION_OPS} counter+span ops): \
         single-mutex {:.1}ms ({:.1} Mops/s), sharded {:.1}ms ({:.1} Mops/s), {speedup:.1}x",
        single_mutex_ns as f64 / 1e6,
        mops(total_ops, single_mutex_ns),
        sharded_ns as f64 / 1e6,
        mops(total_ops, sharded_ns),
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"obs_overhead\",\n  \"host\": {{\"cores\": {cores}, \"co_located\": true, \"note\": \"gate and contention arms share the host; medians over interleaved samples\"}},\n  \"budget_pct\": {budget_pct},\n  \"gates\": {{\n    \"single_thread\": {},\n    \"multi_thread_{MT_THREADS}\": {}\n  }},\n  \"contention\": {{\n    \"threads\": {MT_THREADS},\n    \"ops_per_thread\": {CONTENTION_OPS},\n    \"op\": \"counter bump + span record\",\n    \"single_mutex\": {{\"wall_ns\": {single_mutex_ns}, \"mops_per_sec\": {:.3}}},\n    \"sharded\": {{\"wall_ns\": {sharded_ns}, \"mops_per_sec\": {:.3}}},\n    \"speedup\": {speedup:.3}\n  }}\n}}\n",
        gate_json(&single),
        gate_json(&multi),
        mops(total_ops, single_mutex_ns),
        mops(total_ops, sharded_ns),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if single.passed && multi.passed {
        println!("obs overhead OK (single-thread and {MT_THREADS}-thread gates)");
        return;
    }
    eprintln!(
        "obs overhead check FAILED: budget exceeded in all {MAX_ROUNDS} rounds \
         (single-thread passed: {}, multi-thread passed: {})",
        single.passed, multi.passed
    );
    std::process::exit(1);
}
