//! Fig. 13 — LookHD training speedup and energy efficiency over the
//! baseline HDC, on FPGA and CPU, for `q ∈ {2, 4, 8}` (`r = 5`).
//!
//! Per the paper's setup, this is the *initial* training phase ("the
//! training is implemented by encoding the data points to high-dimensional
//! space and adding the encoded hypervectors in a pipelined stage");
//! retraining is evaluated separately in Fig. 14b. FPGA numbers use the
//! structural §V-A pipeline model; CPU numbers use the op-count model,
//! which includes the full `q^r` counter-array scan at finalize (the
//! source of the q-dependence).
//!
//! Paper headline (5-app average): FPGA q=2 → 28.3× faster / 97.4× more
//! energy-efficient; q=4 → 14.1× / 48.7×; CPU q=2 → 3.9× / 7.5×,
//! q=4 → 2.6× / 3.8×.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig13_training_eff`

use lookhd_bench::shapes::{baseline_shape, lookhd_shape, ShapeParams};
use lookhd_bench::table::{ratio, Table};
use lookhd_datasets::apps::App;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{geomean, CpuModel, FpgaModel};

fn main() {
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let q_values = [2usize, 4, 8];
    let mut table = Table::new(
        std::iter::once("App".to_owned()).chain(q_values.iter().flat_map(|q| {
            [
                format!("FPGA q={q} speed"),
                format!("FPGA q={q} energy"),
                format!("CPU q={q} speed"),
                format!("CPU q={q} energy"),
            ]
        })),
    );
    let mut averages = vec![Vec::new(); q_values.len() * 4];
    for app in App::ALL {
        let profile = app.profile();
        let mut row = vec![profile.name.to_owned()];
        for (qi, &q) in q_values.iter().enumerate() {
            let mut params = ShapeParams::paper_default(&profile);
            params.dim = 2000;
            params.q = q;
            params.retrain_epochs = 0;
            let look = lookhd_shape(&profile, params);
            let base = baseline_shape(&profile, params);

            let f_base = fpga.initial_training_cost(&base, FpgaPhase::BaselineTraining);
            let f_look = fpga.initial_training_cost(&look, FpgaPhase::LookHdTraining);
            let c_base = cpu.execute(&base.baseline_initial_training());
            let c_look = cpu.execute(&look.lookhd_initial_training());
            let vals = [
                f_look.speedup_over(&f_base),
                f_look.energy_efficiency_over(&f_base),
                c_look.speedup_over(&c_base),
                c_look.energy_efficiency_over(&c_base),
            ];
            for (vi, &v) in vals.iter().enumerate() {
                averages[qi * 4 + vi].push(v);
                row.push(ratio(v));
            }
        }
        table.row(row);
    }
    let mut avg_row = vec!["GEOMEAN".to_owned()];
    for series in &averages {
        avg_row.push(ratio(geomean(series)));
    }
    table.row(avg_row);
    println!(
        "Fig. 13: LookHD initial-training speedup / energy-efficiency over baseline HDC\n\
         (D = 2000, r = 5, paper-default training-set sizes)\n"
    );
    table.print();
    println!(
        "\nPaper (5-app average): FPGA q=2 28.3x/97.4x, q=4 14.1x/48.7x;\n\
         CPU q=2 3.9x/7.5x, q=4 2.6x/3.8x. Larger q costs more (the q^r counter\n\
         arrays must be swept at finalize), reproducing the q=2 > q=4 > q=8 order."
    );
}
