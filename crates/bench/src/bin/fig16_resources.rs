//! Fig. 16 — FPGA resource utilization of the LookHD training and
//! inference designs (SPEECH: `k = 26`, `n = 617`), plus the FACE contrast
//! case (`k = 2`, `n = 608`).
//!
//! Paper observations: the encoding/training side is LUT/FF-heavy (counter
//! register files, quantizers), inference is DSP-heavy (associative
//! search); SPEECH inference is DSP-limited while training is LUT-limited;
//! FACE (`k ≪ n`) is LUT-limited in both phases.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig16_resources`

use lookhd_bench::shapes::{lookhd_shape, ShapeParams};
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;
use lookhd_hwsim::FpgaModel;

fn main() {
    let fpga = FpgaModel::kc705();
    for app in [App::Speech, App::Face] {
        let profile = app.profile();
        let params = ShapeParams::paper_default(&profile);
        let shape = lookhd_shape(&profile, params);
        let train = fpga.lookhd_training_usage(&shape);
        let infer = fpga.lookhd_inference_usage(&shape);
        println!(
            "\nFig. 16 [{}] (n = {}, k = {}, q = {}, r = {}):",
            profile.name, profile.n_features, profile.n_classes, shape.q, shape.r
        );
        let mut table = Table::new(["phase", "LUT", "FF", "DSP", "BRAM", "fits"]);
        for (phase, usage) in [("training", train), ("inference", infer)] {
            let (l, f, d, b) = usage.utilization(&fpga.device);
            table.row([
                phase.to_owned(),
                pct(l),
                pct(f),
                pct(d),
                pct(b),
                usage.fits(&fpga.device).to_string(),
            ]);
        }
        table.print();
        println!(
            "  BRAM feasibility of the chunk tables (q={}, r={}): {}",
            shape.q,
            shape.r,
            if fpga.tables_fit(&shape) {
                "fits"
            } else {
                "DOES NOT FIT"
            }
        );
    }
    println!(
        "\nPaper: SPEECH inference is DSP-limited, SPEECH training LUT-limited;\n\
         FACE (k = 2 << n) is LUT-limited in both phases."
    );
}
