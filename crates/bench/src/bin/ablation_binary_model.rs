//! Ablation — binary (majority-thresholded) models vs LookHD's non-binary
//! models.
//!
//! §VII claims prior binary-domain HDC systems lose ~17.5% accuracy on
//! average against LookHD's non-binary models. This ablation binarizes the
//! trained class model and measures the gap, for both a sign-thresholded
//! model with dense queries and the fully binary (Hamming) regime.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ablation_binary_model`

use hdc::binary::BinaryModel;
use hdc::encoding::Encode;
use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "App",
        "non-binary",
        "binary model",
        "fully binary",
        "gap (binary)",
    ]);
    let mut gaps = Vec::new();
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let config = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(ctx.retrain_epochs());
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let binary = BinaryModel::from_model(clf.model());
        let mut non_binary = 0usize;
        let mut bin = 0usize;
        let mut fully_bin = 0usize;
        for (x, &y) in data.test.features.iter().zip(&data.test.labels) {
            let h = clf.encoder().encode(x).expect("encoding failed");
            if clf.model().predict(&h).expect("predict failed") == y {
                non_binary += 1;
            }
            if binary.predict(&h).expect("predict failed") == y {
                bin += 1;
            }
            if binary.predict_binary(&h.sign()).expect("predict failed") == y {
                fully_bin += 1;
            }
        }
        let n = data.test.len() as f64;
        let (nb, b, fb) = (non_binary as f64 / n, bin as f64 / n, fully_bin as f64 / n);
        gaps.push(nb - fb);
        table.row([
            profile.name.to_owned(),
            pct(nb),
            pct(b),
            pct(fb),
            format!("{:+.1} pts", (fb - nb) * 100.0),
        ]);
    }
    println!(
        "Ablation: binary vs non-binary model accuracy (D = {})\n",
        ctx.dim()
    );
    table.print();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!(
        "\nmean fully-binary gap: {:.1} points (paper cites ~17.5 points for prior\n\
         binary-domain HDC; binarizing only the *model* — with a non-binary\n\
         query — is far gentler than the fully binary pipelines those systems\n\
         use, and our clean-majority data keeps margins wide)",
        mean_gap * 100.0
    );
}
