//! Fig. 9 — LookHD classification accuracy across retraining iterations.
//!
//! The paper shows accuracy stabilizing within ~10 iterations for
//! SPEECH / ACTIVITY / PHYSICAL; this binary retrains the compressed model
//! epoch by epoch and reports test accuracy after each.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig09_retraining`

use hdc::encoding::Encode;
use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd::retrain::{retrain_compressed, UpdateRule};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let max_epochs = ctx.scaled(12).max(3);
    let mut table = Table::new(
        std::iter::once("iteration".to_owned()).chain(
            [App::Speech, App::Activity, App::Physical]
                .iter()
                .map(|a| a.profile().name.to_owned()),
        ),
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for app in [App::Speech, App::Activity, App::Physical] {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let config = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let mut compressed = clf.compressed().clone();
        let encoded_train = clf
            .encoder()
            .encode_batch(&data.train.features)
            .expect("encoding failed");
        let encoded_test: Vec<_> = data
            .test
            .features
            .iter()
            .map(|f| clf.encoder().encode(f).expect("encoding failed"))
            .collect();
        let score = |cm: &lookhd::CompressedModel| -> f64 {
            let correct = encoded_test
                .iter()
                .zip(&data.test.labels)
                .filter(|(h, &y)| cm.predict(h).expect("predict failed") == y)
                .count();
            correct as f64 / encoded_test.len() as f64
        };
        let mut series = vec![score(&compressed)];
        for _ in 0..max_epochs {
            retrain_compressed(
                &mut compressed,
                &encoded_train,
                &data.train.labels,
                1,
                UpdateRule::Exact,
            )
            .expect("retraining failed");
            series.push(score(&compressed));
        }
        columns.push(series);
    }
    for epoch in 0..=max_epochs {
        let mut row = vec![epoch.to_string()];
        for series in &columns {
            row.push(pct(series[epoch]));
        }
        table.row(row);
    }
    println!(
        "Fig. 9: LookHD test accuracy per retraining iteration (D = {}, iteration 0 = initial model)",
        ctx.dim()
    );
    table.print();
    println!("\nPaper: accuracy stabilizes within about ten iterations.");
}
