//! Fig. 4 — impact of linear vs equalized quantization on SPEECH accuracy
//! across `q ∈ {2, 4, 8, 16}`.
//!
//! The paper's claims: (i) linear quantization loses accuracy at small `q`
//! (−3.4% at `q = 2`); (ii) equalized quantization at `q = 4` matches or
//! beats linear `q = 16`.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig04_quant_accuracy`

use hdc::quantize::Quantization;
use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let profile = App::Speech.profile();
    let data = ctx.dataset(&profile);
    // Fig. 4 isolates the quantization effect, so score the uncompressed
    // model (compression noise is a separate §VI-G axis); the compressed
    // accuracy is shown alongside for completeness.
    let mut table = Table::new([
        "q",
        "linear",
        "equalized",
        "linear (comp)",
        "equalized (comp)",
    ]);
    let mut results = Vec::new();
    for q in [2usize, 4, 8, 16] {
        let mut row = vec![q.to_string()];
        let mut comp_cells = Vec::new();
        for kind in [Quantization::Linear, Quantization::Equalized] {
            let config = LookHdConfig::new()
                .with_dim(ctx.dim())
                .with_q(q)
                .with_quantization(kind)
                .with_retrain_epochs(ctx.retrain_epochs());
            let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
                .expect("training failed");
            let comp = clf
                .evaluate(&data.test.features, &data.test.labels)
                .expect("scoring failed");
            let acc = data
                .test
                .features
                .iter()
                .zip(&data.test.labels)
                .filter(|(x, &y)| clf.predict_uncompressed(x).expect("predict failed") == y)
                .count() as f64
                / data.test.len() as f64;
            row.push(pct(acc));
            comp_cells.push(pct(comp));
            results.push((q, kind, acc));
        }
        row.extend(comp_cells);
        table.row(row);
    }
    println!(
        "Fig. 4: SPEECH accuracy vs quantization levels, linear vs equalized (D = {})",
        ctx.dim()
    );
    table.print();
    let eq4 = results
        .iter()
        .find(|(q, k, _)| *q == 4 && *k == Quantization::Equalized)
        .map(|(_, _, a)| *a)
        .unwrap_or(0.0);
    let lin16 = results
        .iter()
        .find(|(q, k, _)| *q == 16 && *k == Quantization::Linear)
        .map(|(_, _, a)| *a)
        .unwrap_or(0.0);
    println!(
        "\nequalized q=4 vs linear q=16: {:+.1} points (paper: +1.2)",
        (eq4 - lin16) * 100.0
    );
}
