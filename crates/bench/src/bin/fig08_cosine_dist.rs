//! Fig. 8 — distribution of query/class cosine similarities on ACTIVITY,
//! for the original and the decorrelated model.
//!
//! The paper's observation: HDC class hypervectors are so correlated that
//! all cosines land in [0.9, 1.0], making compressed-model rankings fragile;
//! after removing the common component the distribution spreads wide.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig08_cosine_dist`

use hdc::encoding::Encode;
use hdc::FitClassifier;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd::compress::decorrelate;
use lookhd_bench::context::Context;
use lookhd_bench::table::bar;
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let profile = App::Activity.profile();
    let data = ctx.dataset(&profile);
    let config = LookHdConfig::new()
        .with_dim(ctx.dim())
        .with_q(profile.paper_q_lookhd)
        .with_retrain_epochs(0);
    let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
        .expect("training failed");
    let original = clf.model().clone();
    let decorrelated = decorrelate(&original).expect("decorrelation failed");

    // The paper reports over 1000 test queries; use as many as available.
    let n_queries = data.test.features.len().min(1000);
    let mut cosines_orig = Vec::new();
    let mut cosines_dec = Vec::new();
    for features in data.test.features.iter().take(n_queries) {
        let h = clf.encoder().encode(features).expect("encode failed");
        cosines_orig.extend(original.cosines(&h).expect("cosines failed"));
        cosines_dec.extend(decorrelated.cosines(&h).expect("cosines failed"));
    }

    println!(
        "Fig. 8: cosine-similarity distribution over {} ACTIVITY queries × {} classes (D = {})",
        n_queries,
        profile.n_classes,
        ctx.dim()
    );
    for (name, cosines) in [("original", &cosines_orig), ("decorrelated", &cosines_dec)] {
        println!("\n{name} model:");
        print_histogram(cosines);
        let (lo, hi) = span(cosines);
        println!("  span: [{lo:.3}, {hi:.3}]  (width {:.3})", hi - lo);
    }
    println!(
        "\nPaper: original cosines all in [0.9, 1.0]; the decorrelated model has a\n\
         much wider distribution, absorbing compression cross-talk noise."
    );
    println!(
        "model class correlation: original {:.3}, decorrelated {:.3}",
        original.class_correlation(),
        decorrelated.class_correlation()
    );
}

fn print_histogram(values: &[f64]) {
    let bins = 20usize;
    let mut hist = vec![0usize; bins];
    for &v in values {
        // Cosines live in [-1, 1].
        let b = (((v + 1.0) / 2.0) * bins as f64) as usize;
        hist[b.min(bins - 1)] += 1;
    }
    let peak = *hist.iter().max().unwrap_or(&1) as f64;
    for (i, &count) in hist.iter().enumerate() {
        let lo = -1.0 + 2.0 * i as f64 / bins as f64;
        if count > 0 {
            println!("  {lo:>5.2} | {:<40} {count}", bar(count as f64, peak, 40));
        }
    }
}

fn span(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}
