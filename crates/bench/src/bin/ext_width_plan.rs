//! Extension — datapath bit-width planning and verification per
//! application.
//!
//! For each application, derives the §V datapath widths ([`WidthPlan`])
//! from the workload geometry and runs the fixed-point training and search
//! datapaths bit-exactly against the software reference on a scaled-down
//! instance. This is the width-sufficiency evidence an RTL implementation
//! of Figs. 10/11 would need.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ext_width_plan`

use hdc::levels::{LevelMemory, LevelScheme};
use hdc::quantize::{Quantization, Quantizer};
use lookhd::chunking::ChunkLayout;
use lookhd::encoder::LookupEncoder;
use lookhd::lut::TableMode;
use lookhd::trainer::CounterTrainer;
use lookhd::{CompressedModel, CompressionConfig};
use lookhd_bench::table::Table;
use lookhd_datasets::apps::App;
use lookhd_rtl::datapath::WidthPlan;
use lookhd_rtl::{verify_search_datapath, verify_training_datapath};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut table = Table::new([
        "App",
        "table elem",
        "counter",
        "class acc",
        "search acc",
        "train bit-exact",
        "search bit-exact",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        // Scaled-down verification instance (full geometry in n/q/r, small D).
        let d = 128usize;
        let q = profile.paper_q_lookhd;
        let r = 5usize;
        let data = profile.generate_sized(8, 2, 77);
        let plan = WidthPlan::derive(r, profile.n_features, d, 8, (profile.n_features * 8) as i64);
        let mut rng = StdRng::seed_from_u64(77);
        let levels = LevelMemory::generate(d, q, LevelScheme::RandomFlips, &mut rng)
            .expect("level generation failed");
        let quantizer = Quantizer::fit(Quantization::Equalized, &data.train_values(), q)
            .expect("quantizer fit failed");
        let layout = ChunkLayout::new(profile.n_features, r, q).expect("layout failed");
        let encoder = LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, 77)
            .expect("encoder build failed");

        let train_report = verify_training_datapath(
            &encoder,
            &data.train.features,
            &data.train.labels,
            profile.n_classes,
            &plan,
        )
        .expect("training verification failed");

        let model = CounterTrainer::fit(
            &encoder,
            &data.train.features,
            &data.train.labels,
            profile.n_classes,
        )
        .expect("training failed");
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .expect("compression failed");
        let query = hdc::encoding::Encode::encode(&encoder, &data.test.features[0])
            .expect("encoding failed");
        let search =
            verify_search_datapath(&compressed, &query, &plan).expect("search verification failed");

        table.row([
            profile.name.to_owned(),
            plan.table_element.to_string(),
            plan.counter.to_string(),
            plan.class_accumulator.to_string(),
            plan.search_accumulator.to_string(),
            format!(
                "{} ({} elems)",
                train_report.is_bit_exact(),
                train_report.checked
            ),
            format!(
                "{} (pred match: {})",
                search.report.is_bit_exact(),
                search.prediction_matches
            ),
        ]);
    }
    println!(
        "Extension: §V datapath width plans and fixed-point bit-exactness\n\
         (scaled verification instances: D = 128, 8 samples/class)\n"
    );
    table.print();
    println!(
        "\nTable elements at the paper's ~log2(r) bits; counters sized to the\n\
         per-class sample budget; a zero-overflow bit-exact run certifies the\n\
         planned widths for that workload geometry."
    );
}
