//! Extension — discrete-pipeline cross-check of the §V-B inference design.
//!
//! Expresses the Fig. 11 pipeline (quantize → table fetch → keyed
//! aggregation → windowed DSP search) as explicit stages and simulates a
//! query batch token by token, verifying the analytic `⌈D/d'⌉`
//! cycles-per-query steady state the cost model assumes, per application.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ext_pipeline_trace`

use lookhd_bench::table::Table;
use lookhd_datasets::apps::App;
use lookhd_hwsim::pipeline::{lookhd_inference_pipeline, query_tokens};
use lookhd_hwsim::FpgaModel;

fn main() {
    let fpga = FpgaModel::kc705();
    let dim = 2000usize;
    let batch = 1000u64;
    let mut table = Table::new([
        "App",
        "k",
        "d' window",
        "slices/query",
        "cycles/query (sim)",
        "cycles/query (analytic)",
        "latency @200MHz",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let window = fpga.search_window(profile.n_classes);
        let tokens = query_tokens(dim, window);
        let pipe = lookhd_inference_pipeline(dim, window);
        let sim = pipe.makespan(tokens * batch) as f64 / batch as f64;
        let analytic = tokens as f64; // one slice per cycle in steady state
        table.row([
            profile.name.to_owned(),
            profile.n_classes.to_string(),
            window.to_string(),
            tokens.to_string(),
            format!("{sim:.1}"),
            format!("{analytic:.1}"),
            format!("{:.2} us", sim / 200e6 * 1e6),
        ]);
    }
    println!(
        "Extension: discrete simulation of the Fig. 11 inference pipeline\n\
         (D = {dim}, batch = {batch} queries, KC705 DSP budget)\n"
    );
    table.print();
    println!("\nPipeline stage utilization (steady state):");
    let pipe = lookhd_inference_pipeline(dim, fpga.search_window(12));
    for (name, busy) in pipe.utilization() {
        println!("  {name:<12} {:.0}%", busy * 100.0);
    }
    println!(
        "\nThe simulated steady state matches the analytic d'-window arithmetic:\n\
         more classes → smaller window → more slices per query (§II-D made\n\
         concrete), while the compressed model keeps d' large."
    );
}
