//! Table I — application characteristics and baseline HD accuracy.
//!
//! Reproduces the paper's Table I: per application, the feature count `n`,
//! the minimum baseline quantization `q` for maximum accuracy, the class
//! count `k`, the measured baseline HD accuracy, and the naive lookup size
//! `q^n` that motivates LookHD (reported as a base-2 exponent).
//!
//! Run: `cargo run --release -p lookhd-bench --bin table01_apps`
//! (set `LOOKHD_FAST=1` for a quick smoke run).

use hdc::classifier::{HdcClassifier, HdcConfig};
use hdc::{Classifier, FitClassifier};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "Application",
        "n",
        "q",
        "k",
        "HD Accuracy (meas)",
        "HD Accuracy (paper)",
        "Lookup Size (# rows)",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let config = HdcConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(ctx.retrain_epochs());
        let clf = HdcClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("baseline training failed");
        let acc = clf
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        table.row([
            profile.name.to_owned(),
            profile.n_features.to_string(),
            profile.paper_q_baseline.to_string(),
            profile.n_classes.to_string(),
            pct(acc),
            pct(profile.paper_accuracy_baseline),
            format!("2^{:.0}", profile.naive_lookup_log2_rows()),
        ]);
    }
    println!("Table I: application characteristics (D = {})", ctx.dim());
    table.print();
    println!();
    println!(
        "The naive per-app lookup table (q^n rows) is astronomically infeasible,\n\
         motivating LookHD's chunked tables: q=4, r=5 needs only 4^5 = 1024 rows."
    );
    ctx.write_metrics();
}
