//! Extension — predicting the Fig. 15 compression crossover from margin
//! and noise statistics, per application.
//!
//! For each application: train LookHD, then analyze the uncompressed
//! model's score margins against the Eq. 5 cross-talk noise at several
//! group sizes. Where the mean noise ratio crosses the margin
//! distribution, compression starts flipping predictions — without
//! running an accuracy sweep.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ext_compression_analysis`

use hdc::encoding::Encode;
use hdc::FitClassifier;
use lookhd::analysis::analyze_compression;
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd::{CompressedModel, CompressionConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "App",
        "group",
        "margin mean",
        "noise/signal mean",
        "at-risk queries",
        "agreement",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let config = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let queries: Vec<_> = data
            .test
            .features
            .iter()
            .take(ctx.scaled(200))
            .map(|x| clf.encoder().encode(x).expect("encoding failed"))
            .collect();
        let mut groups: Vec<usize> = [4usize, 8, 12, profile.n_classes.max(1)]
            .into_iter()
            .filter(|&g| g <= profile.n_classes)
            .collect();
        groups.dedup();
        for group in groups {
            let compressed = CompressedModel::compress(
                clf.model(),
                &CompressionConfig::new().with_max_classes_per_vector(group),
            )
            .expect("compression failed");
            let analysis =
                analyze_compression(clf.model(), &compressed, &queries).expect("analysis failed");
            table.row([
                profile.name.to_owned(),
                group.to_string(),
                format!("{:.3}", analysis.margins.mean),
                format!("{:.3}", analysis.noise_to_signal.mean),
                pct(analysis.at_risk),
                pct(analysis.agreement),
            ]);
        }
    }
    println!(
        "Extension: margin vs compression-noise analysis (D = {})\n\
         'agreement' = fraction of queries whose uncompressed winner survives\n\
         compression; 'at-risk' = queries whose margin is below the mean\n\
         noise/signal ratio.\n",
        ctx.dim()
    );
    table.print();
    println!(
        "\nAgreement stays high while the at-risk fraction is small and collapses\n\
         as noise overtakes the margins — the mechanism behind the Fig. 15\n\
         group-size crossover, measured directly."
    );
}
