//! Calibration check — measured vs paper accuracy for every application,
//! for the baseline HDC and the full LookHD pipeline.
//!
//! This is the sanity gate for the synthetic-dataset substitution: the
//! absolute numbers are tuned, the relative claims are not (see DESIGN.md).
//!
//! Run: `cargo run --release -p lookhd-bench --bin calibration`

use hdc::classifier::{HdcClassifier, HdcConfig};
use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "App",
        "baseline meas",
        "baseline paper",
        "lookhd meas",
        "lookhd uncompressed",
        "lookhd paper",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let base_cfg = HdcConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(ctx.retrain_epochs());
        let base = HdcClassifier::fit(&base_cfg, &data.train.features, &data.train.labels)
            .expect("baseline training failed");
        let base_acc = base
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        let look_cfg = LookHdConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_lookhd)
            .with_retrain_epochs(ctx.retrain_epochs());
        let look = LookHdClassifier::fit(&look_cfg, &data.train.features, &data.train.labels)
            .expect("LookHD training failed");
        let look_acc = look
            .evaluate(&data.test.features, &data.test.labels)
            .expect("scoring failed");
        let unc_acc = data
            .test
            .features
            .iter()
            .zip(&data.test.labels)
            .filter(|(x, &y)| look.predict_uncompressed(x).expect("predict failed") == y)
            .count() as f64
            / data.test.len() as f64;
        table.row([
            profile.name.to_owned(),
            pct(base_acc),
            pct(profile.paper_accuracy_baseline),
            pct(look_acc),
            pct(unc_acc),
            pct(profile.paper_accuracy_lookhd_d2000),
        ]);
    }
    println!(
        "Calibration: measured vs paper accuracies (D = {})\n",
        ctx.dim()
    );
    table.print();
}
