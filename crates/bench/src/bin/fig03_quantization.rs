//! Fig. 3 — SPEECH feature-value distribution and the linear vs equalized
//! `q = 4` quantization boundaries.
//!
//! Reproduces both panels: (a) the skewed distribution of feature values
//! (5% sample, as in the paper), rendered as an ASCII histogram; (b) the
//! boundaries each rule picks and the per-level occupancy they induce —
//! linear bins are wildly unbalanced, equalized bins are near-uniform.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig03_quantization`

use hdc::quantize::{Quantization, Quantizer};
use lookhd_bench::context::Context;
use lookhd_bench::table::{bar, pct, Table};
use lookhd_datasets::apps::App;

fn main() {
    let ctx = Context::from_env();
    let profile = App::Speech.profile();
    let data = ctx.dataset(&profile);
    // 5% sample of training feature values, as in the paper.
    let all: Vec<f64> = data.train_values();
    let sample: Vec<f64> = all.iter().step_by(20).copied().collect();

    println!(
        "Fig. 3a: SPEECH feature-value distribution (5% sample, {} values)",
        sample.len()
    );
    let min = sample.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let bins = 20usize;
    let mut hist = vec![0usize; bins];
    for &v in &sample {
        let b = (((v - min) / (max - min)) * bins as f64) as usize;
        hist[b.min(bins - 1)] += 1;
    }
    let peak = *hist.iter().max().unwrap_or(&1) as f64;
    for (i, &count) in hist.iter().enumerate() {
        let lo = min + (max - min) * i as f64 / bins as f64;
        println!("{lo:>8.3} | {:<40} {count}", bar(count as f64, peak, 40));
    }

    for (name, kind) in [
        ("linear", Quantization::Linear),
        ("equalized", Quantization::Equalized),
    ] {
        let quantizer = Quantizer::fit(kind, &all, 4).expect("quantizer fit failed");
        println!(
            "\nFig. 3b ({name} q=4): boundaries {:?}",
            rounded(quantizer.boundaries())
        );
        let occupancy = quantizer.occupancy(&all);
        let total: usize = occupancy.iter().sum();
        let mut table = Table::new(["level", "values", "share"]);
        for (level, &count) in occupancy.iter().enumerate() {
            table.row([
                format!("L{level}"),
                count.to_string(),
                pct(count as f64 / total as f64),
            ]);
        }
        table.print();
    }
    println!(
        "\nPaper: feature values are non-uniform, so linear levels are rarely used\n\
         while equalized levels receive a similar number of values each."
    );
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| (v * 1000.0).round() / 1000.0)
        .collect()
}
