//! Extension — thread scaling of the sharded execution engine.
//!
//! Trains LookHD on the SPEECH profile (the paper's largest `n × k`
//! workload) at 1, 2, and 4 engine threads and times counter training and
//! compressed batch inference. The engine's determinism contract
//! guarantees bit-identical models and predictions at every thread count
//! (asserted here), so the only thing that may change is wall-clock time.
//!
//! Note: `--threads` parallelism is *host* wall-clock only — it is
//! orthogonal to the `lookhd-hwsim` FPGA/ARM/GPU cost models, which
//! describe the paper's hardware, not this machine.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ext_engine_scaling`
//! (set `LOOKHD_FAST=1` for a quick smoke run).

use std::time::Instant;

use hdc::{Classifier, FitClassifier};
use lookhd::classifier::{LookHdClassifier, LookHdConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{ratio, Table};
use lookhd_datasets::apps::App;
use lookhd_engine::EngineConfig;

const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let ctx = Context::from_env();
    let profile = App::Speech.profile();
    let data = ctx.dataset(&profile);
    let config = LookHdConfig::new()
        .with_dim(ctx.dim())
        .with_q(profile.paper_q_lookhd)
        .with_retrain_epochs(0);

    let mut table = Table::new([
        "threads",
        "train wall (ms)",
        "train speedup",
        "counter phase (samples/s)",
        "infer wall (ms)",
        "infer speedup",
    ]);
    let mut reference: Option<(LookHdClassifier, Vec<usize>, f64, f64)> = None;
    for threads in THREADS {
        let cfg = config
            .clone()
            .with_engine(EngineConfig::new().with_threads(threads));
        let t0 = Instant::now();
        let clf = LookHdClassifier::fit(&cfg, &data.train.features, &data.train.labels)
            .expect("training failed");
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;
        let counter_rate = clf.fit_stats().items_per_sec();

        let t1 = Instant::now();
        let preds = clf
            .predict_batch(&data.test.features)
            .expect("inference failed");
        let infer_ms = t1.elapsed().as_secs_f64() * 1e3;

        let (train_base, infer_base) = match &reference {
            None => {
                reference = Some((clf.clone(), preds.clone(), train_ms, infer_ms));
                (train_ms, infer_ms)
            }
            Some((serial, serial_preds, tb, ib)) => {
                // The determinism contract, checked on every run.
                assert_eq!(
                    clf.model().classes(),
                    serial.model().classes(),
                    "{threads}-thread training diverged from serial"
                );
                assert_eq!(&preds, serial_preds, "{threads}-thread inference diverged");
                (*tb, *ib)
            }
        };
        table.row([
            threads.to_string(),
            format!("{train_ms:.1}"),
            ratio(train_base / train_ms),
            format!("{counter_rate:.0}"),
            format!("{infer_ms:.1}"),
            ratio(infer_base / infer_ms),
        ]);
    }
    println!(
        "Extension: engine thread scaling on SPEECH (D = {}, {} train / {} test samples)\n\
         host parallelism: {} core(s) available\n",
        ctx.dim(),
        data.train.len(),
        data.test.len(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    table.print();
    println!(
        "\nModels and predictions are bit-identical at every thread count (asserted\n\
         above); --threads changes host wall-clock only and is orthogonal to the\n\
         hwsim hardware cost models. Speedups are relative to threads = 1 and are\n\
         bounded by the host core count."
    );
    ctx.write_metrics();
}
