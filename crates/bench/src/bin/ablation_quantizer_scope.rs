//! Ablation — global vs per-feature quantization (extension).
//!
//! The paper fits one quantizer over *all* training feature values
//! (§II-A: "we find the maximum and minimum feature values"). This
//! ablation compares that global rule against independent per-feature
//! quantizers on the baseline encoder, for both linear and equalized
//! boundaries. On homogeneous sensor features the global rule suffices;
//! per-feature fitting matters when column scales diverge.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ablation_quantizer_scope`

use hdc::encoding::{Encode, PermutationEncoder};
use hdc::levels::{LevelMemory, LevelScheme};
use hdc::quantize::{FeatureQuantizers, Quantization, Quantizer};
use hdc::train::{initial_fit, retrain};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ctx = Context::from_env();
    let epochs = if ctx.fast { 1 } else { 3 };
    let mut table = Table::new([
        "App",
        "global linear",
        "per-feature linear",
        "global equalized",
        "per-feature equalized",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let data = ctx.dataset(&profile);
        let q = profile.paper_q_lookhd;
        let mut row = vec![profile.name.to_owned()];
        for kind in [Quantization::Linear, Quantization::Equalized] {
            for per_feature in [false, true] {
                let mut rng = StdRng::seed_from_u64(55);
                let levels =
                    LevelMemory::generate(ctx.dim(), q, LevelScheme::RandomFlips, &mut rng)
                        .expect("level generation failed");
                let encoder = if per_feature {
                    let fq = FeatureQuantizers::fit(kind, &data.train.features, q)
                        .expect("quantizer fit failed");
                    PermutationEncoder::with_feature_quantizers(levels, fq)
                        .expect("encoder build failed")
                } else {
                    let pooled = data.train_values();
                    let quantizer = Quantizer::fit(kind, &pooled, q).expect("quantizer fit failed");
                    PermutationEncoder::new(levels, quantizer, profile.n_features)
                        .expect("encoder build failed")
                };
                let encoded = encoder
                    .encode_batch(&data.train.features)
                    .expect("encoding failed");
                let mut model = initial_fit(&encoded, &data.train.labels, profile.n_classes)
                    .expect("training failed");
                retrain(&mut model, &encoded, &data.train.labels, epochs)
                    .expect("retraining failed");
                let correct = data
                    .test
                    .features
                    .iter()
                    .zip(&data.test.labels)
                    .filter(|(x, &y)| {
                        let h = encoder.encode(x).expect("encoding failed");
                        model.predict(&h).expect("predict failed") == y
                    })
                    .count();
                row.push(pct(correct as f64 / data.test.len() as f64));
            }
        }
        // Column order built as [lin-global, lin-perfeat, eq-global, eq-perfeat].
        table.row(row);
    }
    println!(
        "Ablation: global vs per-feature quantization, baseline encoder\n\
         (q = per-app LookHD q, D = {}, {} retraining epochs)\n",
        ctx.dim(),
        epochs
    );
    table.print();
    println!(
        "\nPer-feature fitting rescues *linear* quantization on skewed data (each\n\
         column's range is resolved), while *equalized* quantization is already\n\
         scale-insensitive, so the paper's global rule suffices there — which is\n\
         exactly why LookHD pairs small q with equalization."
    );
}
