//! Fig. 2 — breakdown of encoding / training / associative-search time in
//! the baseline HDC, per application.
//!
//! Three views are reported:
//! * the share of per-sample work under a **scalar** implementation model
//!   (what this repo's Rust code does — matches the wall-clock column);
//! * the share under the **paper-style** implementation model: bit-parallel
//!   (SIMD/NEON) encoding of binary level hypervectors and a full-cosine
//!   floating-point associative search streaming the model from DRAM;
//! * wall-clock measurements of this repo's scalar implementation.
//!
//! The paper's headline: encoding dominates training (~80%, up to 90% for
//! SPEECH) and associative search dominates inference (~83%). The training
//! claim reproduces under both models; the inference claim requires the
//! paper-style cost asymmetry (cheap bit-parallel encode vs expensive
//! float/DRAM search) and holds for many-class apps — see EXPERIMENTS.md
//! for the small-k caveat.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig02_breakdown`

use std::time::Instant;

use hdc::classifier::{HdcClassifier, HdcConfig};
use hdc::FitClassifier;
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, Table};
use lookhd_datasets::apps::App;

/// Paper-style implementation costs, in A53 cycles.
struct PaperStyle {
    n: f64,
    q: f64,
    d: f64,
    k: f64,
}

impl PaperStyle {
    /// Encoding: quantize (n·q compares) + bundle n rotated binary level
    /// hypervectors with 8-lane SIMD integer adds.
    fn encode_cycles(&self) -> f64 {
        self.n * self.q + self.n * self.d / 8.0
    }

    /// Per-sample training add: one D-wide bundle (SIMD).
    fn bundle_cycles(&self) -> f64 {
        self.d / 8.0
    }

    /// Full-cosine search: three dot products per class in scalar VFP
    /// (~5 cycles/MAC) with the int32 model streamed from DRAM.
    fn search_cycles(&self) -> f64 {
        self.k * (3.0 * self.d * 5.0 + 40.0)
    }
}

fn main() {
    let ctx = Context::from_env();
    let mut table = Table::new([
        "App",
        "train enc (scalar)",
        "train enc (paper-style)",
        "train enc (wall)",
        "infer search (scalar)",
        "infer search (paper-style)",
        "infer search (wall)",
    ]);
    for app in App::ALL {
        let profile = app.profile();
        let (n, q, d, k) = (
            profile.n_features as f64,
            profile.paper_q_baseline as f64,
            ctx.dim() as f64,
            profile.n_classes as f64,
        );
        // Scalar model: one cycle per add, three per multiply.
        let scalar_encode = n * q * 2.0 + n * d;
        let scalar_bundle = d;
        let scalar_search = k * d * (3.0 + 1.0);
        let scalar_train_frac = scalar_encode / (scalar_encode + scalar_bundle);
        let scalar_infer_frac = scalar_search / (scalar_search + scalar_encode);
        // Paper-style model.
        let ps = PaperStyle { n, q, d, k };
        let ps_train_frac = ps.encode_cycles() / (ps.encode_cycles() + ps.bundle_cycles());
        let ps_infer_frac = ps.search_cycles() / (ps.search_cycles() + ps.encode_cycles());

        // Wall-clock split of this repo's scalar implementation.
        let data = ctx.dataset(&profile);
        let config = HdcConfig::new()
            .with_dim(ctx.dim())
            .with_q(profile.paper_q_baseline)
            .with_retrain_epochs(0);
        let clf = HdcClassifier::fit(&config, &data.train.features, &data.train.labels)
            .expect("training failed");
        let sample = &data.train.features[0];
        let reps = ctx.scaled(50);
        let t0 = Instant::now();
        let mut encoded = clf.encode(sample).expect("encode failed");
        for _ in 1..reps {
            encoded = clf.encode(sample).expect("encode failed");
        }
        let t_encode = t0.elapsed().as_secs_f64() / reps as f64;
        let t0 = Instant::now();
        let mut acc = hdc::hv::DenseHv::zeros(ctx.dim());
        for _ in 0..reps {
            acc.add_assign_hv(&encoded);
        }
        let t_bundle = t0.elapsed().as_secs_f64() / reps as f64;
        std::hint::black_box(&acc);
        let t0 = Instant::now();
        let mut pred = 0;
        for _ in 0..reps {
            pred = clf.model().predict(&encoded).expect("predict failed");
        }
        let t_search = t0.elapsed().as_secs_f64() / reps as f64;
        std::hint::black_box(pred);

        table.row([
            profile.name.to_owned(),
            pct(scalar_train_frac),
            pct(ps_train_frac),
            pct(t_encode / (t_encode + t_bundle)),
            pct(scalar_infer_frac),
            pct(ps_infer_frac),
            pct(t_search / (t_search + t_encode)),
        ]);
    }
    println!(
        "Fig. 2: baseline HDC execution-time breakdown (D = {})\n\
         train columns: encoding share of per-sample training work\n\
         infer columns: associative-search share of per-query work",
        ctx.dim()
    );
    table.print();
    println!(
        "\nPaper: encoding ~80% of training (90% for SPEECH); search ~83% of inference.\n\
         Training-side dominance reproduces under every model. Inference-side\n\
         dominance needs the paper-style asymmetry (bit-parallel encode, float\n\
         cosine search) and scales with k: strong for SPEECH (k = 26), absent for\n\
         FACE (k = 2), where encoding n >> k work necessarily dominates."
    );
}
