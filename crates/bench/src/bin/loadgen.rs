//! `loadgen` — multiplexed load generator for `lookhd serve`.
//!
//! Drives up to thousands of concurrent connections against a running
//! server from a single thread: every socket is nonblocking and
//! multiplexed over a [`netpoll::Poller`], with pipelined requests,
//! optional open-loop rate pacing, and a per-request response deadline.
//! Measures per-request latency and writes a percentile report under
//! `results/` — the serving-path analogue of the paper's throughput
//! experiments.
//!
//! ```text
//! cargo run --release -p lookhd-bench --bin loadgen -- \
//!     --addr 127.0.0.1:4100 --data queries.csv \
//!     [--connections 4 --requests 100 --pipeline 1 --rate 0
//!      --deadline-ms 30000 --curve 4,64,256,1024
//!      --out results/serve_loadgen.txt --trace --admin 127.0.0.1:4101
//!      --bench-out BENCH_serve.json --shutdown]
//! ```
//!
//! * `--connections N` — concurrent connections (one curve point);
//! * `--curve A,B,C` — sweep several connection counts in one run and
//!   record a throughput/latency-vs-connections curve;
//! * `--requests N` — requests per connection (per curve point);
//! * `--pipeline D` — max outstanding requests per connection (1 =
//!   closed loop per connection);
//! * `--rate R` — open-loop aggregate issue rate in requests/second
//!   (0 = as fast as the pipeline window allows);
//! * `--deadline-ms T` — a response slower than this counts as dropped;
//!   the run fails if any in-deadline request is dropped.
//!
//! Feature vectors come from `--data` (label-free CSV rows, reused
//! round-robin). `--shutdown` sends a graceful-shutdown frame after the
//! burst, which is how `scripts/ci.sh` stops its smoke-test server.
//!
//! * `--feedback` — issue `LHF1` feedback frames instead of predicts:
//!   `--data` rows must carry labels in the final column (the `train`
//!   CSV shape) and every response must be a `FeedbackAck`. The issue
//!   order is deterministic (row `(conn + seq) % rows` per connection),
//!   so a scraper can compute the exact expected per-class
//!   `train.observed.<class>` counters;
//! * `--refresh` — after the burst, send one refresh frame and require
//!   a `RefreshAck` (prints the new model version). Combined with
//!   `--feedback` this is the hot-swap smoke driver in `scripts/ci.sh`.
//!
//! `--trace` sends every request as a v2 frame with a distinct trace id
//! (`request id + 1`) and fails the run if a response echoes the wrong
//! id — the client half of the end-to-end tracing contract. `--admin`
//! scrapes the server's live `/metrics.json` after the burst and reports
//! server-side queue-wait percentiles next to the client-side latency.
//! `--bench-out` additionally writes a schema-versioned machine-readable
//! summary (schema v3: workload shape, host provenance, and a `runs`
//! array — one entry per server configuration, each holding a
//! throughput/latency curve over connection counts).
//!
//! * `--reactors N` — provenance label only: records how many reactor
//!   threads the *server* was started with in the bench JSON run entry
//!   (loadgen cannot observe this; the harness passes it through);
//! * `--bench-append` — splice this run into an existing schema-v3
//!   `--bench-out` file's `runs` array instead of overwriting, so a
//!   harness can sweep `--reactors 1,2,4` into one curve-of-curves.
//!
//! The `host` block records both `cores` and `loadgen_shares_host:
//! true`: the generator runs on the same machine as the server, so
//! throughput numbers are co-located measurements, not isolated ones.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lookhd_serve::wire::{decode_response, encode_request, FrameDecoder, Request, Response};
use lookhd_serve::Client;
use netpoll::{is_would_block, raw_fd, Interest, Poller};

/// Upper bound on one point's run, relative to the response deadline:
/// after the last request is issued, the server gets one full deadline
/// to answer; a stall beyond that counts the remainder as dropped.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Ceil-rank percentile over an ascending-sorted sample: the smallest
/// sample ≥ the requested fraction of the distribution. Nearest-rank
/// rounding under-reports tail percentiles on small counts (with n=100,
/// `round(0.99·99) = 98` returns the 99th-largest sample instead of the
/// 100th), so the rank is always rounded *up*.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).ceil() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Pulls `"<field>": <uint>` out of a snapshot JSON document, scanning
/// forward from the first occurrence of `anchor`. The snapshot format is
/// deterministic (see `obs::Snapshot::to_json`), so a string scan is
/// enough — the bench crate deliberately has no JSON parser.
fn json_field_u64(doc: &str, anchor: &str, field: &str) -> Option<u64> {
    let from = doc.find(anchor)? + anchor.len();
    let rest = &doc[from..];
    let needle = format!("\"{field}\": ");
    let at = rest.find(&needle)? + needle.len();
    let digits: String = rest[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn fail(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(1);
}

/// Minimal `--flag value` / `--switch` parser (the bench crate stays
/// dependency-free; mirrors the CLI's conventions).
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse() -> Self {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let Some(name) = tokens[i].strip_prefix("--") else {
                fail(&format!("unexpected positional argument `{}`", tokens[i]));
            };
            match tokens.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((name.to_owned(), value.clone()));
                    i += 2;
                }
                _ => {
                    switches.push(name.to_owned());
                    i += 1;
                }
            }
        }
        Self { pairs, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad value for --{name}: `{raw}`"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// One connection's client-side state in the multiplexed loop.
struct Slot {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Request id → send instant, matched when the response arrives.
    inflight: HashMap<u64, Instant>,
    /// Requests encoded so far (bounded by the per-connection quota).
    queued: usize,
    interest: Interest,
    dead: bool,
}

impl Slot {
    fn backlog(&self) -> usize {
        self.outbuf.len() - self.outpos
    }
}

/// Everything measured at one connection count.
struct PointReport {
    connections: usize,
    ok: usize,
    errors: usize,
    mismatches: usize,
    /// Requests with no response inside the deadline (late responses
    /// and requests still unanswered when the point gave up).
    dropped: usize,
    wall: Duration,
    /// Ascending in-deadline latencies.
    latencies_ns: Vec<u64>,
}

impl PointReport {
    fn throughput_rps(&self) -> f64 {
        self.ok as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn mean_ns(&self) -> u64 {
        if self.latencies_ns.is_empty() {
            0
        } else {
            self.latencies_ns.iter().sum::<u64>() / self.latencies_ns.len() as u64
        }
    }
}

struct Workload<'a> {
    addr: &'a str,
    rows: &'a [Vec<f64>],
    /// Per-row class labels: `Some` switches the run to feedback
    /// traffic (`LHF1` frames, `FeedbackAck` responses).
    labels: Option<&'a [u32]>,
    requests_per_conn: usize,
    pipeline: usize,
    rate_rps: u64,
    deadline: Duration,
    traced: bool,
}

/// Runs one curve point: `connections` multiplexed clients, each issuing
/// its quota with up to `pipeline` outstanding, paced to `rate_rps`
/// aggregate when nonzero.
fn run_point(w: &Workload<'_>, connections: usize) -> PointReport {
    let poller = Poller::new().unwrap_or_else(|e| fail(&format!("creating poller: {e}")));
    let mut slots: Vec<Slot> = Vec::with_capacity(connections);
    for c in 0..connections {
        // Brief retries absorb SYN-backlog overflow when thousands of
        // connects race the server's accept loop.
        let mut stream = None;
        for attempt in 0..50 {
            match TcpStream::connect(w.addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) if attempt == 49 => fail(&format!("connecting {} (conn {c}): {e}", w.addr)),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let stream = stream.unwrap();
        let _ = stream.set_nodelay(true);
        stream
            .set_nonblocking(true)
            .unwrap_or_else(|e| fail(&format!("nonblocking conn {c}: {e}")));
        poller
            .register(raw_fd(&stream), c as u64, Interest::READABLE)
            .unwrap_or_else(|e| fail(&format!("registering conn {c}: {e}")));
        slots.push(Slot {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            outpos: 0,
            inflight: HashMap::new(),
            queued: 0,
            interest: Interest::READABLE,
            dead: false,
        });
    }

    let total = connections * w.requests_per_conn;
    let mut report = PointReport {
        connections,
        ok: 0,
        errors: 0,
        mismatches: 0,
        dropped: 0,
        wall: Duration::ZERO,
        latencies_ns: Vec::with_capacity(total),
    };
    let started = Instant::now();
    let mut issued_total = 0usize;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events = Vec::new();
    let mut frames = Vec::new();
    let mut last_progress = Instant::now();

    loop {
        let accounted = report.ok + report.errors + report.dropped;
        if accounted >= total {
            break;
        }
        // Watchdog: no response for a full deadline → everything still
        // outstanding (or never issued) is dropped.
        if last_progress.elapsed() > w.deadline + POLL_TICK {
            report.dropped = total - report.ok - report.errors;
            break;
        }

        // Issue phase: rate budget, then fill each connection's window.
        let mut budget = if w.rate_rps == 0 {
            usize::MAX
        } else {
            let allowed = (started.elapsed().as_secs_f64() * w.rate_rps as f64) as usize;
            allowed.saturating_sub(issued_total)
        };
        for (c, slot) in slots.iter_mut().enumerate() {
            if slot.dead {
                continue;
            }
            while budget > 0
                && slot.queued < w.requests_per_conn
                && slot.inflight.len() < w.pipeline
            {
                let id = (c * w.requests_per_conn + slot.queued) as u64;
                // Trace ids are request id + 1: distinct per request,
                // never the reserved 0.
                let trace_id = if w.traced { id + 1 } else { 0 };
                let row_idx = (c + slot.queued) % w.rows.len();
                let row = &w.rows[row_idx];
                let request = match w.labels {
                    Some(labels) => Request::Feedback {
                        id,
                        trace_id,
                        label: labels[row_idx],
                        features: row.clone(),
                    },
                    None => Request::Predict {
                        id,
                        trace_id,
                        features: row.clone(),
                    },
                };
                let body = encode_request(&request);
                slot.outbuf
                    .extend_from_slice(&u32::try_from(body.len()).unwrap().to_le_bytes());
                slot.outbuf.extend_from_slice(&body);
                slot.inflight.insert(id, Instant::now());
                slot.queued += 1;
                issued_total += 1;
                budget -= 1;
            }
        }

        // Flush phase: write every backlog until it drains or blocks.
        for (c, slot) in slots.iter_mut().enumerate() {
            if slot.dead || slot.backlog() == 0 {
                continue;
            }
            loop {
                match slot.stream.write(&slot.outbuf[slot.outpos..]) {
                    Ok(0) => {
                        slot.dead = true;
                        break;
                    }
                    Ok(n) => {
                        slot.outpos += n;
                        if slot.backlog() == 0 {
                            slot.outbuf.clear();
                            slot.outpos = 0;
                            break;
                        }
                    }
                    Err(e) if is_would_block(&e) => break,
                    Err(_) => {
                        slot.dead = true;
                        break;
                    }
                }
            }
            let want = if slot.backlog() > 0 {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            if !slot.dead && (want.is_writable() != slot.interest.is_writable()) {
                let _ = poller.modify(raw_fd(&slot.stream), c as u64, want);
                slot.interest = want;
            }
        }

        // Wait: short tick so rate pacing and the watchdog stay live.
        poller
            .wait(&mut events, Some(POLL_TICK))
            .unwrap_or_else(|e| fail(&format!("poll: {e}")));
        for event in &events {
            let c = event.token as usize;
            if c >= slots.len() {
                continue;
            }
            let slot = &mut slots[c];
            if slot.dead {
                continue;
            }
            if event.readable || event.hangup {
                loop {
                    match slot.stream.read(&mut scratch) {
                        Ok(0) => {
                            slot.dead = true;
                            break;
                        }
                        Ok(n) => {
                            frames.clear();
                            if slot.decoder.feed(&scratch[..n], &mut frames).is_err() {
                                slot.dead = true;
                            }
                            for frame in frames.drain(..) {
                                match decode_response(&frame) {
                                    Ok(
                                        Response::Predict {
                                            id,
                                            trace_id: got_trace,
                                            ..
                                        }
                                        | Response::FeedbackAck {
                                            id,
                                            trace_id: got_trace,
                                            ..
                                        },
                                    ) => match slot.inflight.remove(&id) {
                                        Some(sent) => {
                                            let took = sent.elapsed();
                                            if took > w.deadline {
                                                report.dropped += 1;
                                            } else {
                                                report.latencies_ns.push(took.as_nanos() as u64);
                                                report.ok += 1;
                                            }
                                            let want_trace = if w.traced { id + 1 } else { 0 };
                                            if got_trace != want_trace {
                                                report.mismatches += 1;
                                            }
                                            last_progress = Instant::now();
                                        }
                                        None => report.mismatches += 1,
                                    },
                                    Ok(Response::Error { id, .. }) => {
                                        if slot.inflight.remove(&id).is_some() {
                                            report.errors += 1;
                                            last_progress = Instant::now();
                                        }
                                    }
                                    Ok(_) => report.errors += 1,
                                    Err(e) => {
                                        eprintln!("loadgen: conn {c}: bad response: {e}");
                                        slot.dead = true;
                                    }
                                }
                            }
                        }
                        Err(e) if is_would_block(&e) => break,
                        Err(_) => {
                            slot.dead = true;
                            break;
                        }
                    }
                    if slot.dead {
                        break;
                    }
                }
            } else if event.writable && slot.backlog() > 0 {
                // Next outer iteration's flush phase retries the write;
                // nothing to do here beyond waking up.
            }
            if slot.dead {
                // A closed connection answers nothing further: its
                // outstanding and unissued requests are all lost.
                let lost = slot.inflight.len() + (w.requests_per_conn - slot.queued);
                report.errors += lost;
                issued_total += w.requests_per_conn - slot.queued;
                slot.queued = w.requests_per_conn;
                slot.inflight.clear();
                let _ = poller.deregister(raw_fd(&slot.stream));
            }
        }
    }

    report.wall = started.elapsed();
    report.latencies_ns.sort_unstable();
    report
}

fn main() {
    let flags = Flags::parse();
    let addr = flags
        .get("addr")
        .unwrap_or_else(|| fail("--addr HOST:PORT is required"))
        .to_owned();
    let connections = flags.get_or("connections", 4usize).max(1);
    let requests = flags.get_or("requests", 100usize).max(1);
    let pipeline = flags.get_or("pipeline", 1usize).max(1);
    let rate_rps = flags.get_or("rate", 0u64);
    let deadline = Duration::from_millis(flags.get_or("deadline-ms", 30_000u64).max(1));
    let traced = flags.switch("trace");
    let feedback = flags.switch("feedback");
    let refresh = flags.switch("refresh");
    let reactors_label = flags.get_or("reactors", 1usize).max(1);
    let admin_addr = flags.get("admin").map(str::to_owned);
    let bench_out = flags.get("bench-out").map(str::to_owned);
    let bench_append = flags.switch("bench-append");
    let out_path = flags
        .get("out")
        .unwrap_or("results/serve_loadgen.txt")
        .to_owned();
    let curve: Vec<usize> = match flags.get("curve") {
        None => vec![connections],
        Some(raw) => raw
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| fail(&format!("bad --curve entry `{t}`")))
            })
            .collect(),
    };
    if curve.is_empty() {
        fail("--curve needs at least one connection count");
    }

    // Query rows: CSV if given, else a deterministic synthetic ramp.
    // Feedback traffic needs labels, so it loads the labelled CSV shape
    // (or labels the synthetic ramp round-robin over 3 classes).
    let (rows, labels): (Vec<Vec<f64>>, Option<Vec<u32>>) = match (flags.get("data"), feedback) {
        (Some(path), false) => (
            lookhd_datasets::csv::load_features(path)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}"))),
            None,
        ),
        (Some(path), true) => {
            let split = lookhd_datasets::csv::load_split(path)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            let labels = split
                .labels
                .iter()
                .map(|&y| u32::try_from(y).unwrap_or_else(|_| fail("label exceeds u32")))
                .collect();
            (split.features, Some(labels))
        }
        (None, _) => {
            let dim = flags.get_or("features", 4usize).max(1);
            let rows: Vec<Vec<f64>> = (0..64)
                .map(|i| (0..dim).map(|j| ((i + j) % 10) as f64 / 10.0).collect())
                .collect();
            let labels = feedback.then(|| (0..rows.len() as u32).map(|i| i % 3).collect());
            (rows, labels)
        }
    };
    if rows.is_empty() {
        fail("no query rows");
    }

    let workload = Workload {
        addr: &addr,
        rows: &rows,
        labels: labels.as_deref(),
        requests_per_conn: requests,
        pipeline,
        rate_rps,
        deadline,
        traced,
    };
    let points: Vec<PointReport> = curve.iter().map(|&n| run_point(&workload, n)).collect();

    // The refresh round-trips *before* the admin scrape so the scraped
    // `model.version` counter reflects the swap this run triggered.
    let refreshed_version: Option<u64> = refresh.then(|| {
        let mut client = Client::connect(&addr)
            .unwrap_or_else(|e| fail(&format!("connecting {addr} for refresh: {e}")));
        match client.refresh(u64::MAX - 1) {
            Ok(Response::RefreshAck { version, .. }) => version,
            Ok(other) => fail(&format!("unexpected refresh acknowledgement: {other:?}")),
            Err(e) => fail(&format!("refresh failed: {e}")),
        }
    });

    // Scrape the live admin endpoint *before* any shutdown frame: the
    // admin listener stops when the server drains.
    let server_queue_wait: Option<(u64, u64, u64)> = admin_addr.as_deref().map(|admin| {
        let doc = lookhd_serve::http_get(admin, "/metrics.json")
            .unwrap_or_else(|e| fail(&format!("scraping {admin}/metrics.json: {e}")));
        let anchor = "\"path\": \"serve/queue_wait\"";
        let get = |field| {
            json_field_u64(&doc, anchor, field)
                .unwrap_or_else(|| fail(&format!("no {field} for serve/queue_wait in {admin}")))
        };
        (get("p50_ns"), get("p95_ns"), get("p99_ns"))
    });

    // Health is part of the scrape: a 503 here is signal (draining,
    // sustained shed, or SLO burn), not a transport failure, so probe
    // with the status-preserving GET.
    let server_health: Option<(u16, String)> = admin_addr.as_deref().map(|admin| {
        let (status, body) = lookhd_serve::http_get_status(admin, "/healthz")
            .unwrap_or_else(|e| fail(&format!("probing {admin}/healthz: {e}")));
        (status, body.trim().to_string())
    });

    if flags.switch("shutdown") {
        let mut client = Client::connect(&addr)
            .unwrap_or_else(|e| fail(&format!("connecting {addr} for shutdown: {e}")));
        match client.shutdown_server(u64::MAX) {
            Ok(Response::Pong { .. }) => {}
            other => eprintln!("loadgen: unexpected shutdown acknowledgement: {other:?}"),
        }
    }

    let mut report = String::new();
    report.push_str("# loadgen — lookhd-serve latency under concurrent load\n");
    report.push_str(&format!(
        "addr {addr}; {requests} {} request(s)/connection, pipeline {pipeline}, \
         rate {}, deadline {} ms, server reactors {reactors_label}\n",
        if feedback { "feedback" } else { "predict" },
        if rate_rps == 0 {
            "unpaced".to_owned()
        } else {
            format!("{rate_rps} req/s")
        },
        deadline.as_millis(),
    ));
    report.push_str(
        "note: loadgen shares the host with the server — throughput is a \
         co-located measurement, not an isolated one\n",
    );
    for p in &points {
        let total = p.connections * requests;
        report.push_str(&format!(
            "connections {}: ok {}/{}, errors {}, dropped {}, id mismatches {}, \
             wall {:.1} ms, throughput {:.0} req/s\n",
            p.connections,
            p.ok,
            total,
            p.errors,
            p.dropped,
            p.mismatches,
            p.wall.as_secs_f64() * 1e3,
            p.throughput_rps(),
        ));
        report.push_str(&format!(
            "latency ms: mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}\n",
            ms(p.mean_ns()),
            ms(percentile(&p.latencies_ns, 0.50)),
            ms(percentile(&p.latencies_ns, 0.90)),
            ms(percentile(&p.latencies_ns, 0.99)),
            ms(p.latencies_ns.last().copied().unwrap_or(0)),
        ));
    }
    if traced {
        report.push_str("trace ids: propagated and echo-checked on every request\n");
    }
    if let Some(version) = refreshed_version {
        report.push_str(&format!(
            "model refresh: acknowledged, now serving version {version}\n"
        ));
    }
    if let Some((p50, p95, p99)) = server_queue_wait {
        report.push_str(&format!(
            "server queue wait ms (from /metrics.json): p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            ms(p50),
            ms(p95),
            ms(p99),
        ));
    }
    if let Some((status, body)) = &server_health {
        report.push_str(&format!("server health (from /healthz): {status} {body}\n"));
    }
    print!("{report}");

    if let Some(bench_path) = &bench_out {
        let n_features = rows.first().map_or(0, Vec::len);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

        // One `runs` entry for this invocation: the server's reactor
        // count (a pass-through label) plus the measured curve.
        let mut run = String::new();
        run.push_str(&format!(
            "    {{\"reactors\": {reactors_label}, \"curve\": [\n"
        ));
        for (i, p) in points.iter().enumerate() {
            run.push_str(&format!(
                "      {{\"connections\": {}, \"ok\": {}, \"errors\": {}, \"dropped\": {}, \
                 \"id_mismatches\": {}, \"throughput_rps\": {:.1}, \
                 \"latency_ns\": {{\"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"max\": {}}}}}{}\n",
                p.connections,
                p.ok,
                p.errors,
                p.dropped,
                p.mismatches,
                p.throughput_rps(),
                p.mean_ns(),
                percentile(&p.latencies_ns, 0.50),
                percentile(&p.latencies_ns, 0.90),
                percentile(&p.latencies_ns, 0.99),
                p.latencies_ns.last().copied().unwrap_or(0),
                if i + 1 == points.len() { "" } else { "," },
            ));
        }
        run.push_str("    ]");
        if let Some((p50, p95, p99)) = server_queue_wait {
            run.push_str(&format!(
                ", \"server_queue_wait_ns\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}"
            ));
        }
        run.push_str("}\n");

        // The document always ends with the fixed tail below, so append
        // mode can splice a new run in by string surgery — the bench
        // crate deliberately has no JSON parser.
        const TAIL: &str = "  ]\n}\n";
        let existing = bench_append
            .then(|| std::fs::read_to_string(bench_path).ok())
            .flatten();
        let json = match existing {
            Some(doc) => {
                if !doc.contains("\"schema_version\": 3") {
                    fail(&format!(
                        "--bench-append: {bench_path} is not a schema-v3 document"
                    ));
                }
                let Some(head) = doc.strip_suffix(TAIL) else {
                    fail(&format!(
                        "--bench-append: {bench_path} does not end with the v3 tail"
                    ));
                };
                // Closing `}\n` of the previous run entry gains a comma.
                let head = head.strip_suffix('\n').unwrap_or(head).to_owned();
                format!("{head},\n{run}{TAIL}")
            }
            None => {
                let mut json = String::new();
                json.push_str("{\n");
                json.push_str("  \"schema_version\": 3,\n");
                json.push_str("  \"bench\": \"serve_loadgen\",\n");
                json.push_str(&format!(
                    "  \"workload\": {{\"requests_per_connection\": {requests}, \
                     \"pipeline\": {pipeline}, \"rate_rps\": {rate_rps}, \"deadline_ms\": {}, \
                     \"n_features\": {n_features}, \"traced\": {traced}}},\n",
                    deadline.as_millis(),
                ));
                json.push_str(&format!(
                    "  \"host\": {{\"cores\": {cores}, \"loadgen_shares_host\": true}},\n"
                ));
                json.push_str("  \"runs\": [\n");
                json.push_str(&run);
                json.push_str(TAIL);
                json
            }
        };
        match std::fs::write(bench_path, &json) {
            Ok(()) => println!("wrote {bench_path}"),
            Err(e) => fail(&format!("writing {bench_path}: {e}")),
        }
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => fail(&format!("writing {out_path}: {e}")),
    }
    let mismatches: usize = points.iter().map(|p| p.mismatches).sum();
    let dropped: usize = points.iter().map(|p| p.dropped).sum();
    if mismatches > 0 {
        fail("response ids did not match requests");
    }
    if dropped > 0 {
        fail(&format!(
            "{dropped} request(s) missed the response deadline"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::{json_field_u64, percentile};

    #[test]
    fn json_field_scan_anchors_to_the_right_span() {
        let doc = r#"{"spans": [
            {"path": "serve/decode", "p50_ns": 11, "p95_ns": 12, "p99_ns": 13},
            {"path": "serve/queue_wait", "p50_ns": 21, "p95_ns": 22, "p99_ns": 23}]}"#;
        let anchor = "\"path\": \"serve/queue_wait\"";
        assert_eq!(json_field_u64(doc, anchor, "p50_ns"), Some(21));
        assert_eq!(json_field_u64(doc, anchor, "p99_ns"), Some(23));
        assert_eq!(
            json_field_u64(doc, "\"path\": \"serve/decode\"", "p50_ns"),
            Some(11)
        );
        assert_eq!(json_field_u64(doc, anchor, "nope"), None);
        assert_eq!(json_field_u64(doc, "\"path\": \"missing\"", "p50_ns"), None);
    }

    #[test]
    fn percentiles_pin_known_small_arrays() {
        // n=100, values 1..=100: p99 must be the maximum (the regression
        // this pins — nearest-rank returned 99, the second-largest).
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 51); // ceil(0.50·99) = 50
        assert_eq!(percentile(&hundred, 0.90), 91); // ceil(0.90·99) = 90
        assert_eq!(percentile(&hundred, 0.99), 100); // ceil(0.99·99) = 99

        let five = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile(&five, 0.50), 30); // ceil(0.50·4) = 2
        assert_eq!(percentile(&five, 0.90), 50); // ceil(0.90·4) = 4
        assert_eq!(percentile(&five, 0.99), 50);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        let two = [3u64, 9];
        assert_eq!(percentile(&two, 0.0), 3);
        assert_eq!(percentile(&two, 0.50), 9); // ceil(0.5·1) = 1
        assert_eq!(percentile(&two, 1.0), 9);
    }
}
