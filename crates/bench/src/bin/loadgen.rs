//! `loadgen` — concurrent-connection load generator for `lookhd serve`.
//!
//! Drives N closed-loop client connections against a running server,
//! measures per-request latency, and writes a percentile report under
//! `results/` — the serving-path analogue of the paper's throughput
//! experiments.
//!
//! ```text
//! cargo run --release -p lookhd-bench --bin loadgen -- \
//!     --addr 127.0.0.1:4100 --data queries.csv \
//!     [--connections 4 --requests 100 --out results/serve_loadgen.txt
//!      --shutdown]
//! ```
//!
//! Feature vectors come from `--data` (label-free CSV rows, reused
//! round-robin). `--shutdown` sends a graceful-shutdown frame after the
//! burst, which is how `scripts/ci.sh` stops its smoke-test server.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lookhd_serve::wire::Response;
use lookhd_serve::Client;

/// Latency samples and failure tallies from one connection.
#[derive(Default)]
struct ConnReport {
    latencies_ns: Vec<u64>,
    errors: usize,
    mismatches: usize,
}

/// Ceil-rank percentile over an ascending-sorted sample: the smallest
/// sample ≥ the requested fraction of the distribution. Nearest-rank
/// rounding under-reports tail percentiles on small counts (with n=100,
/// `round(0.99·99) = 98` returns the 99th-largest sample instead of the
/// 100th), so the rank is always rounded *up*.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).ceil() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn fail(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(1);
}

/// Minimal `--flag value` / `--switch` parser (the bench crate stays
/// dependency-free; mirrors the CLI's conventions).
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse() -> Self {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let Some(name) = tokens[i].strip_prefix("--") else {
                fail(&format!("unexpected positional argument `{}`", tokens[i]));
            };
            match tokens.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((name.to_owned(), value.clone()));
                    i += 2;
                }
                _ => {
                    switches.push(name.to_owned());
                    i += 1;
                }
            }
        }
        Self { pairs, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad value for --{name}: `{raw}`"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn main() {
    let flags = Flags::parse();
    let addr = flags
        .get("addr")
        .unwrap_or_else(|| fail("--addr HOST:PORT is required"))
        .to_owned();
    let connections = flags.get_or("connections", 4usize).max(1);
    let requests = flags.get_or("requests", 100usize).max(1);
    let out_path = flags
        .get("out")
        .unwrap_or("results/serve_loadgen.txt")
        .to_owned();

    // Query rows: CSV if given, else a deterministic synthetic ramp.
    let rows: Vec<Vec<f64>> = match flags.get("data") {
        Some(path) => lookhd_datasets::csv::load_features(path)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}"))),
        None => {
            let dim = flags.get_or("features", 4usize).max(1);
            (0..64)
                .map(|i| (0..dim).map(|j| ((i + j) % 10) as f64 / 10.0).collect())
                .collect()
        }
    };
    if rows.is_empty() {
        fail("no query rows");
    }
    let rows = Arc::new(rows);

    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_idx| {
                let addr = addr.clone();
                let rows = Arc::clone(&rows);
                scope.spawn(move || {
                    let mut report = ConnReport::default();
                    let mut client = Client::connect(&addr)
                        .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
                    let _ = client.set_read_timeout(Some(Duration::from_secs(30)));
                    for i in 0..requests {
                        let id = (conn_idx * requests + i) as u64;
                        let row = &rows[(conn_idx + i) % rows.len()];
                        let sent = Instant::now();
                        match client.predict(id, row) {
                            Ok(Response::Predict { id: got, .. }) => {
                                report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                                if got != id {
                                    report.mismatches += 1;
                                }
                            }
                            Ok(_) => report.errors += 1,
                            Err(e) => {
                                eprintln!("loadgen: request {id}: {e}");
                                report.errors += 1;
                            }
                        }
                    }
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let wall = started.elapsed();

    if flags.switch("shutdown") {
        let mut client = Client::connect(&addr)
            .unwrap_or_else(|e| fail(&format!("connecting {addr} for shutdown: {e}")));
        match client.shutdown_server(u64::MAX) {
            Ok(Response::Pong { .. }) => {}
            other => eprintln!("loadgen: unexpected shutdown acknowledgement: {other:?}"),
        }
    }

    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: usize = reports.iter().map(|r| r.errors).sum();
    let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
    let ok = latencies.len();
    let total = connections * requests;
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    let mean_ns = if ok == 0 {
        0
    } else {
        latencies.iter().sum::<u64>() / ok as u64
    };

    let mut report = String::new();
    report.push_str("# loadgen — lookhd-serve latency under concurrent load\n");
    report.push_str(&format!(
        "addr {addr}; {connections} connection(s) x {requests} request(s), closed loop\n"
    ));
    report.push_str(&format!(
        "ok {ok}/{total}, errors {errors}, id mismatches {mismatches}, wall {:.1} ms, \
         throughput {throughput:.0} req/s\n",
        wall.as_secs_f64() * 1e3
    ));
    report.push_str(&format!(
        "latency ms: mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}\n",
        ms(mean_ns),
        ms(percentile(&latencies, 0.50)),
        ms(percentile(&latencies, 0.90)),
        ms(percentile(&latencies, 0.99)),
        ms(latencies.last().copied().unwrap_or(0)),
    ));
    print!("{report}");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => fail(&format!("writing {out_path}: {e}")),
    }
    if mismatches > 0 {
        fail("response ids did not match requests");
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentiles_pin_known_small_arrays() {
        // n=100, values 1..=100: p99 must be the maximum (the regression
        // this pins — nearest-rank returned 99, the second-largest).
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 51); // ceil(0.50·99) = 50
        assert_eq!(percentile(&hundred, 0.90), 91); // ceil(0.90·99) = 90
        assert_eq!(percentile(&hundred, 0.99), 100); // ceil(0.99·99) = 99

        let five = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile(&five, 0.50), 30); // ceil(0.50·4) = 2
        assert_eq!(percentile(&five, 0.90), 50); // ceil(0.90·4) = 4
        assert_eq!(percentile(&five, 0.99), 50);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        let two = [3u64, 9];
        assert_eq!(percentile(&two, 0.0), 3);
        assert_eq!(percentile(&two, 0.50), 9); // ceil(0.5·1) = 1
        assert_eq!(percentile(&two, 1.0), 9);
    }
}
