//! `loadgen` — concurrent-connection load generator for `lookhd serve`.
//!
//! Drives N closed-loop client connections against a running server,
//! measures per-request latency, and writes a percentile report under
//! `results/` — the serving-path analogue of the paper's throughput
//! experiments.
//!
//! ```text
//! cargo run --release -p lookhd-bench --bin loadgen -- \
//!     --addr 127.0.0.1:4100 --data queries.csv \
//!     [--connections 4 --requests 100 --out results/serve_loadgen.txt
//!      --trace --admin 127.0.0.1:4101 --bench-out BENCH_serve.json
//!      --shutdown]
//! ```
//!
//! Feature vectors come from `--data` (label-free CSV rows, reused
//! round-robin). `--shutdown` sends a graceful-shutdown frame after the
//! burst, which is how `scripts/ci.sh` stops its smoke-test server.
//!
//! `--trace` sends every request as a v2 frame with a distinct trace id
//! (`request id + 1`) and fails the run if a response echoes the wrong
//! id — the client half of the end-to-end tracing contract. `--admin`
//! scrapes the server's live `/metrics.json` after the burst and reports
//! server-side queue-wait percentiles next to the client-side latency.
//! `--bench-out` additionally writes a schema-versioned machine-readable
//! summary (workload shape, percentiles, throughput, host cores).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lookhd_serve::wire::Response;
use lookhd_serve::Client;

/// Latency samples and failure tallies from one connection.
#[derive(Default)]
struct ConnReport {
    latencies_ns: Vec<u64>,
    errors: usize,
    mismatches: usize,
}

/// Ceil-rank percentile over an ascending-sorted sample: the smallest
/// sample ≥ the requested fraction of the distribution. Nearest-rank
/// rounding under-reports tail percentiles on small counts (with n=100,
/// `round(0.99·99) = 98` returns the 99th-largest sample instead of the
/// 100th), so the rank is always rounded *up*.
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).ceil() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Pulls `"<field>": <uint>` out of a snapshot JSON document, scanning
/// forward from the first occurrence of `anchor`. The snapshot format is
/// deterministic (see `obs::Snapshot::to_json`), so a string scan is
/// enough — the bench crate deliberately has no JSON parser.
fn json_field_u64(doc: &str, anchor: &str, field: &str) -> Option<u64> {
    let from = doc.find(anchor)? + anchor.len();
    let rest = &doc[from..];
    let needle = format!("\"{field}\": ");
    let at = rest.find(&needle)? + needle.len();
    let digits: String = rest[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn fail(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(1);
}

/// Minimal `--flag value` / `--switch` parser (the bench crate stays
/// dependency-free; mirrors the CLI's conventions).
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse() -> Self {
        let tokens: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let Some(name) = tokens[i].strip_prefix("--") else {
                fail(&format!("unexpected positional argument `{}`", tokens[i]));
            };
            match tokens.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    pairs.push((name.to_owned(), value.clone()));
                    i += 2;
                }
                _ => {
                    switches.push(name.to_owned());
                    i += 1;
                }
            }
        }
        Self { pairs, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad value for --{name}: `{raw}`"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn main() {
    let flags = Flags::parse();
    let addr = flags
        .get("addr")
        .unwrap_or_else(|| fail("--addr HOST:PORT is required"))
        .to_owned();
    let connections = flags.get_or("connections", 4usize).max(1);
    let requests = flags.get_or("requests", 100usize).max(1);
    let traced = flags.switch("trace");
    let admin_addr = flags.get("admin").map(str::to_owned);
    let bench_out = flags.get("bench-out").map(str::to_owned);
    let out_path = flags
        .get("out")
        .unwrap_or("results/serve_loadgen.txt")
        .to_owned();

    // Query rows: CSV if given, else a deterministic synthetic ramp.
    let rows: Vec<Vec<f64>> = match flags.get("data") {
        Some(path) => lookhd_datasets::csv::load_features(path)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}"))),
        None => {
            let dim = flags.get_or("features", 4usize).max(1);
            (0..64)
                .map(|i| (0..dim).map(|j| ((i + j) % 10) as f64 / 10.0).collect())
                .collect()
        }
    };
    if rows.is_empty() {
        fail("no query rows");
    }
    let rows = Arc::new(rows);

    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_idx| {
                let addr = addr.clone();
                let rows = Arc::clone(&rows);
                scope.spawn(move || {
                    let mut report = ConnReport::default();
                    let mut client = Client::connect(&addr)
                        .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
                    let _ = client.set_read_timeout(Some(Duration::from_secs(30)));
                    for i in 0..requests {
                        let id = (conn_idx * requests + i) as u64;
                        // Trace ids are request id + 1: distinct per
                        // request, never the reserved 0.
                        let trace_id = if traced { id + 1 } else { 0 };
                        let row = &rows[(conn_idx + i) % rows.len()];
                        let sent = Instant::now();
                        match client.predict_traced(id, trace_id, row) {
                            Ok(Response::Predict {
                                id: got,
                                trace_id: got_trace,
                                ..
                            }) => {
                                report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                                if got != id || got_trace != trace_id {
                                    report.mismatches += 1;
                                }
                            }
                            Ok(_) => report.errors += 1,
                            Err(e) => {
                                eprintln!("loadgen: request {id}: {e}");
                                report.errors += 1;
                            }
                        }
                    }
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let wall = started.elapsed();

    // Scrape the live admin endpoint *before* any shutdown frame: the
    // admin listener stops when the server drains.
    let server_queue_wait: Option<(u64, u64, u64)> = admin_addr.as_deref().map(|admin| {
        let doc = lookhd_serve::http_get(admin, "/metrics.json")
            .unwrap_or_else(|e| fail(&format!("scraping {admin}/metrics.json: {e}")));
        let anchor = "\"path\": \"serve/queue_wait\"";
        let get = |field| {
            json_field_u64(&doc, anchor, field)
                .unwrap_or_else(|| fail(&format!("no {field} for serve/queue_wait in {admin}")))
        };
        (get("p50_ns"), get("p95_ns"), get("p99_ns"))
    });

    if flags.switch("shutdown") {
        let mut client = Client::connect(&addr)
            .unwrap_or_else(|e| fail(&format!("connecting {addr} for shutdown: {e}")));
        match client.shutdown_server(u64::MAX) {
            Ok(Response::Pong { .. }) => {}
            other => eprintln!("loadgen: unexpected shutdown acknowledgement: {other:?}"),
        }
    }

    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: usize = reports.iter().map(|r| r.errors).sum();
    let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
    let ok = latencies.len();
    let total = connections * requests;
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);
    let mean_ns = if ok == 0 {
        0
    } else {
        latencies.iter().sum::<u64>() / ok as u64
    };

    let mut report = String::new();
    report.push_str("# loadgen — lookhd-serve latency under concurrent load\n");
    report.push_str(&format!(
        "addr {addr}; {connections} connection(s) x {requests} request(s), closed loop\n"
    ));
    report.push_str(&format!(
        "ok {ok}/{total}, errors {errors}, id mismatches {mismatches}, wall {:.1} ms, \
         throughput {throughput:.0} req/s\n",
        wall.as_secs_f64() * 1e3
    ));
    report.push_str(&format!(
        "latency ms: mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}\n",
        ms(mean_ns),
        ms(percentile(&latencies, 0.50)),
        ms(percentile(&latencies, 0.90)),
        ms(percentile(&latencies, 0.99)),
        ms(latencies.last().copied().unwrap_or(0)),
    ));
    if traced {
        report.push_str("trace ids: propagated and echo-checked on every request\n");
    }
    if let Some((p50, p95, p99)) = server_queue_wait {
        report.push_str(&format!(
            "server queue wait ms (from /metrics.json): p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
            ms(p50),
            ms(p95),
            ms(p99),
        ));
    }
    print!("{report}");

    if let Some(bench_path) = &bench_out {
        let n_features = rows.first().map_or(0, Vec::len);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema_version\": 1,\n");
        json.push_str("  \"bench\": \"serve_loadgen\",\n");
        json.push_str(&format!(
            "  \"workload\": {{\"connections\": {connections}, \"requests_per_connection\": {requests}, \"n_features\": {n_features}, \"traced\": {traced}}},\n"
        ));
        json.push_str(&format!("  \"host\": {{\"cores\": {cores}}},\n"));
        json.push_str(&format!(
            "  \"results\": {{\"ok\": {ok}, \"errors\": {errors}, \"id_mismatches\": {mismatches}, \"throughput_rps\": {throughput:.1}}},\n"
        ));
        json.push_str(&format!(
            "  \"client_latency_ns\": {{\"mean\": {mean_ns}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.90),
            percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(0),
        ));
        match server_queue_wait {
            Some((p50, p95, p99)) => json.push_str(&format!(
                ",\n  \"server_queue_wait_ns\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}\n"
            )),
            None => json.push('\n'),
        }
        json.push_str("}\n");
        match std::fs::write(bench_path, &json) {
            Ok(()) => println!("wrote {bench_path}"),
            Err(e) => fail(&format!("writing {bench_path}: {e}")),
        }
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => fail(&format!("writing {out_path}: {e}")),
    }
    if mismatches > 0 {
        fail("response ids did not match requests");
    }
}

#[cfg(test)]
mod tests {
    use super::{json_field_u64, percentile};

    #[test]
    fn json_field_scan_anchors_to_the_right_span() {
        let doc = r#"{"spans": [
            {"path": "serve/decode", "p50_ns": 11, "p95_ns": 12, "p99_ns": 13},
            {"path": "serve/queue_wait", "p50_ns": 21, "p95_ns": 22, "p99_ns": 23}]}"#;
        let anchor = "\"path\": \"serve/queue_wait\"";
        assert_eq!(json_field_u64(doc, anchor, "p50_ns"), Some(21));
        assert_eq!(json_field_u64(doc, anchor, "p99_ns"), Some(23));
        assert_eq!(
            json_field_u64(doc, "\"path\": \"serve/decode\"", "p50_ns"),
            Some(11)
        );
        assert_eq!(json_field_u64(doc, anchor, "nope"), None);
        assert_eq!(json_field_u64(doc, "\"path\": \"missing\"", "p50_ns"), None);
    }

    #[test]
    fn percentiles_pin_known_small_arrays() {
        // n=100, values 1..=100: p99 must be the maximum (the regression
        // this pins — nearest-rank returned 99, the second-largest).
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 51); // ceil(0.50·99) = 50
        assert_eq!(percentile(&hundred, 0.90), 91); // ceil(0.90·99) = 90
        assert_eq!(percentile(&hundred, 0.99), 100); // ceil(0.99·99) = 99

        let five = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile(&five, 0.50), 30); // ceil(0.50·4) = 2
        assert_eq!(percentile(&five, 0.90), 50); // ceil(0.90·4) = 4
        assert_eq!(percentile(&five, 0.99), 50);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.50), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        let two = [3u64, 9];
        assert_eq!(percentile(&two, 0.0), 3);
        assert_eq!(percentile(&two, 0.50), 9); // ceil(0.5·1) = 1
        assert_eq!(percentile(&two, 1.0), 9);
    }
}
