//! Fig. 15 — inference scalability of the compressed model with the number
//! of classes.
//!
//! Following §VI-G, classes are randomly generated Gaussian hypervectors
//! with a correlation similar to the trained application models; 1000
//! queries (noisy class vectors) are scored per configuration.
//!
//! (a) classification accuracy and average noise/signal ratio vs `k` for
//!     the fully compressed (single-vector) model;
//! (b) EDP improvement and model-size reduction vs `k`, for both the
//!     single-vector and the exact (≤12 classes/vector) modes.
//!
//! Run: `cargo run --release -p lookhd-bench --bin fig15_scalability`

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use lookhd::compress::{CompressedModel, CompressionConfig};
use lookhd_bench::context::Context;
use lookhd_bench::table::{pct, ratio, Table};
use lookhd_datasets::synthetic::correlated_class_vectors;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{FpgaModel, WorkloadShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ctx = Context::from_env();
    let dim = 2000usize;
    let n_queries = ctx.scaled(1000);
    let ks: Vec<usize> = if ctx.fast {
        vec![2, 12, 26]
    } else {
        vec![2, 4, 8, 12, 16, 20, 26, 32, 40, 48]
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let fpga = FpgaModel::kc705();
    let mut table = Table::new([
        "k",
        "accuracy (single)",
        "noise/signal",
        "EDP gain (single)",
        "size gain (single)",
        "accuracy (exact)",
        "EDP gain (exact)",
        "size gain (exact)",
    ]);
    for &k in &ks {
        // Correlation matched to the trained app models (~0.55 pairwise).
        let class_vecs = correlated_class_vectors(k, dim, 0.75, 40.0, &mut rng);
        let model = ClassModel::from_classes(
            class_vecs
                .iter()
                .map(|v| DenseHv::from_vec(v.clone()))
                .collect(),
        )
        .expect("model build failed");
        // Noisy queries: a class vector plus Gaussian perturbation.
        let queries: Vec<(DenseHv, usize)> = (0..n_queries)
            .map(|i| {
                let label = i % k;
                let noisy: Vec<i32> = model
                    .class(label)
                    .as_slice()
                    .iter()
                    .map(|&v| v + (lookhd_datasets::standard_normal(&mut rng) * 25.0) as i32)
                    .collect();
                (DenseHv::from_vec(noisy), label)
            })
            .collect();

        let single_cfg = CompressionConfig::new().with_max_classes_per_vector(k.max(1));
        let exact_cfg = CompressionConfig::new(); // ≤12 classes per vector
        let single = CompressedModel::compress(&model, &single_cfg).expect("compress failed");
        let exact = CompressedModel::compress(&model, &exact_cfg).expect("compress failed");

        let accuracy = |cm: &CompressedModel| -> f64 {
            queries
                .iter()
                .filter(|(h, y)| cm.predict(h).expect("predict failed") == *y)
                .count() as f64
                / queries.len() as f64
        };
        let acc_single = accuracy(&single);
        let acc_exact = accuracy(&exact);
        // Average own-class noise/signal over a query subsample.
        let ns: f64 = queries
            .iter()
            .take(50)
            .map(|(h, y)| {
                single.signal_noise(&model, h).expect("signal_noise failed")[*y]
                    .noise_to_signal()
                    .min(10.0)
            })
            .sum::<f64>()
            / 50.0;

        // EDP of the associative search per query, baseline vs compressed.
        let shape = |max_per_vec: usize| WorkloadShape {
            n_features: 512,
            q: 4,
            dim,
            n_classes: k,
            r: 5,
            max_classes_per_vector: max_per_vec,
            train_samples: 1,
            retrain_epochs: 0,
            avg_updates_per_epoch: 0,
        };
        let base_cost = fpga.execute_as(&shape(1).baseline_search(), FpgaPhase::BaselineInference);
        let single_cost =
            fpga.execute_as(&shape(k.max(1)).lookhd_search(), FpgaPhase::LookHdInference);
        let exact_cost = fpga.execute_as(&shape(12).lookhd_search(), FpgaPhase::LookHdInference);
        let (base_bytes, single_bytes) = shape(k.max(1)).model_bytes();
        let (_, exact_bytes) = shape(12).model_bytes();

        table.row([
            k.to_string(),
            pct(acc_single),
            format!("{ns:.3}"),
            ratio(single_cost.edp_improvement_over(&base_cost)),
            ratio(base_bytes as f64 / single_bytes as f64),
            pct(acc_exact),
            ratio(exact_cost.edp_improvement_over(&base_cost)),
            ratio(base_bytes as f64 / exact_bytes as f64),
        ]);
    }
    println!(
        "Fig. 15: compressed-model scalability with class count (D = {dim}, {n_queries} queries)\n"
    );
    table.print();
    println!(
        "\nPaper: no accuracy loss up to ~12 classes per vector; noise/signal grows\n\
         with k; k = 26 single-vector loses <0.8%; k = 48 single-vector gains 14.6x\n\
         EDP and 19.2x size at ~2% loss, exact mode 10.8x EDP / 8.7x size at none."
    );
}
