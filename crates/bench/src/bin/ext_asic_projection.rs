//! Extension — ASIC projection (§I: the LookHD optimizations "can be
//! implemented on any digital processor, including an ASIC chip").
//!
//! Prices LookHD inference and initial training per application on four
//! platforms: ARM A53, KC705 FPGA, GTX 1080 GPU, and a 45 nm-class
//! fixed-function ASIC, reporting per-query latency and energy.
//!
//! Run: `cargo run --release -p lookhd-bench --bin ext_asic_projection`

use lookhd_bench::shapes::{lookhd_shape, ShapeParams};
use lookhd_bench::table::Table;
use lookhd_datasets::apps::App;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{AsicModel, CostEstimate, CpuModel, FpgaModel, GpuModel};

fn fmt(cost: CostEstimate) -> String {
    format!("{:.2}us/{:.2}uJ", cost.seconds * 1e6, cost.joules * 1e6)
}

fn main() {
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let gpu = GpuModel::gtx1080();
    let asic = AsicModel::embedded_45nm();
    let mut table = Table::new(["App", "A53", "KC705", "GTX1080", "ASIC 45nm"]);
    for app in App::ALL {
        let profile = app.profile();
        let mut params = ShapeParams::paper_default(&profile);
        params.dim = 2000;
        let shape = lookhd_shape(&profile, params);
        let work = shape.lookhd_inference();
        table.row([
            profile.name.to_owned(),
            fmt(cpu.execute(&work)),
            fmt(fpga.execute_as(&work, FpgaPhase::LookHdInference)),
            fmt(gpu.execute(&work)),
            fmt(asic.execute(&work)),
        ]);
    }
    println!("Extension: LookHD per-query inference cost across platforms (D = 2000)\n");
    table.print();
    println!(
        "\nThe ASIC is the energy floor (per-op energies at standard-cell scale);\n\
         the GPU is latency-competitive only once its launch overhead amortizes\n\
         over large batches; the FPGA sits between — the paper's sweet spot for\n\
         sub-10 W deployments."
    );
}
