//! Table III — LookHD (FPGA) vs an NVIDIA GTX 1080 GPU: average training
//! and inference speedup and energy efficiency, normalized to the ARM CPU,
//! plus the reduced-dimensionality LookHD variant.
//!
//! Paper headlines: GPU is ~1.5× (train) / 1.3× (infer) faster than the
//! *baseline* on FPGA, but LookHD is 1.1× / 1.5× faster than the GPU and
//! 67.5× / 112.7× more energy-efficient; dropping D below 2000 buys a
//! further ~1.2× at <2% accuracy loss.
//!
//! Run: `cargo run --release -p lookhd-bench --bin table03_gpu`

use lookhd_bench::shapes::{baseline_shape, lookhd_shape, ShapeParams};
use lookhd_bench::table::{ratio, Table};
use lookhd_datasets::apps::App;
use lookhd_hwsim::fpga::FpgaPhase;
use lookhd_hwsim::{geomean, CostEstimate, CpuModel, FpgaModel, GpuModel};

/// The GPU amortizes its launch overhead over query batches (the paper's
/// TensorFlow implementation runs throughput-mode); per-query cost is the
/// batched cost divided by the batch size.
const GPU_BATCH: u64 = 1024;

fn main() {
    let cpu = CpuModel::cortex_a53();
    let fpga = FpgaModel::kc705();
    let gpu = GpuModel::gtx1080();

    // Collect per-app costs, then report 5-app geomeans normalized to CPU.
    let mut rows: Vec<(String, [CostEstimate; 8])> = Vec::new();
    for app in App::ALL {
        let profile = app.profile();
        let mut params = ShapeParams::paper_default(&profile);
        params.dim = 2000;
        let look = lookhd_shape(&profile, params);
        let base = baseline_shape(&profile, params);
        params.dim = 1000;
        let look_small = lookhd_shape(&profile, params);
        rows.push((
            profile.name.to_owned(),
            [
                cpu.execute(&base.baseline_training()),
                gpu.execute(&base.baseline_training()),
                fpga.execute_as(&look.lookhd_training(), FpgaPhase::LookHdTraining),
                fpga.execute_as(&look_small.lookhd_training(), FpgaPhase::LookHdTraining),
                cpu.execute(&base.baseline_inference()),
                gpu.execute(&base.baseline_inference().scaled(GPU_BATCH))
                    .scaled(1.0 / GPU_BATCH as f64),
                fpga.execute_as(&look.lookhd_inference(), FpgaPhase::LookHdInference),
                fpga.execute_as(&look_small.lookhd_inference(), FpgaPhase::LookHdInference),
            ],
        ));
    }

    let mut table = Table::new(["metric", "GPU", "LookHD D=2000", "LookHD D=1000"]);
    for (phase, cpu_i, gpu_i, look_i, small_i) in [
        ("training", 0usize, 1usize, 2usize, 3usize),
        ("inference", 4, 5, 6, 7),
    ] {
        let speed = |i: usize| -> f64 {
            geomean(
                &rows
                    .iter()
                    .map(|(_, c)| c[i].speedup_over(&c[cpu_i]))
                    .collect::<Vec<_>>(),
            )
        };
        let energy = |i: usize| -> f64 {
            geomean(
                &rows
                    .iter()
                    .map(|(_, c)| c[i].energy_efficiency_over(&c[cpu_i]))
                    .collect::<Vec<_>>(),
            )
        };
        table.row([
            format!("{phase} speedup (vs CPU)"),
            ratio(speed(gpu_i)),
            ratio(speed(look_i)),
            ratio(speed(small_i)),
        ]);
        table.row([
            format!("{phase} energy eff. (vs CPU)"),
            ratio(energy(gpu_i)),
            ratio(energy(look_i)),
            ratio(energy(small_i)),
        ]);
    }
    println!("Table III: LookHD vs GTX 1080 GPU (5-app geomean, normalized to ARM A53)\n");
    table.print();

    // Direct LookHD-vs-GPU ratios (the paper's headline numbers).
    let direct = |look_i: usize, gpu_i: usize, energy: bool| -> f64 {
        geomean(
            &rows
                .iter()
                .map(|(_, c)| {
                    if energy {
                        c[look_i].energy_efficiency_over(&c[gpu_i])
                    } else {
                        c[look_i].speedup_over(&c[gpu_i])
                    }
                })
                .collect::<Vec<_>>(),
        )
    };
    println!(
        "\nLookHD (D=2000) vs GPU directly: training {} faster / {} more energy-efficient,\n\
         inference {} / {}.",
        ratio(direct(2, 1, false)),
        ratio(direct(2, 1, true)),
        ratio(direct(6, 5, false)),
        ratio(direct(6, 5, true)),
    );
    println!(
        "Paper: LookHD 1.1x (train) and 1.5x (infer) faster than GPU; 67.5x and 112.7x\n\
         more energy-efficient; reduced-D LookHD buys a further ~1.2x."
    );
}
