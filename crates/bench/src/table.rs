//! Minimal column-aligned text tables for experiment output.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as `12.3x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.1}x")
}

/// Formats a fraction as a percentage, `94.1%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders a horizontal ASCII bar scaled so `max` spans `width` chars.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["app", "acc"]);
        t.row(["SPEECH", "94.1%"]);
        t.row(["FACE", "96%"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("SPEECH"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(12.34), "12.3x");
        assert_eq!(pct(0.941), "94.1%");
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
