//! The five evaluation applications (Table I of the paper), as synthetic
//! profiles.
//!
//! Each profile reproduces the paper's problem *shape* — feature count `n`,
//! class count `k`, the `q` the baseline needs, and the `q` LookHD uses —
//! and its generator knobs are tuned so the baseline HDC accuracy lands in
//! the paper's ballpark (e.g. EXTRA is intrinsically hard, ~70%). See
//! DESIGN.md for the substitution rationale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::synthetic::{Generator, GeneratorConfig};

/// The five applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// ISOLET-like voice recognition: `n = 617`, `k = 26`.
    Speech,
    /// UCI-HAR-like activity recognition: `n = 561`, `k = 6`.
    Activity,
    /// PAMAP2-like physical monitoring: `n = 52`, `k = 12`.
    Physical,
    /// Face recognition: `n = 608`, `k = 2`.
    Face,
    /// ExtraSensory-like phone-position recognition: `n = 225`, `k = 4`.
    Extra,
}

impl App {
    /// All five applications in the paper's order.
    pub const ALL: [App; 5] = [
        App::Speech,
        App::Activity,
        App::Physical,
        App::Face,
        App::Extra,
    ];

    /// The application's profile (paper parameters + generator tuning).
    pub fn profile(&self) -> AppProfile {
        match self {
            App::Speech => AppProfile {
                app: *self,
                name: "SPEECH",
                n_features: 617,
                n_classes: 26,
                paper_q_baseline: 16,
                paper_q_lookhd: 4,
                paper_accuracy_baseline: 0.941,
                paper_accuracy_lookhd_d2000: 0.952,
                noise: 0.32,
                shared_weight: 0.25,
                informative_fraction: 0.60,
                skew_power: 2.0,
                ambiguous_fraction: 0.057,
                default_train_per_class: 60,
                default_test_per_class: 20,
            },
            App::Activity => AppProfile {
                app: *self,
                name: "ACTIVITY",
                n_features: 561,
                n_classes: 6,
                paper_q_baseline: 8,
                paper_q_lookhd: 4,
                paper_accuracy_baseline: 0.946,
                paper_accuracy_lookhd_d2000: 0.979,
                noise: 0.40,
                shared_weight: 0.25,
                informative_fraction: 0.60,
                skew_power: 2.0,
                ambiguous_fraction: 0.059,
                default_train_per_class: 120,
                default_test_per_class: 40,
            },
            App::Physical => AppProfile {
                app: *self,
                name: "PHYSICAL",
                n_features: 52,
                n_classes: 12,
                paper_q_baseline: 8,
                paper_q_lookhd: 2,
                paper_accuracy_baseline: 0.913,
                paper_accuracy_lookhd_d2000: 0.929,
                noise: 0.13,
                shared_weight: 0.25,
                informative_fraction: 0.80,
                skew_power: 2.0,
                ambiguous_fraction: 0.09,
                default_train_per_class: 100,
                default_test_per_class: 35,
            },
            App::Face => AppProfile {
                app: *self,
                name: "FACE",
                n_features: 608,
                n_classes: 2,
                paper_q_baseline: 16,
                paper_q_lookhd: 2,
                paper_accuracy_baseline: 0.941,
                paper_accuracy_lookhd_d2000: 0.965,
                noise: 0.34,
                shared_weight: 0.30,
                informative_fraction: 0.50,
                skew_power: 2.0,
                ambiguous_fraction: 0.109,
                default_train_per_class: 250,
                default_test_per_class: 80,
            },
            App::Extra => AppProfile {
                app: *self,
                name: "EXTRA",
                n_features: 225,
                n_classes: 4,
                paper_q_baseline: 16,
                paper_q_lookhd: 4,
                paper_accuracy_baseline: 0.706,
                paper_accuracy_lookhd_d2000: 0.733,
                noise: 0.34,
                shared_weight: 0.35,
                informative_fraction: 0.32,
                skew_power: 2.0,
                ambiguous_fraction: 0.388,
                default_train_per_class: 200,
                default_test_per_class: 70,
            },
        }
    }
}

/// Paper parameters and generator tuning for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Which application this profiles.
    pub app: App,
    /// Display name as used in the paper's tables.
    pub name: &'static str,
    /// Feature count `n` (Table I).
    pub n_features: usize,
    /// Class count `k` (Table I).
    pub n_classes: usize,
    /// Quantization levels the *baseline* needs for max accuracy (Table I).
    pub paper_q_baseline: usize,
    /// Quantization levels LookHD uses with equalization (Table II).
    pub paper_q_lookhd: usize,
    /// Baseline HD accuracy reported in Table I.
    pub paper_accuracy_baseline: f64,
    /// LookHD accuracy at `D = 2000` reported in Table II.
    pub paper_accuracy_lookhd_d2000: f64,
    /// Generator: latent noise std.
    pub noise: f64,
    /// Generator: shared-component weight (class correlation).
    pub shared_weight: f64,
    /// Generator: fraction of informative features.
    pub informative_fraction: f64,
    /// Generator: marginal skew exponent.
    pub skew_power: f64,
    /// Generator: fraction of genuinely ambiguous samples (sets the
    /// accuracy ceiling; see `GeneratorConfig::ambiguous_fraction`).
    pub ambiguous_fraction: f64,
    /// Default training samples per class for experiments.
    pub default_train_per_class: usize,
    /// Default test samples per class for experiments.
    pub default_test_per_class: usize,
}

impl AppProfile {
    /// The naive lookup-table row count `q^n` of Table I, as a base-2
    /// exponent (`log2(q^n) = n·log2(q)`), e.g. SPEECH → 2468 bits.
    pub fn naive_lookup_log2_rows(&self) -> f64 {
        self.n_features as f64 * (self.paper_q_baseline as f64).log2()
    }

    /// The generator configuration for this profile.
    pub fn generator_config(&self) -> GeneratorConfig {
        GeneratorConfig {
            n_features: self.n_features,
            n_classes: self.n_classes,
            noise: self.noise,
            shared_weight: self.shared_weight,
            informative_fraction: self.informative_fraction,
            skew_power: self.skew_power,
            ambiguous_fraction: self.ambiguous_fraction,
        }
    }

    /// Generates the dataset with explicit per-class sizes.
    pub fn generate_sized(
        &self,
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Dataset {
        // Mix the app into the seed so equal seeds give distinct data per app.
        let mut rng =
            StdRng::seed_from_u64(seed ^ (self.n_features as u64) << 17 ^ self.n_classes as u64);
        let generator = Generator::from_rng(self.generator_config(), &mut rng);
        generator.dataset(self.name, train_per_class, test_per_class, &mut rng)
    }

    /// Generates the dataset at the profile's default sizes.
    pub fn generate(&self, seed: u64) -> Dataset {
        self.generate_sized(
            self.default_train_per_class,
            self.default_test_per_class,
            seed,
        )
    }

    /// A size-reduced variant for fast tests/smoke runs (¼ of the default
    /// sizes, at least 8/4 samples per class).
    pub fn generate_small(&self, seed: u64) -> Dataset {
        self.generate_sized(
            (self.default_train_per_class / 4).max(8),
            (self.default_test_per_class / 4).max(4),
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table_one() {
        let speech = App::Speech.profile();
        assert_eq!((speech.n_features, speech.n_classes), (617, 26));
        let activity = App::Activity.profile();
        assert_eq!((activity.n_features, activity.n_classes), (561, 6));
        let physical = App::Physical.profile();
        assert_eq!((physical.n_features, physical.n_classes), (52, 12));
        let face = App::Face.profile();
        assert_eq!((face.n_features, face.n_classes), (608, 2));
        let extra = App::Extra.profile();
        assert_eq!((extra.n_features, extra.n_classes), (225, 4));
    }

    #[test]
    fn naive_lookup_sizes_match_table_one() {
        // Table I: SPEECH 2^2468, ACTIVITY 2^1683, PHYSICAL 2^156,
        // FACE 2^2432 (the paper prints 2^432; 608·log2(16) = 2432),
        // EXTRA 2^900.
        assert_eq!(App::Speech.profile().naive_lookup_log2_rows(), 2468.0);
        assert_eq!(App::Activity.profile().naive_lookup_log2_rows(), 1683.0);
        assert_eq!(App::Physical.profile().naive_lookup_log2_rows(), 156.0);
        assert_eq!(App::Face.profile().naive_lookup_log2_rows(), 2432.0);
        assert_eq!(App::Extra.profile().naive_lookup_log2_rows(), 900.0);
    }

    #[test]
    fn generate_produces_profiled_shape() {
        for app in App::ALL {
            let p = app.profile();
            let d = p.generate_small(1);
            assert_eq!(d.n_features, p.n_features, "{}", p.name);
            assert_eq!(d.n_classes, p.n_classes, "{}", p.name);
            assert_eq!(
                d.train.class_counts(p.n_classes).iter().min(),
                d.train.class_counts(p.n_classes).iter().max()
            );
        }
    }

    #[test]
    fn different_apps_differ_with_same_seed() {
        let a = App::Face.profile().generate_small(3);
        let b = App::Extra.profile().generate_small(3);
        assert_ne!(a.train.features[0], b.train.features[0]);
    }

    #[test]
    fn same_app_same_seed_is_deterministic() {
        let a = App::Speech.profile().generate_small(9);
        let b = App::Speech.profile().generate_small(9);
        assert_eq!(a, b);
    }
}
