//! Dataset containers and split utilities.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

/// One labelled partition of a dataset (train or test).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Split {
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Class label per row, in `0..n_classes`.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the split holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Shuffles samples in place, keeping features and labels aligned.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.features = order.iter().map(|&i| self.features[i].clone()).collect();
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
    }

    /// Samples per class (index = label).
    pub fn class_counts(&self, n_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_classes];
        for &y in &self.labels {
            if y < n_classes {
                counts[y] += 1;
            }
        }
        counts
    }
}

/// A named classification dataset with train and test partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable name (e.g. `"SPEECH"`).
    pub name: String,
    /// Number of features `n`.
    pub n_features: usize,
    /// Number of classes `k`.
    pub n_classes: usize,
    /// Training partition.
    pub train: Split,
    /// Test partition.
    pub test: Split,
}

impl Dataset {
    /// Splits off the last `fraction` of the training set as a validation
    /// split (the paper uses part of the training data for retraining
    /// stop decisions).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn validation_split(&self, fraction: f64) -> (Split, Split) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "validation fraction must be in (0, 1)"
        );
        let n = self.train.len();
        let n_val = ((n as f64) * fraction).round().max(1.0) as usize;
        let cut = n - n_val.min(n - 1);
        let train = Split {
            features: self.train.features[..cut].to_vec(),
            labels: self.train.labels[..cut].to_vec(),
        };
        let val = Split {
            features: self.train.features[cut..].to_vec(),
            labels: self.train.labels[cut..].to_vec(),
        };
        (train, val)
    }

    /// All training feature values flattened — quantizer-fitting input.
    pub fn train_values(&self) -> Vec<f64> {
        self.train.features.iter().flatten().copied().collect()
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n={}, k={}, train={}, test={})",
            self.name,
            self.n_features,
            self.n_classes,
            self.train.len(),
            self.test.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset {
            name: "TOY".into(),
            n_features: 2,
            n_classes: 2,
            train: Split {
                features: (0..10).map(|i| vec![i as f64, 0.0]).collect(),
                labels: (0..10).map(|i| i % 2).collect(),
            },
            test: Split::default(),
        }
    }

    #[test]
    fn shuffle_keeps_rows_aligned() {
        let mut d = toy();
        let before: Vec<(f64, usize)> = d
            .train
            .features
            .iter()
            .map(|f| f[0])
            .zip(d.train.labels.iter().copied())
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        d.train.shuffle(&mut rng);
        let mut after: Vec<(f64, usize)> = d
            .train
            .features
            .iter()
            .map(|f| f[0])
            .zip(d.train.labels.iter().copied())
            .collect();
        after.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut sorted_before = before;
        sorted_before.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(after, sorted_before);
    }

    #[test]
    fn validation_split_partitions_without_loss() {
        let d = toy();
        let (train, val) = d.validation_split(0.3);
        assert_eq!(train.len() + val.len(), 10);
        assert_eq!(val.len(), 3);
    }

    #[test]
    #[should_panic(expected = "validation fraction")]
    fn validation_split_rejects_bad_fraction() {
        let _ = toy().validation_split(1.5);
    }

    #[test]
    fn class_counts_and_display() {
        let d = toy();
        assert_eq!(d.train.class_counts(2), vec![5, 5]);
        assert!(format!("{d}").contains("TOY"));
        assert!(!d.train.is_empty());
        assert!(d.test.is_empty());
    }

    #[test]
    fn train_values_flattens_all_features() {
        let d = toy();
        assert_eq!(d.train_values().len(), 20);
    }
}
