//! Concept-drift streams for online-learning studies.
//!
//! IoT deployments (§I's motivating setting) rarely see stationary data:
//! sensors drift, users change habits. [`DriftStream`] yields an endless
//! labelled sample stream whose class prototypes interpolate from a start
//! generator toward a target generator over a configurable horizon —
//! fodder for the single-pass/online trainers.

use rand::Rng;

use crate::synthetic::{Generator, GeneratorConfig};

/// A labelled sample stream with gradual concept drift.
#[derive(Debug, Clone)]
pub struct DriftStream {
    start: Generator,
    target: Generator,
    /// Samples over which the drift completes.
    horizon: usize,
    emitted: usize,
    n_classes: usize,
}

impl DriftStream {
    /// Builds a stream drifting from one prototype set to an independent
    /// one over `horizon` samples.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0` (use a plain [`Generator`] for stationary
    /// data) or on invalid generator configuration.
    pub fn new<R: Rng + ?Sized>(config: GeneratorConfig, horizon: usize, rng: &mut R) -> Self {
        assert!(horizon > 0, "drift horizon must be positive");
        let n_classes = config.n_classes;
        let start = Generator::from_rng(config.clone(), rng);
        let target = Generator::from_rng(config, rng);
        Self {
            start,
            target,
            horizon,
            emitted: 0,
            n_classes,
        }
    }

    /// Drift progress in `[0, 1]` (1 once the horizon has passed).
    pub fn progress(&self) -> f64 {
        (self.emitted as f64 / self.horizon as f64).min(1.0)
    }

    /// Samples emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Draws the next labelled sample: a convex blend of the start and
    /// target generators' outputs for a round-robin class label.
    pub fn next_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (Vec<f64>, usize) {
        let class = self.emitted % self.n_classes;
        let alpha = self.progress();
        let a = self.start.sample(class, rng);
        let b = self.target.sample(class, rng);
        let blended = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (1.0 - alpha) * x + alpha * y)
            .collect();
        self.emitted += 1;
        (blended, class)
    }

    /// Draws a labelled evaluation batch at the *current* drift position
    /// without advancing the stream.
    pub fn snapshot<R: Rng + ?Sized>(
        &self,
        per_class: usize,
        rng: &mut R,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let alpha = self.progress();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for class in 0..self.n_classes {
            for _ in 0..per_class {
                let a = self.start.sample(class, rng);
                let b = self.target.sample(class, rng);
                xs.push(
                    a.iter()
                        .zip(&b)
                        .map(|(&x, &y)| (1.0 - alpha) * x + alpha * y)
                        .collect(),
                );
                ys.push(class);
            }
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(horizon: usize, seed: u64) -> (DriftStream, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GeneratorConfig {
            n_features: 16,
            n_classes: 3,
            noise: 0.02,
            ..GeneratorConfig::new()
        };
        let s = DriftStream::new(config, horizon, &mut rng);
        (s, rng)
    }

    #[test]
    fn progress_advances_and_saturates() {
        let (mut s, mut rng) = stream(10, 1);
        assert_eq!(s.progress(), 0.0);
        for _ in 0..10 {
            let _ = s.next_sample(&mut rng);
        }
        assert_eq!(s.progress(), 1.0);
        for _ in 0..5 {
            let _ = s.next_sample(&mut rng);
        }
        assert_eq!(s.progress(), 1.0);
        assert_eq!(s.emitted(), 15);
    }

    #[test]
    fn labels_cycle_round_robin() {
        let (mut s, mut rng) = stream(100, 2);
        let labels: Vec<usize> = (0..6).map(|_| s.next_sample(&mut rng).1).collect();
        assert_eq!(labels, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn distribution_actually_drifts() {
        // Distance between early and late class-0 centroids must exceed
        // the within-snapshot scatter.
        let (mut s, mut rng) = stream(200, 3);
        let (early, ey) = s.snapshot(20, &mut rng);
        for _ in 0..200 {
            let _ = s.next_sample(&mut rng);
        }
        let (late, ly) = s.snapshot(20, &mut rng);
        let centroid = |xs: &[Vec<f64>], ys: &[usize]| -> Vec<f64> {
            let rows: Vec<&Vec<f64>> = xs
                .iter()
                .zip(ys)
                .filter(|(_, &y)| y == 0)
                .map(|(x, _)| x)
                .collect();
            let mut c = vec![0.0; rows[0].len()];
            for r in &rows {
                for (a, &v) in c.iter_mut().zip(r.iter()) {
                    *a += v;
                }
            }
            for a in &mut c {
                *a /= rows.len() as f64;
            }
            c
        };
        let ce = centroid(&early, &ey);
        let cl = centroid(&late, &ly);
        let shift: f64 = ce
            .iter()
            .zip(&cl)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(shift > 0.2, "prototypes should have moved: {shift}");
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = DriftStream::new(GeneratorConfig::new(), 0, &mut rng);
    }
}
