//! Seeded synthetic classification-data generator.
//!
//! The real LookHD evaluation uses five public datasets (ISOLET, UCI-HAR,
//! PAMAP2, a face corpus, and ExtraSensory) that are not redistributable
//! here. This generator produces class-structured data with the properties
//! those datasets exercise:
//!
//! * **class structure** — per-class latent prototypes with additive
//!   Gaussian noise, so classes are separable to a *tunable* degree;
//! * **class correlation** — a shared latent component makes the trained
//!   class hypervectors highly correlated, reproducing the §IV-C
//!   observation that drives the decorrelation step;
//! * **non-uniform marginals** — a monotone power transform skews the
//!   observed feature distribution (Fig. 3a), which is what separates
//!   equalized from linear quantization (Fig. 4);
//! * **nuisance features** — a fraction of features carry no class signal,
//!   controlling the accuracy ceiling (the EXTRA application's ~70%).

use rand::Rng;

use crate::data::{Dataset, Split};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of features `n`.
    pub n_features: usize,
    /// Number of classes `k`.
    pub n_classes: usize,
    /// Std-dev of per-sample latent Gaussian noise (higher ⇒ harder).
    pub noise: f64,
    /// Weight of the class-shared latent component in `[0, 1)`
    /// (higher ⇒ more correlated class hypervectors).
    pub shared_weight: f64,
    /// Fraction of features that carry class signal, in `(0, 1]`.
    pub informative_fraction: f64,
    /// Exponent of the monotone marginal transform `x ↦ x^p`
    /// (`p > 1` skews mass toward 0, `p = 1` keeps it uniform-ish).
    pub skew_power: f64,
    /// Fraction of samples drawn as *ambiguous*: their informative
    /// features ignore the class prototype entirely. Real sensor datasets
    /// are bimodal — most samples are clean, a minority are genuinely
    /// confusable — and this is what keeps classification margins wide for
    /// the clean majority (the property behind the paper's lossless model
    /// compression) while still hitting a sub-100% accuracy ceiling.
    pub ambiguous_fraction: f64,
}

impl GeneratorConfig {
    /// A moderate default: 64 features, 4 classes, mildly skewed.
    pub fn new() -> Self {
        Self {
            n_features: 64,
            n_classes: 4,
            noise: 0.08,
            shared_weight: 0.5,
            informative_fraction: 1.0,
            skew_power: 3.0,
            ambiguous_fraction: 0.0,
        }
    }

    /// Validates the configuration, panicking with a clear message on
    /// nonsense values.
    fn validate(&self) {
        assert!(self.n_features > 0, "n_features must be positive");
        assert!(self.n_classes > 0, "n_classes must be positive");
        assert!(self.noise >= 0.0, "noise must be non-negative");
        assert!(
            (0.0..1.0).contains(&self.shared_weight),
            "shared_weight must be in [0, 1)"
        );
        assert!(
            self.informative_fraction > 0.0 && self.informative_fraction <= 1.0,
            "informative_fraction must be in (0, 1]"
        );
        assert!(self.skew_power > 0.0, "skew_power must be positive");
        assert!(
            (0.0..1.0).contains(&self.ambiguous_fraction),
            "ambiguous_fraction must be in [0, 1)"
        );
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A standard-normal sample via Box–Muller (keeps the dependency set to
/// plain `rand`).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The synthetic generator. Deterministic per `(config, seed)`.
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
    /// `prototypes[class][feature]`, in latent `[0, 1]` space.
    prototypes: Vec<Vec<f64>>,
    /// Features `≥ informative_cut` carry no class signal.
    informative_cut: usize,
}

impl Generator {
    /// Builds class prototypes from the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range configuration values (see field docs).
    pub fn from_rng<R: Rng + ?Sized>(config: GeneratorConfig, rng: &mut R) -> Self {
        config.validate();
        let shared: Vec<f64> = (0..config.n_features)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let w = config.shared_weight;
        let prototypes = (0..config.n_classes)
            .map(|_| {
                (0..config.n_features)
                    .map(|j| w * shared[j] + (1.0 - w) * rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        let informative_cut = ((config.n_features as f64) * config.informative_fraction)
            .round()
            .max(1.0) as usize;
        Self {
            config,
            prototypes,
            informative_cut,
        }
    }

    /// Samples one feature vector of the given class.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Vec<f64> {
        let proto = &self.prototypes[class];
        let ambiguous = rng.gen_bool(self.config.ambiguous_fraction);
        (0..self.config.n_features)
            .map(|j| {
                let latent = if j < self.informative_cut && !ambiguous {
                    proto[j] + self.config.noise * normal(rng)
                } else {
                    // Nuisance feature, or an ambiguous sample: the class
                    // signal is absent.
                    rng.gen_range(0.0..1.0) + self.config.noise * normal(rng)
                };
                // Monotone skewing transform; clamp keeps the power sane.
                latent.clamp(0.0, 1.5).powf(self.config.skew_power)
            })
            .collect()
    }

    /// Samples a balanced labelled split with `per_class` samples per class.
    pub fn split<R: Rng + ?Sized>(&self, per_class: usize, rng: &mut R) -> Split {
        let mut split = Split::default();
        for class in 0..self.config.n_classes {
            for _ in 0..per_class {
                split.features.push(self.sample(class, rng));
                split.labels.push(class);
            }
        }
        split.shuffle(rng);
        split
    }

    /// Generates a full named dataset.
    pub fn dataset<R: Rng + ?Sized>(
        &self,
        name: &str,
        train_per_class: usize,
        test_per_class: usize,
        rng: &mut R,
    ) -> Dataset {
        Dataset {
            name: name.to_owned(),
            n_features: self.config.n_features,
            n_classes: self.config.n_classes,
            train: self.split(train_per_class, rng),
            test: self.split(test_per_class, rng),
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }
}

/// Random correlated class vectors for the Fig. 15 scalability study:
/// `k` integer vectors of dimension `d`, each `shared_weight`-correlated
/// Gaussian (the paper: "randomly generated class hypervectors with
/// Gaussian distribution, where the classes have a similar correlation as
/// five tested models").
///
/// # Panics
///
/// Panics if `k == 0`, `d == 0`, or `shared_weight ∉ [0, 1)`.
pub fn correlated_class_vectors<R: Rng + ?Sized>(
    k: usize,
    d: usize,
    shared_weight: f64,
    scale: f64,
    rng: &mut R,
) -> Vec<Vec<i32>> {
    assert!(k > 0 && d > 0, "k and d must be positive");
    assert!(
        (0.0..1.0).contains(&shared_weight),
        "shared_weight must be in [0, 1)"
    );
    let shared: Vec<f64> = (0..d).map(|_| normal(rng)).collect();
    let w = shared_weight;
    // Blend so total variance stays ~1: w·shared + √(1-w²)·individual.
    let iw = (1.0 - w * w).sqrt();
    (0..k)
        .map(|_| {
            (0..d)
                .map(|j| ((w * shared[j] + iw * normal(rng)) * scale).round() as i32)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(config: GeneratorConfig, seed: u64) -> (Generator, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Generator::from_rng(config, &mut rng);
        (g, rng)
    }

    #[test]
    fn deterministic_per_seed() {
        let (g1, mut r1) = generator(GeneratorConfig::new(), 7);
        let (g2, mut r2) = generator(GeneratorConfig::new(), 7);
        assert_eq!(g1.sample(0, &mut r1), g2.sample(0, &mut r2));
    }

    #[test]
    fn classes_are_separated_in_latent_space() {
        let cfg = GeneratorConfig {
            noise: 0.02,
            shared_weight: 0.0,
            ..GeneratorConfig::new()
        };
        let (g, mut rng) = generator(cfg, 1);
        // A sample of class 0 is closer (L2) to fresh class-0 samples than
        // to class-1 samples.
        let a = g.sample(0, &mut rng);
        let same = g.sample(0, &mut rng);
        let other = g.sample(1, &mut rng);
        let dist =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum() };
        assert!(dist(&a, &same) < dist(&a, &other));
    }

    #[test]
    fn skew_power_skews_the_marginal() {
        let cfg = GeneratorConfig {
            skew_power: 4.0,
            ..GeneratorConfig::new()
        };
        let (g, mut rng) = generator(cfg, 2);
        let split = g.split(50, &mut rng);
        let values: Vec<f64> = split.features.iter().flatten().copied().collect();
        let below_mid = values.iter().filter(|&&v| v < 0.5).count() as f64 / values.len() as f64;
        assert!(
            below_mid > 0.7,
            "power-4 marginal should pile up below 0.5: {below_mid}"
        );
    }

    #[test]
    fn split_is_balanced_and_shuffled() {
        let (g, mut rng) = generator(GeneratorConfig::new(), 3);
        let split = g.split(10, &mut rng);
        assert_eq!(split.len(), 40);
        assert_eq!(split.class_counts(4), vec![10; 4]);
        // Shuffled: the first 10 labels are not all class 0.
        assert!(split.labels[..10].iter().any(|&y| y != 0));
    }

    #[test]
    fn dataset_has_requested_shape() {
        let (g, mut rng) = generator(GeneratorConfig::new(), 4);
        let d = g.dataset("X", 5, 3, &mut rng);
        assert_eq!(d.train.len(), 20);
        assert_eq!(d.test.len(), 12);
        assert_eq!(d.n_features, 64);
        assert_eq!(d.n_classes, 4);
    }

    #[test]
    fn nuisance_features_are_class_independent() {
        let cfg = GeneratorConfig {
            informative_fraction: 0.5,
            noise: 0.0,
            skew_power: 1.0,
            ..GeneratorConfig::new()
        };
        let (g, mut rng) = generator(cfg, 5);
        // With zero noise, informative features are constant per class while
        // nuisance features vary between draws.
        let a = g.sample(0, &mut rng);
        let b = g.sample(0, &mut rng);
        assert_eq!(a[..32], b[..32]);
        assert_ne!(a[32..], b[32..]);
    }

    #[test]
    fn normal_has_unit_scale() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn correlated_vectors_have_requested_correlation() {
        let mut rng = StdRng::seed_from_u64(7);
        let cos = |a: &[i32], b: &[i32]| -> f64 {
            let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
            let na: f64 = a.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let high = correlated_class_vectors(4, 4000, 0.95, 100.0, &mut rng);
        let low = correlated_class_vectors(4, 4000, 0.1, 100.0, &mut rng);
        assert!(
            cos(&high[0], &high[1]) > 0.8,
            "high corr: {}",
            cos(&high[0], &high[1])
        );
        assert!(
            cos(&low[0], &low[1]) < 0.3,
            "low corr: {}",
            cos(&low[0], &low[1])
        );
    }

    #[test]
    #[should_panic(expected = "shared_weight")]
    fn correlated_vectors_validate_weight() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = correlated_class_vectors(2, 10, 1.0, 1.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "informative_fraction")]
    fn generator_validates_config() {
        let cfg = GeneratorConfig {
            informative_fraction: 0.0,
            ..GeneratorConfig::new()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let _ = Generator::from_rng(cfg, &mut rng);
    }

    #[test]
    fn ambiguous_samples_carry_no_class_signal() {
        let cfg = GeneratorConfig {
            ambiguous_fraction: 0.999,
            noise: 0.0,
            skew_power: 1.0,
            ..GeneratorConfig::new()
        };
        let (g, mut rng) = generator(cfg, 10);
        // With ~all samples ambiguous and zero noise, two class-0 draws
        // still differ everywhere (no prototype influence).
        let a = g.sample(0, &mut rng);
        let b = g.sample(0, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "ambiguous_fraction")]
    fn ambiguous_fraction_is_validated() {
        let cfg = GeneratorConfig {
            ambiguous_fraction: 1.0,
            ..GeneratorConfig::new()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let _ = Generator::from_rng(cfg, &mut rng);
    }
}
