//! Dataset statistics and LookHD configuration hints.
//!
//! Before committing to hyperparameters, a practitioner wants to know what
//! the data looks like: class balance, feature ranges, how skewed the
//! marginal is (decides linear vs equalized quantization), and a
//! reasonable `(q, r, D)` starting point. [`summarize`] computes those
//! from any [`Split`]; the `lookhd inspect` CLI subcommand prints them.

use crate::data::Split;

/// Summary statistics of a labelled split.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSummary {
    /// Number of samples.
    pub n_samples: usize,
    /// Number of features `n`.
    pub n_features: usize,
    /// Number of classes `k` (max label + 1).
    pub n_classes: usize,
    /// Samples per class, indexed by label.
    pub class_counts: Vec<usize>,
    /// Global minimum feature value.
    pub min: f64,
    /// Global maximum feature value.
    pub max: f64,
    /// Global mean feature value.
    pub mean: f64,
    /// Nonparametric skew indicator in `[-1, 1]`:
    /// `(mean − median) / (max − min)` scaled — positive means a long
    /// right tail (mass piled at low values).
    pub skew_indicator: f64,
}

impl DataSummary {
    /// Ratio of the largest to the smallest class count
    /// (`∞` when a class in `0..k` has no samples).
    pub fn imbalance(&self) -> f64 {
        let max = *self.class_counts.iter().max().unwrap_or(&0) as f64;
        let min = *self.class_counts.iter().min().unwrap_or(&0) as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// True when the marginal is skewed enough that equalized quantization
    /// will clearly beat linear (|skew| above 0.1 ≈ the paper's Fig. 3
    /// regime).
    pub fn is_skewed(&self) -> bool {
        self.skew_indicator.abs() > 0.1
    }
}

/// Computes summary statistics over a split.
///
/// Returns `None` for an empty or ragged split.
pub fn summarize(split: &Split) -> Option<DataSummary> {
    if split.is_empty() || split.features.len() != split.labels.len() {
        return None;
    }
    let n_features = split.features[0].len();
    if n_features == 0 || split.features.iter().any(|f| f.len() != n_features) {
        return None;
    }
    let n_classes = split.labels.iter().max().map_or(0, |m| m + 1);
    let class_counts = split.class_counts(n_classes);
    let mut values: Vec<f64> = split.features.iter().flatten().copied().collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
    let count = values.len() as f64;
    let min = values[0];
    let max = *values.last().expect("non-empty");
    let mean = values.iter().sum::<f64>() / count;
    let median = values[values.len() / 2];
    let span = (max - min).max(f64::MIN_POSITIVE);
    let skew_indicator = ((mean - median) / span).clamp(-1.0, 1.0) * 4.0;
    Some(DataSummary {
        n_samples: split.len(),
        n_features,
        n_classes,
        class_counts,
        min,
        max,
        mean,
        skew_indicator: skew_indicator.clamp(-1.0, 1.0),
    })
}

/// A suggested LookHD starting configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigHint {
    /// Suggested quantization level count `q`.
    pub q: usize,
    /// Suggested chunk size `r`.
    pub r: usize,
    /// Suggested dimensionality `D`.
    pub dim: usize,
    /// Whether equalized quantization is recommended over linear.
    pub equalized: bool,
}

/// Derives a starting configuration from a summary, following the paper's
/// guidance: `r = 5` and `q = 4` (or `q = 2` for few-class problems) with
/// equalized quantization on skewed data; `D = 2000` generally, bumped for
/// many-class problems where compression cross-talk needs headroom.
pub fn suggest_config(summary: &DataSummary) -> ConfigHint {
    let q = if summary.n_classes <= 2 { 2 } else { 4 };
    let r = 5usize.min(summary.n_features.max(1));
    let dim = if summary.n_classes > 12 { 4000 } else { 2000 };
    ConfigHint {
        q,
        r,
        dim,
        equalized: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(rows: Vec<(Vec<f64>, usize)>) -> Split {
        let mut s = Split::default();
        for (f, y) in rows {
            s.features.push(f);
            s.labels.push(y);
        }
        s
    }

    #[test]
    fn summary_reports_shape_and_range() {
        let s = split(vec![
            (vec![0.0, 1.0], 0),
            (vec![0.5, 2.0], 1),
            (vec![0.25, 3.0], 0),
        ]);
        let summary = summarize(&s).unwrap();
        assert_eq!(summary.n_samples, 3);
        assert_eq!(summary.n_features, 2);
        assert_eq!(summary.n_classes, 2);
        assert_eq!(summary.class_counts, vec![2, 1]);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 3.0);
        assert!((summary.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skew_indicator_flags_right_tails() {
        // Mass piled at zero with a long right tail.
        let rows: Vec<(Vec<f64>, usize)> = (0..200)
            .map(|i| (vec![(i as f64 / 200.0).powi(4)], i % 2))
            .collect();
        let skewed = summarize(&split(rows)).unwrap();
        assert!(skewed.is_skewed(), "skew = {}", skewed.skew_indicator);
        assert!(skewed.skew_indicator > 0.0);
        // Uniform data is not skewed.
        let rows: Vec<(Vec<f64>, usize)> =
            (0..200).map(|i| (vec![i as f64 / 200.0], i % 2)).collect();
        let uniform = summarize(&split(rows)).unwrap();
        assert!(!uniform.is_skewed(), "skew = {}", uniform.skew_indicator);
    }

    #[test]
    fn degenerate_splits_yield_none() {
        assert!(summarize(&Split::default()).is_none());
        let ragged = split(vec![(vec![1.0, 2.0], 0), (vec![1.0], 1)]);
        assert!(summarize(&ragged).is_none());
    }

    #[test]
    fn missing_class_means_infinite_imbalance() {
        let s = split(vec![(vec![1.0], 0), (vec![2.0], 2)]); // class 1 empty
        let summary = summarize(&s).unwrap();
        assert!(summary.imbalance().is_infinite());
    }

    #[test]
    fn suggestions_follow_paper_guidance() {
        let binary = DataSummary {
            n_samples: 100,
            n_features: 3,
            n_classes: 2,
            class_counts: vec![50, 50],
            min: 0.0,
            max: 1.0,
            mean: 0.5,
            skew_indicator: 0.0,
        };
        let hint = suggest_config(&binary);
        assert_eq!(hint.q, 2);
        assert_eq!(hint.r, 3); // clamped to n
        assert_eq!(hint.dim, 2000);
        assert!(hint.equalized);

        let many = DataSummary {
            n_classes: 26,
            n_features: 617,
            ..binary
        };
        let hint = suggest_config(&many);
        assert_eq!(hint.q, 4);
        assert_eq!(hint.r, 5);
        assert_eq!(hint.dim, 4000);
    }
}
