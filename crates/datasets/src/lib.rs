//! # lookhd-datasets — synthetic stand-ins for the LookHD evaluation data
//!
//! The paper evaluates on ISOLET (SPEECH), UCI-HAR (ACTIVITY), PAMAP2
//! (PHYSICAL), a face corpus (FACE), and ExtraSensory (EXTRA). Those
//! datasets are not redistributable here, so this crate provides seeded
//! synthetic generators that reproduce their *shape* (feature count, class
//! count, non-uniform feature marginals, class correlation) and their
//! approximate difficulty. See the repository DESIGN.md for the
//! substitution rationale.
//!
//! * [`data`] — [`data::Dataset`] / [`data::Split`] containers;
//! * [`synthetic`] — the configurable class-structured generator;
//! * [`apps`] — the five paper application profiles ([`apps::App`]);
//! * [`csv`] — dependency-free CSV import/export, so the real datasets can
//!   be dropped in when available;
//! * [`drift`] — concept-drift streams for online-learning studies;
//! * [`summary`] — dataset statistics and LookHD configuration hints.
//!
//! ## Example
//!
//! ```
//! use lookhd_datasets::apps::App;
//!
//! let dataset = App::Physical.profile().generate_small(42);
//! assert_eq!(dataset.n_features, 52);
//! assert_eq!(dataset.n_classes, 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod csv;
pub mod data;
pub mod drift;
pub mod summary;
pub mod synthetic;

pub use apps::{App, AppProfile};
pub use data::{Dataset, Split};
pub use synthetic::normal as standard_normal;
