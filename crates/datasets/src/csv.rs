//! Minimal CSV import/export for labelled feature data.
//!
//! The synthetic generators stand in for the paper's datasets, but anyone
//! holding the real ISOLET / UCI-HAR / PAMAP2 files can run this
//! reproduction on them: this module parses `feature,…,feature,label` rows
//! (labels in the last column) with no external dependencies.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::data::{Dataset, Split};

/// Errors produced while parsing CSV data.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A cell failed to parse, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Structurally invalid data (empty file, ragged rows, …).
    Invalid(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
            Self::Invalid(message) => write!(f, "invalid csv data: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses `feature,…,feature,label` rows into a [`Split`].
///
/// Blank lines are skipped. A first line whose cells are not all numeric
/// is treated as a header and skipped. Labels must be non-negative
/// integers in the final column.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] with a line number for malformed cells and
/// [`CsvError::Invalid`] for empty or ragged data.
pub fn parse_split(text: &str) -> Result<Split, CsvError> {
    let mut split = Split::default();
    let mut width: Option<usize> = None;
    let mut header_allowed = true;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if cells.len() < 2 {
            return Err(CsvError::Parse {
                line,
                message: "need at least one feature and a label".into(),
            });
        }
        // Header detection: only the very first non-blank row may be one.
        let numeric = cells.iter().all(|c| c.parse::<f64>().is_ok());
        if !numeric {
            if header_allowed {
                header_allowed = false;
                continue; // header
            }
            return Err(CsvError::Parse {
                line,
                message: "non-numeric cell".into(),
            });
        }
        header_allowed = false;
        match width {
            None => width = Some(cells.len()),
            Some(w) if w != cells.len() => {
                return Err(CsvError::Invalid(format!(
                    "ragged rows: line {line} has {} cells, expected {w}",
                    cells.len()
                )));
            }
            _ => {}
        }
        let (feature_cells, label_cell) = cells.split_at(cells.len() - 1);
        let features: Vec<f64> = feature_cells
            .iter()
            .map(|c| c.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| CsvError::Parse {
                line,
                message: format!("bad feature: {e}"),
            })?;
        let label_value: f64 = label_cell[0].parse().map_err(|e| CsvError::Parse {
            line,
            message: format!("bad label: {e}"),
        })?;
        if label_value < 0.0 || label_value.fract() != 0.0 {
            return Err(CsvError::Parse {
                line,
                message: format!("label must be a non-negative integer, got {label_value}"),
            });
        }
        split.features.push(features);
        split.labels.push(label_value as usize);
    }
    if split.is_empty() {
        return Err(CsvError::Invalid("no data rows".into()));
    }
    Ok(split)
}

/// Parses label-free rows (`feature,…,feature`) into a feature matrix —
/// the query-file format of the CLI's `predict` subcommand.
///
/// # Errors
///
/// Same conventions as [`parse_split`], minus the label column.
pub fn parse_features(text: &str) -> Result<Vec<Vec<f64>>, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    let mut header_allowed = true;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let numeric = cells.iter().all(|c| c.parse::<f64>().is_ok());
        if !numeric {
            if header_allowed {
                header_allowed = false;
                continue;
            }
            return Err(CsvError::Parse {
                line,
                message: "non-numeric cell".into(),
            });
        }
        header_allowed = false;
        match width {
            None => width = Some(cells.len()),
            Some(w) if w != cells.len() => {
                return Err(CsvError::Invalid(format!(
                    "ragged rows: line {line} has {} cells, expected {w}",
                    cells.len()
                )));
            }
            _ => {}
        }
        let features: Vec<f64> = cells
            .iter()
            .map(|c| c.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| CsvError::Parse {
                line,
                message: format!("bad feature: {e}"),
            })?;
        rows.push(features);
    }
    if rows.is_empty() {
        return Err(CsvError::Invalid("no data rows".into()));
    }
    Ok(rows)
}

/// Loads label-free feature rows from a CSV file.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load_features<P: AsRef<Path>>(path: P) -> Result<Vec<Vec<f64>>, CsvError> {
    parse_features(&fs::read_to_string(path)?)
}

/// Loads a split from a CSV file.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load_split<P: AsRef<Path>>(path: P) -> Result<Split, CsvError> {
    parse_split(&fs::read_to_string(path)?)
}

/// Loads a full dataset from separate train/test CSV files.
///
/// # Errors
///
/// Returns [`CsvError::Invalid`] when the two files' feature widths
/// disagree, plus I/O and parse errors.
pub fn load_dataset<P: AsRef<Path>>(name: &str, train: P, test: P) -> Result<Dataset, CsvError> {
    let train = load_split(train)?;
    let test = load_split(test)?;
    let n_features = train.features[0].len();
    if test.features.iter().any(|f| f.len() != n_features) {
        return Err(CsvError::Invalid(
            "train and test feature widths disagree".into(),
        ));
    }
    let n_classes = train
        .labels
        .iter()
        .chain(&test.labels)
        .max()
        .map_or(0, |m| m + 1);
    Ok(Dataset {
        name: name.to_owned(),
        n_features,
        n_classes,
        train,
        test,
    })
}

/// Serializes a split back to CSV (`feature,…,label` rows, no header).
pub fn to_csv(split: &Split) -> String {
    let mut out = String::new();
    for (features, label) in split.features.iter().zip(&split.labels) {
        for f in features {
            out.push_str(&format!("{f},"));
        }
        out.push_str(&format!("{label}\n"));
    }
    out
}

/// Writes a split to a CSV file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_split<P: AsRef<Path>>(split: &Split, path: P) -> Result<(), CsvError> {
    fs::write(path, to_csv(split))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_rows() {
        let split = parse_split("1.0,2.0,0\n3.5,-1.0,1\n").unwrap();
        assert_eq!(split.len(), 2);
        assert_eq!(split.features[0], vec![1.0, 2.0]);
        assert_eq!(split.labels, vec![0, 1]);
    }

    #[test]
    fn skips_header_and_blank_lines() {
        let split = parse_split("f1,f2,label\n\n1,2,0\n\n3,4,1\n").unwrap();
        assert_eq!(split.len(), 2);
    }

    #[test]
    fn rejects_bad_cells_with_line_numbers() {
        let err = parse_split("1,2,0\n1,x,1\n").unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_ragged_and_empty() {
        assert!(matches!(
            parse_split("1,2,0\n1,0\n"),
            Err(CsvError::Invalid(_))
        ));
        assert!(matches!(parse_split("\n\n"), Err(CsvError::Invalid(_))));
        assert!(matches!(parse_split("5\n"), Err(CsvError::Parse { .. })));
    }

    #[test]
    fn rejects_fractional_or_negative_labels() {
        assert!(parse_split("1,2,0.5\n").is_err());
        assert!(parse_split("1,2,-1\n").is_err());
    }

    #[test]
    fn csv_round_trips() {
        let split = parse_split("1.5,2,3\n-0.25,4,0\n").unwrap();
        let text = to_csv(&split);
        let back = parse_split(&text).unwrap();
        assert_eq!(back, split);
    }

    #[test]
    fn file_round_trip_and_dataset_assembly() {
        let dir = std::env::temp_dir().join("lookhd_csv_test");
        fs::create_dir_all(&dir).unwrap();
        let train_path = dir.join("train.csv");
        let test_path = dir.join("test.csv");
        let split = parse_split("0.1,0.9,0\n0.8,0.2,1\n").unwrap();
        save_split(&split, &train_path).unwrap();
        save_split(&split, &test_path).unwrap();
        let ds = load_dataset("TOY", &train_path, &test_path).unwrap();
        assert_eq!(ds.n_features, 2);
        assert_eq!(ds.n_classes, 2);
        assert_eq!(ds.train.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn display_messages_are_informative() {
        let err = parse_split("a,b\n1,c\n").unwrap_err();
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn parse_features_handles_label_free_rows() {
        let rows = parse_features("f1,f2\n1.0,2.0\n3.0,4.0\n").unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(parse_features("").is_err());
        assert!(parse_features("1,2\n1\n").is_err());
    }
}
