//! Binary (de)serialization of trained models.
//!
//! Embedded deployments flash a trained model into device storage; this
//! module provides a tiny versioned little-endian format for
//! [`DenseHv`] and [`ClassModel`] with no external dependencies.
//!
//! Format (`HDC1`): magic, then `u32` counts followed by `i32` payloads,
//! all little-endian.
//!
//! ## Hardened format limits
//!
//! Length headers come from untrusted storage, so readers treat them as
//! hostile until proven otherwise:
//!
//! * dimensions are capped at [`MAX_DIM`] and class counts at
//!   [`MAX_CLASSES`] — far above any real configuration, but small enough
//!   that a corrupt header cannot request a multi-GB allocation;
//! * preallocation is additionally bounded (readers reserve at most
//!   [`PREALLOC_LIMIT`] elements up front), so even an in-cap lying
//!   header fails with `UnexpectedEof` while buffers are still small;
//! * writers reject values that exceed the caps (or would silently
//!   truncate into the `u32` headers) instead of producing a
//!   corrupt-but-well-formed artifact.

use std::io::{self, Read, Write};

use crate::hv::DenseHv;
use crate::model::ClassModel;

const MAGIC: &[u8; 4] = b"HDC1";

/// Largest hypervector dimensionality the `HDC1` format accepts (2^20).
pub const MAX_DIM: usize = 1 << 20;

/// Largest class count the `HDC1` format accepts (2^16).
pub const MAX_CLASSES: usize = 1 << 16;

/// Readers never `Vec::with_capacity` more than this many elements on the
/// strength of a length header alone; larger (valid) payloads grow
/// incrementally, so truncated streams fail before large allocations.
pub const PREALLOC_LIMIT: usize = 1 << 16;

/// Converts a count to the `u32` the format stores, rejecting values above
/// `cap` with `InvalidData` naming the field.
fn checked_u32(what: &str, value: usize, cap: usize) -> io::Result<u32> {
    if value > cap.min(u32::MAX as usize) {
        return Err(invalid(&format!(
            "{what} {value} exceeds the serialized format's limit of {cap}"
        )));
    }
    Ok(value as u32)
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Writes a dense hypervector.
///
/// # Errors
///
/// Returns `InvalidData` when the dimensionality exceeds [`MAX_DIM`] and
/// propagates I/O errors from the writer.
pub fn write_dense<W: Write>(w: &mut W, hv: &DenseHv) -> io::Result<()> {
    write_u32(w, checked_u32("dim", hv.dim(), MAX_DIM)?)?;
    for &v in hv.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a dense hypervector written by [`write_dense`].
///
/// # Errors
///
/// Returns `InvalidData` for a malformed stream and propagates I/O errors.
pub fn read_dense<R: Read>(r: &mut R) -> io::Result<DenseHv> {
    let dim = read_u32(r)? as usize;
    if dim == 0 {
        return Err(invalid("zero-dimensional hypervector"));
    }
    if dim > MAX_DIM {
        return Err(invalid(&format!(
            "dim {dim} exceeds the format limit of {MAX_DIM}"
        )));
    }
    // The header is untrusted: reserve a bounded amount and let larger
    // payloads grow as bytes actually arrive, so a lying header hits
    // `UnexpectedEof` instead of a huge allocation.
    let mut values = Vec::with_capacity(dim.min(PREALLOC_LIMIT));
    let mut buf = [0u8; 4];
    for _ in 0..dim {
        r.read_exact(&mut buf)?;
        values.push(i32::from_le_bytes(buf));
    }
    Ok(DenseHv::from_vec(values))
}

/// Writes a class model (magic + class count + class hypervectors).
///
/// # Errors
///
/// Returns `InvalidData` when the class count exceeds [`MAX_CLASSES`] or
/// the dimensionality exceeds [`MAX_DIM`], and propagates I/O errors from
/// the writer.
pub fn write_model<W: Write>(w: &mut W, model: &ClassModel) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, checked_u32("n_classes", model.n_classes(), MAX_CLASSES)?)?;
    for c in model.classes() {
        write_dense(w, c)?;
    }
    Ok(())
}

/// Reads a class model written by [`write_model`].
///
/// # Errors
///
/// Returns `InvalidData` for a wrong magic, class/dimension mismatch, or a
/// truncated stream.
pub fn read_model<R: Read>(r: &mut R) -> io::Result<ClassModel> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic: not an HDC1 model"));
    }
    let k = read_u32(r)? as usize;
    if k == 0 {
        return Err(invalid("model with zero classes"));
    }
    if k > MAX_CLASSES {
        return Err(invalid(&format!(
            "class count {k} exceeds the format limit of {MAX_CLASSES}"
        )));
    }
    let mut classes = Vec::with_capacity(k.min(PREALLOC_LIMIT));
    for _ in 0..k {
        classes.push(read_dense(r)?);
    }
    ClassModel::from_classes(classes).map_err(|e| invalid(&e.to_string()))
}

/// Serializes a model to a byte vector.
///
/// # Errors
///
/// Same conditions as [`write_model`] (over-cap dimensions or class
/// counts); plain I/O cannot fail when writing to a `Vec`.
pub fn model_to_bytes(model: &ClassModel) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(8 + model.n_classes() * (4 + model.dim() * 4));
    write_model(&mut out, model)?;
    Ok(out)
}

/// Deserializes a model from bytes.
///
/// # Errors
///
/// Same as [`read_model`].
pub fn model_from_bytes(bytes: &[u8]) -> io::Result<ClassModel> {
    read_model(&mut io::Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ClassModel {
        ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![1, -2, 3, i32::MAX]),
            DenseHv::from_vec(vec![0, 5, -7, i32::MIN]),
        ])
        .unwrap()
    }

    #[test]
    fn model_round_trips() {
        let model = toy_model();
        let bytes = model_to_bytes(&model).unwrap();
        let back = model_from_bytes(&bytes).unwrap();
        assert_eq!(back.n_classes(), 2);
        for c in 0..2 {
            assert_eq!(back.class(c), model.class(c));
        }
    }

    #[test]
    fn dense_round_trips() {
        let hv = DenseHv::from_vec(vec![-1, 0, 42]);
        let mut buf = Vec::new();
        write_dense(&mut buf, &hv).unwrap();
        let back = read_dense(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, hv);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = model_to_bytes(&toy_model()).unwrap();
        bytes[0] = b'X';
        assert!(model_from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let bytes = model_to_bytes(&toy_model()).unwrap();
        assert!(model_from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(model_from_bytes(&bytes[..6]).is_err());
    }

    #[test]
    fn predictions_survive_round_trip() {
        let model = toy_model();
        let back = model_from_bytes(&model_to_bytes(&model).unwrap()).unwrap();
        let q = DenseHv::from_vec(vec![1, -2, 3, 0]);
        assert_eq!(model.predict(&q).unwrap(), back.predict(&q).unwrap());
    }

    #[test]
    fn huge_length_headers_error_instead_of_allocating() {
        // dim header claiming 4 billion values: rejected by the cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_dense(&mut io::Cursor::new(&bytes)).is_err());
        // In-cap but lying header: EOF before any large allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_DIM as u32).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(read_dense(&mut io::Cursor::new(&bytes)).is_err());
        // Model header claiming 4 billion classes: rejected by the cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(model_from_bytes(&bytes).is_err());
    }
}
