//! Binary (de)serialization of trained models.
//!
//! Embedded deployments flash a trained model into device storage; this
//! module provides a tiny versioned little-endian format for
//! [`DenseHv`] and [`ClassModel`] with no external dependencies.
//!
//! Format (`HDC1`): magic, then `u32` counts followed by `i32` payloads,
//! all little-endian.

use std::io::{self, Read, Write};

use crate::hv::DenseHv;
use crate::model::ClassModel;

const MAGIC: &[u8; 4] = b"HDC1";

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Writes a dense hypervector.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dense<W: Write>(w: &mut W, hv: &DenseHv) -> io::Result<()> {
    write_u32(w, hv.dim() as u32)?;
    for &v in hv.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a dense hypervector written by [`write_dense`].
///
/// # Errors
///
/// Returns `InvalidData` for a malformed stream and propagates I/O errors.
pub fn read_dense<R: Read>(r: &mut R) -> io::Result<DenseHv> {
    let dim = read_u32(r)? as usize;
    if dim == 0 {
        return Err(invalid("zero-dimensional hypervector"));
    }
    let mut values = Vec::with_capacity(dim);
    let mut buf = [0u8; 4];
    for _ in 0..dim {
        r.read_exact(&mut buf)?;
        values.push(i32::from_le_bytes(buf));
    }
    Ok(DenseHv::from_vec(values))
}

/// Writes a class model (magic + class count + class hypervectors).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_model<W: Write>(w: &mut W, model: &ClassModel) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, model.n_classes() as u32)?;
    for c in model.classes() {
        write_dense(w, c)?;
    }
    Ok(())
}

/// Reads a class model written by [`write_model`].
///
/// # Errors
///
/// Returns `InvalidData` for a wrong magic, class/dimension mismatch, or a
/// truncated stream.
pub fn read_model<R: Read>(r: &mut R) -> io::Result<ClassModel> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic: not an HDC1 model"));
    }
    let k = read_u32(r)? as usize;
    if k == 0 {
        return Err(invalid("model with zero classes"));
    }
    let classes: Vec<DenseHv> = (0..k).map(|_| read_dense(r)).collect::<io::Result<_>>()?;
    ClassModel::from_classes(classes).map_err(|e| invalid(&e.to_string()))
}

/// Serializes a model to a byte vector.
pub fn model_to_bytes(model: &ClassModel) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + model.n_classes() * (4 + model.dim() * 4));
    write_model(&mut out, model).expect("writing to a Vec cannot fail");
    out
}

/// Deserializes a model from bytes.
///
/// # Errors
///
/// Same as [`read_model`].
pub fn model_from_bytes(bytes: &[u8]) -> io::Result<ClassModel> {
    read_model(&mut io::Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ClassModel {
        ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![1, -2, 3, i32::MAX]),
            DenseHv::from_vec(vec![0, 5, -7, i32::MIN]),
        ])
        .unwrap()
    }

    #[test]
    fn model_round_trips() {
        let model = toy_model();
        let bytes = model_to_bytes(&model);
        let back = model_from_bytes(&bytes).unwrap();
        assert_eq!(back.n_classes(), 2);
        for c in 0..2 {
            assert_eq!(back.class(c), model.class(c));
        }
    }

    #[test]
    fn dense_round_trips() {
        let hv = DenseHv::from_vec(vec![-1, 0, 42]);
        let mut buf = Vec::new();
        write_dense(&mut buf, &hv).unwrap();
        let back = read_dense(&mut io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, hv);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = model_to_bytes(&toy_model());
        bytes[0] = b'X';
        assert!(model_from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let bytes = model_to_bytes(&toy_model());
        assert!(model_from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(model_from_bytes(&bytes[..6]).is_err());
    }

    #[test]
    fn predictions_survive_round_trip() {
        let model = toy_model();
        let back = model_from_bytes(&model_to_bytes(&model)).unwrap();
        let q = DenseHv::from_vec(vec![1, -2, 3, 0]);
        assert_eq!(model.predict(&q).unwrap(), back.predict(&q).unwrap());
    }
}
