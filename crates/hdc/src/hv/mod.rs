//! Hypervector types: bit-packed bipolar vectors and dense integer vectors.

mod bipolar;
mod dense;

pub use bipolar::BipolarHv;
pub use dense::DenseHv;
