//! Dense integer hypervectors.
//!
//! Encodings and class models in (non-binary) HDC are integer-valued
//! accumulations of bipolar hypervectors (Eq. 1 of the paper). [`DenseHv`]
//! is a `D`-dimensional vector of `i32` counters with the fused operations
//! the encoders and trainers need: add a (rotated / bound / scaled) bipolar
//! hypervector without materializing intermediates.

use std::fmt;

use super::BipolarHv;

/// A dense integer hypervector in `ℤ^D`.
///
/// # Examples
///
/// ```
/// use hdc::hv::{BipolarHv, DenseHv};
///
/// let l = BipolarHv::from_values(&[1, -1, 1, 1]);
/// let mut acc = DenseHv::zeros(4);
/// acc.add_bipolar(&l);
/// acc.add_rotated_bipolar(&l, 1); // adds [1, 1, -1, 1]
/// assert_eq!(acc.as_slice(), &[2, 0, 0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseHv {
    values: Vec<i32>,
}

impl DenseHv {
    /// Creates the zero hypervector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        Self {
            values: vec![0; dim],
        }
    }

    /// Wraps an explicit value vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_vec(values: Vec<i32>) -> Self {
        assert!(!values.is_empty(), "hypervector dimension must be positive");
        Self { values }
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The raw values.
    pub fn as_slice(&self) -> &[i32] {
        &self.values
    }

    /// Mutable access to the raw values (for noise injection and tests).
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.values
    }

    /// Consumes the hypervector, returning the underlying vector.
    pub fn into_vec(self) -> Vec<i32> {
        self.values
    }

    /// Value at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> i32 {
        self.values[i]
    }

    /// `self += other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_assign_hv(&mut self, other: &Self) {
        assert_eq!(self.dim(), other.dim(), "add requires equal dimensions");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// `self -= other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub_assign_hv(&mut self, other: &Self) {
        assert_eq!(self.dim(), other.dim(), "sub requires equal dimensions");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a -= b;
        }
    }

    /// `self += w · other` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_scaled_hv(&mut self, other: &Self, w: i32) {
        assert_eq!(self.dim(), other.dim(), "add requires equal dimensions");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += w * b;
        }
    }

    /// `self += hv` where `hv` is bipolar.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_bipolar(&mut self, hv: &BipolarHv) {
        assert_eq!(self.dim(), hv.dim(), "add requires equal dimensions");
        for (i, a) in self.values.iter_mut().enumerate() {
            *a += hv.value(i);
        }
    }

    /// `self -= hv` where `hv` is bipolar.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub_bipolar(&mut self, hv: &BipolarHv) {
        assert_eq!(self.dim(), hv.dim(), "sub requires equal dimensions");
        for (i, a) in self.values.iter_mut().enumerate() {
            *a -= hv.value(i);
        }
    }

    /// `self += ρ^rot(hv)` — the fused hot-path of the baseline permutation
    /// encoder (Eq. 1): adds the bipolar hypervector rotated by `rot`
    /// without allocating the rotated copy.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_rotated_bipolar(&mut self, hv: &BipolarHv, rot: usize) {
        let d = self.dim();
        assert_eq!(d, hv.dim(), "add requires equal dimensions");
        let rot = rot % d;
        // out[i] = hv[(i + d - rot) % d]; iterate source index to stay linear.
        for (i, a) in self.values.iter_mut().enumerate() {
            let src = if i >= rot { i - rot } else { i + d - rot };
            *a += hv.value(src);
        }
    }

    /// `self += w · (key ⊙ other)` — fused bind-scale-accumulate used by the
    /// LookHD chunk aggregation and model compression (`P ⊙ H` terms).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_bound_scaled(&mut self, key: &BipolarHv, other: &Self, w: i32) {
        assert_eq!(self.dim(), key.dim(), "bind requires equal dimensions");
        assert_eq!(self.dim(), other.dim(), "bind requires equal dimensions");
        for (i, a) in self.values.iter_mut().enumerate() {
            *a += w * key.value(i) * other.values[i];
        }
    }

    /// Returns `key ⊙ self` (element-wise sign flips; no multiplier needed
    /// in hardware — §V-A "negation block").
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn bound(&self, key: &BipolarHv) -> Self {
        assert_eq!(self.dim(), key.dim(), "bind requires equal dimensions");
        let values = self
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| if key.is_negative(i) { -v } else { v })
            .collect();
        Self { values }
    }

    /// Dot product with another dense hypervector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &Self) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dot requires equal dimensions");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum()
    }

    /// Dot product with a bipolar hypervector (sign-flipped accumulation).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot_bipolar(&self, hv: &BipolarHv) -> i64 {
        assert_eq!(self.dim(), hv.dim(), "dot requires equal dimensions");
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if hv.is_negative(i) {
                    -(v as i64)
                } else {
                    v as i64
                }
            })
            .sum()
    }

    /// Euclidean norm `‖self‖`.
    ///
    /// Accumulates in `f64` so extreme component magnitudes cannot
    /// overflow the integer dot product.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| {
                let f = v as f64;
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine similarity `self·other / (‖self‖‖other‖)`.
    ///
    /// Returns `0.0` when either vector is all-zero.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) as f64 / denom
    }

    /// Element-wise sign, breaking ties (zero) toward `+1`. This is the
    /// majority-threshold binarization used by binary HDC models.
    pub fn sign(&self) -> BipolarHv {
        let mut out = BipolarHv::ones(self.dim());
        for (i, &v) in self.values.iter().enumerate() {
            if v < 0 {
                out.set(i, -1);
            }
        }
        out
    }

    /// Largest absolute element value; the hardware model uses this to size
    /// datapath bit-widths.
    pub fn max_abs(&self) -> i32 {
        self.values.iter().map(|v| v.abs()).max().unwrap_or(0)
    }
}

impl From<&BipolarHv> for DenseHv {
    fn from(hv: &BipolarHv) -> Self {
        Self {
            values: hv.to_values(),
        }
    }
}

impl FromIterator<i32> for DenseHv {
    fn from_iter<T: IntoIterator<Item = i32>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for DenseHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DenseHv(D={}, {:?}",
            self.dim(),
            &self.values[..self.dim().min(8)]
        )?;
        if self.dim() > 8 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_from_vec() {
        let z = DenseHv::zeros(5);
        assert_eq!(z.as_slice(), &[0, 0, 0, 0, 0]);
        let v = DenseHv::from_vec(vec![1, -2, 3]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.get(1), -2);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn empty_from_vec_panics() {
        let _ = DenseHv::from_vec(vec![]);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let hv = BipolarHv::random(64, &mut rng);
        let mut acc = DenseHv::zeros(64);
        acc.add_bipolar(&hv);
        acc.sub_bipolar(&hv);
        assert_eq!(acc, DenseHv::zeros(64));
    }

    #[test]
    fn add_rotated_matches_materialized_rotation() {
        let mut rng = StdRng::seed_from_u64(2);
        let hv = BipolarHv::random(101, &mut rng);
        for rot in [0usize, 1, 50, 100, 101, 150] {
            let mut fused = DenseHv::zeros(101);
            fused.add_rotated_bipolar(&hv, rot);
            let mut explicit = DenseHv::zeros(101);
            explicit.add_bipolar(&hv.rotated(rot));
            assert_eq!(fused, explicit, "rot={rot}");
        }
    }

    #[test]
    fn bound_matches_elementwise_product() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = BipolarHv::random(40, &mut rng);
        let v = DenseHv::from_vec((0..40).map(|i| i - 20).collect());
        let b = v.bound(&key);
        for i in 0..40 {
            assert_eq!(b.get(i), key.value(i) * v.get(i));
        }
        // binding twice with the same key is the identity (P ⊙ P = 1)
        assert_eq!(b.bound(&key), v);
    }

    #[test]
    fn add_bound_scaled_matches_manual() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = BipolarHv::random(30, &mut rng);
        let v = DenseHv::from_vec((0..30).collect());
        let mut acc = DenseHv::from_vec(vec![7; 30]);
        acc.add_bound_scaled(&key, &v, 3);
        for i in 0..30 {
            assert_eq!(acc.get(i), 7 + 3 * key.value(i) * v.get(i));
        }
    }

    #[test]
    fn dot_and_dot_bipolar_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = BipolarHv::random(64, &mut rng);
        let v = DenseHv::from_vec((0..64).map(|i| (i % 9) - 4).collect());
        assert_eq!(v.dot_bipolar(&key), v.dot(&DenseHv::from(&key)));
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        let v = DenseHv::from_vec(vec![1, 2, 3, 4]);
        let mut w = v.clone();
        w.add_assign_hv(&v); // w = 2v
        assert!((v.cosine(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let v = DenseHv::from_vec(vec![1, 2, 3]);
        let z = DenseHv::zeros(3);
        assert_eq!(v.cosine(&z), 0.0);
    }

    #[test]
    fn sign_thresholds_at_zero() {
        let v = DenseHv::from_vec(vec![5, -3, 0, -1]);
        assert_eq!(v.sign().to_values(), vec![1, -1, 1, -1]);
    }

    #[test]
    fn add_scaled_hv_accumulates_counters() {
        // Counter-based training multiplies counter values into pre-stored
        // hypervectors (§III-D step E); this is that kernel.
        let lut_row = DenseHv::from_vec(vec![1, -1, 2, 0]);
        let mut acc = DenseHv::zeros(4);
        acc.add_scaled_hv(&lut_row, 5);
        assert_eq!(acc.as_slice(), &[5, -5, 10, 0]);
    }

    #[test]
    fn max_abs_reports_extreme() {
        let v = DenseHv::from_vec(vec![3, -17, 5]);
        assert_eq!(v.max_abs(), 17);
    }

    #[test]
    fn norm_matches_hand_computation() {
        let v = DenseHv::from_vec(vec![3, 4]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
    }
}
