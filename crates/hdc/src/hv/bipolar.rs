//! Bit-packed bipolar hypervectors.
//!
//! A bipolar hypervector is a point of `{-1, +1}^D`. We store one bit per
//! dimension in `u64` words with the convention `bit == 0 ⇔ +1` and
//! `bit == 1 ⇔ -1`, so that *binding* (element-wise multiplication) is a
//! plain XOR and the dot product reduces to a popcount:
//!
//! ```text
//! a · b = D - 2 · popcount(a ⊕ b)
//! ```
//!
//! This mirrors the paper's hardware, which represents bipolar position
//! hypervectors as binary words and implements multiplication with negation
//! blocks (§V-A, §V-B).

use std::fmt;

use rand::Rng;

const WORD_BITS: usize = 64;

/// A bit-packed bipolar hypervector in `{-1, +1}^D`.
///
/// # Examples
///
/// ```
/// use hdc::hv::BipolarHv;
///
/// let a = BipolarHv::from_values(&[1, -1, 1, 1]);
/// let b = BipolarHv::from_values(&[1, 1, -1, 1]);
/// // Binding is element-wise multiplication.
/// let c = a.bind(&b);
/// assert_eq!(c.to_values(), vec![1, -1, -1, 1]);
/// // Dot product counts agreements minus disagreements.
/// assert_eq!(a.dot(&b), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BipolarHv {
    dim: usize,
    words: Vec<u64>,
}

impl BipolarHv {
    /// Creates the all `+1` hypervector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn ones(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let words = vec![0u64; dim.div_ceil(WORD_BITS)];
        Self { dim, words }
    }

    /// Samples a uniformly random bipolar hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let mut hv = Self::ones(dim);
        for w in &mut hv.words {
            *w = rng.gen();
        }
        hv.mask_tail();
        hv
    }

    /// Builds a hypervector from explicit `+1`/`-1` values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains anything other than `1`/`-1`.
    pub fn from_values(values: &[i32]) -> Self {
        let mut hv = Self::ones(values.len());
        for (i, &v) in values.iter().enumerate() {
            hv.set(i, v);
        }
        hv
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the `+1`/`-1` value at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn value(&self, i: usize) -> i32 {
        assert!(
            i < self.dim,
            "dimension {i} out of range for D={}",
            self.dim
        );
        if self.bit(i) {
            -1
        } else {
            1
        }
    }

    /// Sets dimension `i` to the given `+1`/`-1` value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()` or `v` is not `1` or `-1`.
    pub fn set(&mut self, i: usize, v: i32) {
        assert!(
            i < self.dim,
            "dimension {i} out of range for D={}",
            self.dim
        );
        match v {
            1 => self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS)),
            -1 => self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS),
            _ => panic!("bipolar value must be +1 or -1, got {v}"),
        }
    }

    #[inline]
    fn bit(&self, i: usize) -> bool {
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// True when dimension `i` holds `-1`. Used by hardware-style negation
    /// blocks that branch on the raw bit instead of multiplying.
    #[inline]
    pub fn is_negative(&self, i: usize) -> bool {
        self.bit(i)
    }

    /// Flips (negates) the value at each listed dimension.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn flip(&mut self, indices: &[usize]) {
        for &i in indices {
            assert!(
                i < self.dim,
                "dimension {i} out of range for D={}",
                self.dim
            );
            self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        }
    }

    /// Returns the element-wise negation `-self`.
    pub fn negated(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Binds (element-wise multiplies) two hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn bind(&self, other: &Self) -> Self {
        assert_eq!(self.dim, other.dim, "bind requires equal dimensions");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a ^ b)
            .collect();
        Self {
            dim: self.dim,
            words,
        }
    }

    /// Dot product `Σ_d a[d]·b[d]`, computed via popcount.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &Self) -> i64 {
        assert_eq!(self.dim, other.dim, "dot requires equal dimensions");
        let disagree: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        self.dim as i64 - 2 * disagree as i64
    }

    /// Hamming distance: the number of dimensions where the vectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.dim, other.dim, "hamming requires equal dimensions");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Cosine similarity of two bipolar hypervectors (both have norm `√D`).
    pub fn cosine(&self, other: &Self) -> f64 {
        self.dot(other) as f64 / self.dim as f64
    }

    /// The circular permutation `ρ^k`: `out[i] = self[(i + D - k) % D]`,
    /// i.e. a rotational shift of `k` positions toward higher indices.
    ///
    /// `ρ^D` is the identity, and `rotated(a).rotated(b) == rotated(a + b)`.
    /// Word-aligned rotations take the fast word-shuffle path; others fall
    /// back to a word-pair shift (still ~64× faster than bit-by-bit).
    pub fn rotated(&self, k: usize) -> Self {
        let d = self.dim;
        let k = k % d;
        if k == 0 {
            return self.clone();
        }
        if d.is_multiple_of(WORD_BITS) {
            return self.rotated_word_path(k);
        }
        // Dimensions that do not fill the last word: bit-by-bit reference
        // path (rare; encoders use word-multiple dimensions in practice).
        let mut out = Self::ones(d);
        for i in 0..d {
            let src = (i + d - k) % d;
            if self.bit(src) {
                out.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        out
    }

    /// Rotation for word-multiple dimensions: rotate the word array by
    /// `k / 64` words, then shift the whole array by `k % 64` bits with
    /// carry between adjacent words.
    fn rotated_word_path(&self, k: usize) -> Self {
        let n_words = self.words.len();
        let word_shift = (k / WORD_BITS) % n_words;
        let bit_shift = k % WORD_BITS;
        let mut rotated_words = vec![0u64; n_words];
        for (i, slot) in rotated_words.iter_mut().enumerate() {
            *slot = self.words[(i + n_words - word_shift) % n_words];
        }
        if bit_shift > 0 {
            let mut shifted = vec![0u64; n_words];
            for (i, slot) in shifted.iter_mut().enumerate() {
                let prev = rotated_words[(i + n_words - 1) % n_words];
                *slot = (rotated_words[i] << bit_shift) | (prev >> (WORD_BITS - bit_shift));
            }
            rotated_words = shifted;
        }
        Self {
            dim: self.dim,
            words: rotated_words,
        }
    }

    /// Expands to a `Vec` of `+1`/`-1` values.
    pub fn to_values(&self) -> Vec<i32> {
        (0..self.dim).map(|i| self.value(i)).collect()
    }

    /// Iterates over the `+1`/`-1` values in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = i32> + '_ {
        (0..self.dim).map(move |i| self.value(i))
    }

    /// Raw packed words (low bit of word 0 is dimension 0). Unused tail bits
    /// are always zero. Exposed for the hardware cost models, which account
    /// for word-level memory traffic.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_tail(&mut self) {
        let rem = self.dim % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BipolarHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BipolarHv(D={}, [", self.dim)?;
        for i in 0..self.dim.min(16) {
            write!(f, "{}", if self.value(i) == 1 { '+' } else { '-' })?;
        }
        if self.dim > 16 {
            write!(f, "…")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ones_is_all_plus_one() {
        let hv = BipolarHv::ones(70);
        assert_eq!(hv.dim(), 70);
        assert!(hv.iter().all(|v| v == 1));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = BipolarHv::ones(0);
    }

    #[test]
    fn set_and_value_round_trip() {
        let mut hv = BipolarHv::ones(100);
        hv.set(0, -1);
        hv.set(63, -1);
        hv.set(64, -1);
        hv.set(99, -1);
        assert_eq!(hv.value(0), -1);
        assert_eq!(hv.value(63), -1);
        assert_eq!(hv.value(64), -1);
        assert_eq!(hv.value(99), -1);
        assert_eq!(hv.value(1), 1);
        hv.set(0, 1);
        assert_eq!(hv.value(0), 1);
    }

    #[test]
    #[should_panic(expected = "bipolar value must be +1 or -1")]
    fn set_rejects_non_bipolar() {
        BipolarHv::ones(4).set(0, 0);
    }

    #[test]
    fn from_values_round_trip() {
        let vals = vec![1, -1, -1, 1, -1];
        let hv = BipolarHv::from_values(&vals);
        assert_eq!(hv.to_values(), vals);
    }

    #[test]
    fn bind_is_elementwise_multiplication() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BipolarHv::random(130, &mut rng);
        let b = BipolarHv::random(130, &mut rng);
        let c = a.bind(&b);
        for i in 0..130 {
            assert_eq!(c.value(i), a.value(i) * b.value(i));
        }
    }

    #[test]
    fn bind_with_self_is_identity_vector() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BipolarHv::random(200, &mut rng);
        assert_eq!(a.bind(&a), BipolarHv::ones(200));
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BipolarHv::random(97, &mut rng);
        let b = BipolarHv::random(97, &mut rng);
        let naive: i64 = (0..97).map(|i| (a.value(i) * b.value(i)) as i64).sum();
        assert_eq!(a.dot(&b), naive);
        assert_eq!(a.dot(&a), 97);
    }

    #[test]
    fn negated_flips_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BipolarHv::random(77, &mut rng);
        let n = a.negated();
        assert_eq!(a.dot(&n), -77);
        // tail bits stay clean: dot with ones must still be in range
        assert!(n.dot(&BipolarHv::ones(77)).abs() <= 77);
    }

    #[test]
    fn rotation_shifts_values() {
        let hv = BipolarHv::from_values(&[1, -1, 1, 1, 1]);
        let r = hv.rotated(1);
        assert_eq!(r.to_values(), vec![1, 1, -1, 1, 1]);
        let r2 = hv.rotated(4);
        assert_eq!(r2.to_values(), vec![-1, 1, 1, 1, 1]);
    }

    #[test]
    fn rotation_composes_and_wraps() {
        let mut rng = StdRng::seed_from_u64(5);
        let hv = BipolarHv::random(129, &mut rng);
        assert_eq!(hv.rotated(129), hv);
        assert_eq!(hv.rotated(5).rotated(7), hv.rotated(12));
        assert_eq!(hv.rotated(130), hv.rotated(1));
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(6);
        let hv = BipolarHv::random(10_000, &mut rng);
        let sum: i64 = hv.iter().map(i64::from).sum();
        assert!(sum.abs() < 400, "random hv too unbalanced: {sum}");
    }

    #[test]
    fn random_pair_nearly_orthogonal() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BipolarHv::random(10_000, &mut rng);
        let b = BipolarHv::random(10_000, &mut rng);
        assert!(a.cosine(&b).abs() < 0.05);
    }

    #[test]
    fn permutation_orthogonal_to_original() {
        // δ(L, ρ^i L) ≈ 0 — the property the baseline encoding relies on (§II-A).
        let mut rng = StdRng::seed_from_u64(8);
        let a = BipolarHv::random(10_000, &mut rng);
        for k in [1usize, 3, 100, 617] {
            assert!(
                a.cosine(&a.rotated(k)).abs() < 0.05,
                "rotation {k} not orthogonal"
            );
        }
    }

    #[test]
    fn flip_changes_listed_dims_only() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = BipolarHv::random(100, &mut rng);
        let mut b = a.clone();
        b.flip(&[0, 50, 99]);
        assert_eq!(a.hamming(&b), 3);
        assert_eq!(b.value(0), -a.value(0));
        assert_eq!(b.value(50), -a.value(50));
        assert_eq!(b.value(99), -a.value(99));
    }

    #[test]
    fn hamming_and_dot_are_consistent() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = BipolarHv::random(500, &mut rng);
        let b = BipolarHv::random(500, &mut rng);
        let h = a.hamming(&b) as i64;
        assert_eq!(a.dot(&b), 500 - 2 * h);
    }

    #[test]
    fn debug_is_nonempty() {
        let hv = BipolarHv::ones(4);
        assert!(!format!("{hv:?}").is_empty());
    }

    /// Bit-by-bit reference rotation, used to pin the word-level fast path.
    fn rotated_reference(hv: &BipolarHv, k: usize) -> BipolarHv {
        let d = hv.dim();
        let k = k % d;
        let mut out = BipolarHv::ones(d);
        for i in 0..d {
            out.set(i, hv.value((i + d - k) % d));
        }
        out
    }

    #[test]
    fn word_path_rotation_matches_reference() {
        let mut rng = StdRng::seed_from_u64(20);
        for dim in [64usize, 128, 512, 2048] {
            let hv = BipolarHv::random(dim, &mut rng);
            for k in [0usize, 1, 7, 63, 64, 65, 200, dim - 1, dim, dim + 3] {
                assert_eq!(hv.rotated(k), rotated_reference(&hv, k), "dim={dim}, k={k}");
            }
        }
    }

    #[test]
    fn non_word_multiple_rotation_matches_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for dim in [65usize, 100, 129, 1000] {
            let hv = BipolarHv::random(dim, &mut rng);
            for k in [1usize, 13, 64, dim - 1] {
                assert_eq!(hv.rotated(k), rotated_reference(&hv, k), "dim={dim}, k={k}");
            }
        }
    }
}
