//! The end-to-end baseline HDC classifier (the paper's comparison point).
//!
//! [`HdcConfig`] collects the hyperparameters of §II (dimensionality `D`,
//! quantization levels `q`, quantization rule, level scheme, retraining
//! epochs, RNG seed); [`HdcClassifier::fit`] runs the full §II pipeline:
//! fit the quantizer, generate level hypervectors, encode the training set,
//! bundle class hypervectors, and retrain.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classify::{Classifier, FitClassifier};
use crate::encoding::{encode_batch_with, Encode, PermutationEncoder};
use crate::error::{HdcError, Result};
use crate::hv::DenseHv;
use crate::levels::{LevelMemory, LevelScheme};
use crate::model::ClassModel;
use crate::quantize::{Quantization, Quantizer};
use crate::train::{initial_fit_with, retrain, TrainReport};
use lookhd_engine::{Engine, EngineConfig, EngineStats};

/// Hyperparameters of the baseline HDC classifier.
///
/// Construct with [`HdcConfig::new`] and chain the `with_*` setters.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcConfig {
    /// Hypervector dimensionality `D` (paper default: 2000 for efficiency
    /// experiments, up to 10,000 for accuracy).
    pub dim: usize,
    /// Number of quantization levels `q`.
    pub q: usize,
    /// Quantization rule (the baseline uses [`Quantization::Linear`]).
    pub quantization: Quantization,
    /// Level hypervector generation scheme.
    pub level_scheme: LevelScheme,
    /// Maximum retraining epochs (the paper uses ~10; 0 disables).
    pub retrain_epochs: usize,
    /// RNG seed for reproducible level/position hypervectors.
    pub seed: u64,
    /// Execution engine settings for training and batch inference.
    /// Outputs are identical for every thread count (see
    /// [`lookhd_engine`]'s determinism contract).
    pub engine: EngineConfig,
}

impl HdcConfig {
    /// Baseline defaults: `D = 2000`, `q = 16` linear levels, 10 retraining
    /// epochs (matching the paper's baseline setup).
    pub fn new() -> Self {
        Self {
            dim: 2000,
            q: 16,
            quantization: Quantization::Linear,
            level_scheme: LevelScheme::RandomFlips,
            retrain_epochs: 10,
            seed: 0x10_0c_4d,
            engine: EngineConfig::default(),
        }
    }

    /// Sets the hypervector dimensionality `D`.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Sets the number of quantization levels `q`.
    pub fn with_q(mut self, q: usize) -> Self {
        self.q = q;
        self
    }

    /// Sets the quantization rule.
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// Sets the level hypervector scheme.
    pub fn with_level_scheme(mut self, level_scheme: LevelScheme) -> Self {
        self.level_scheme = level_scheme;
        self
    }

    /// Sets the maximum number of retraining epochs.
    pub fn with_retrain_epochs(mut self, retrain_epochs: usize) -> Self {
        self.retrain_epochs = retrain_epochs;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Convenience: sets only the engine thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A trained baseline HDC classifier.
///
/// Construct with [`FitClassifier::fit`]; run inference through the
/// [`Classifier`] trait.
///
/// # Examples
///
/// ```
/// use hdc::classifier::{HdcClassifier, HdcConfig};
/// use hdc::{Classifier, FitClassifier};
///
/// // Two 4-feature classes: low values vs high values.
/// let xs: Vec<Vec<f64>> = (0..20)
///     .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 }; 4])
///     .collect();
/// let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
/// let config = HdcConfig::new().with_dim(256).with_q(4);
/// let clf = HdcClassifier::fit(&config, &xs, &ys)?;
/// assert_eq!(clf.predict(&[0.1, 0.1, 0.1, 0.1])?, 0);
/// assert_eq!(clf.predict(&[0.9, 0.9, 0.9, 0.9])?, 1);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HdcClassifier {
    encoder: PermutationEncoder,
    model: ClassModel,
    report: TrainReport,
    engine: Engine,
    fit_stats: EngineStats,
}

impl HdcClassifier {
    /// Builds the encoder and encodes the training set (shared with
    /// [`FitClassifier::fit`]; exposed via `fit` only).
    fn prepare(
        config: &HdcConfig,
        features: &[Vec<f64>],
        labels: &[usize],
    ) -> Result<(PermutationEncoder, Vec<DenseHv>, usize, Engine)> {
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        if features.len() != labels.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} samples but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let n_features = features[0].len();
        if features.iter().any(|f| f.len() != n_features) {
            return Err(HdcError::invalid_dataset("ragged feature matrix"));
        }
        let n_classes = labels.iter().max().map_or(0, |m| m + 1);
        let all_values: Vec<f64> = features.iter().flatten().copied().collect();
        let quantizer = Quantizer::fit(config.quantization, &all_values, config.q)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let levels = LevelMemory::generate(config.dim, config.q, config.level_scheme, &mut rng)?;
        let encoder = PermutationEncoder::new(levels, quantizer, n_features)?;
        let engine = Engine::new(config.engine);
        let (encoded, _) = encode_batch_with(&engine, &encoder, features)?;
        Ok((encoder, encoded, n_classes, engine))
    }

    /// Predicts a batch and returns the labels together with the engine's
    /// run statistics (per-shard timings, merge time, throughput).
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error in sample order.
    pub fn predict_batch_stats(&self, features: &[Vec<f64>]) -> Result<(Vec<usize>, EngineStats)> {
        let (preds, stats) = self.engine.map_reduce(
            features.len(),
            |range| {
                features[range]
                    .iter()
                    .map(|f| self.predict(f))
                    .collect::<Result<Vec<usize>>>()
            },
            |shards| {
                let mut out = Vec::with_capacity(features.len());
                for shard in shards {
                    out.extend(shard?);
                }
                Ok::<Vec<usize>, HdcError>(out)
            },
        );
        Ok((preds?, stats))
    }

    /// Engine statistics of the initial bundling phase of training.
    pub fn fit_stats(&self) -> &EngineStats {
        &self.fit_stats
    }

    /// The execution engine this classifier runs batch inference on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The trained class model.
    pub fn model(&self) -> &ClassModel {
        &self.model
    }

    /// The fitted encoder (quantizer + level memory).
    pub fn encoder(&self) -> &PermutationEncoder {
        &self.encoder
    }

    /// The retraining report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Encodes a query without classifying it (for inspection/benchmarks).
    ///
    /// # Errors
    ///
    /// Returns an encoding error for a wrong-arity feature vector.
    pub fn encode(&self, features: &[f64]) -> Result<DenseHv> {
        self.encoder.encode(features)
    }
}

impl Classifier for HdcClassifier {
    fn num_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn predict(&self, features: &[f64]) -> Result<usize> {
        let h = self.encoder.encode(features)?;
        self.model.predict(&h)
    }

    fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self.predict_batch_stats(features)?.0)
    }

    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        let h = self.encoder.encode(features)?;
        self.model.scores(&h).map(Some)
    }
}

impl FitClassifier for HdcClassifier {
    type Config = HdcConfig;

    /// Trains a classifier on `features`/`labels` with the given config.
    ///
    /// The initial bundling phase is sharded across the configured
    /// engine's threads; retraining is inherently sequential and runs
    /// serially. Results are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty or ragged dataset
    /// and [`HdcError::InvalidConfig`] for invalid hyperparameters.
    fn fit(config: &HdcConfig, features: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        let (encoder, encoded, n_classes, engine) = Self::prepare(config, features, labels)?;
        let (mut model, fit_stats) = initial_fit_with(&engine, &encoded, labels, n_classes)?;
        let report = retrain(&mut model, &encoded, labels, config.retrain_epochs)?;
        model.refresh_norms();
        Ok(Self {
            encoder,
            model,
            report,
            engine,
            fit_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Three well-separated Gaussian blobs in 12 feature dimensions.
    fn blobs(per_class: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [0.2, 0.5, 0.8];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, &center) in centers.iter().enumerate() {
            for _ in 0..per_class {
                let row: Vec<f64> = (0..12)
                    .map(|j| center + 0.3 * ((j % 3) as f64 / 3.0) + rng.gen_range(-0.05..0.05))
                    .collect();
                xs.push(row);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn fit_and_score_separable_data() {
        let (xs, ys) = blobs(30, 1);
        let config = HdcConfig::new()
            .with_dim(512)
            .with_q(8)
            .with_retrain_epochs(5);
        let clf = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        let acc = clf.evaluate(&xs, &ys).unwrap();
        assert!(acc > 0.9, "train accuracy too low: {acc}");
        assert_eq!(clf.num_classes(), 3);
        assert_eq!(clf.fit_stats().items, xs.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blobs(10, 2);
        let config = HdcConfig::new().with_dim(256).with_q(4).with_seed(9);
        let a = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        let b = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        let preds_a = a.predict_batch(&xs).unwrap();
        let preds_b = b.predict_batch(&xs).unwrap();
        assert_eq!(preds_a, preds_b);
    }

    #[test]
    fn rejects_bad_datasets() {
        let config = HdcConfig::new().with_dim(128).with_q(2);
        assert!(HdcClassifier::fit(&config, &[], &[]).is_err());
        assert!(HdcClassifier::fit(&config, &[vec![1.0]], &[0, 1]).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(HdcClassifier::fit(&config, &ragged, &[0, 1]).is_err());
    }

    #[test]
    fn config_builder_chains() {
        let c = HdcConfig::new()
            .with_dim(1000)
            .with_q(4)
            .with_quantization(Quantization::Equalized)
            .with_level_scheme(LevelScheme::DisjointFlips)
            .with_retrain_epochs(3)
            .with_seed(7)
            .with_engine(EngineConfig::new().with_shard_size(64))
            .with_threads(2);
        assert_eq!(c.dim, 1000);
        assert_eq!(c.q, 4);
        assert_eq!(c.quantization, Quantization::Equalized);
        assert_eq!(c.level_scheme, LevelScheme::DisjointFlips);
        assert_eq!(c.retrain_epochs, 3);
        assert_eq!(c.seed, 7);
        assert_eq!(
            c.engine,
            EngineConfig::new().with_shard_size(64).with_threads(2)
        );
        assert_eq!(HdcConfig::default(), HdcConfig::new());
    }

    #[test]
    fn threaded_training_and_inference_match_serial() {
        let (xs, ys) = blobs(20, 11);
        let base = HdcConfig::new().with_dim(256).with_q(4);
        let serial = HdcClassifier::fit(&base, &xs, &ys).unwrap();
        let serial_preds = serial.predict_batch(&xs).unwrap();
        for threads in [2, 3, 8] {
            let cfg = base
                .clone()
                .with_engine(EngineConfig::new().with_threads(threads).with_shard_size(7));
            let clf = HdcClassifier::fit(&cfg, &xs, &ys).unwrap();
            assert_eq!(
                clf.predict_batch(&xs).unwrap(),
                serial_preds,
                "threads={threads}"
            );
            for (a, b) in clf.model().classes().iter().zip(serial.model().classes()) {
                assert_eq!(a, b, "threads={threads}");
            }
        }
    }

    #[test]
    fn report_reflects_retraining() {
        let (xs, ys) = blobs(20, 3);
        let config = HdcConfig::new()
            .with_dim(256)
            .with_q(4)
            .with_retrain_epochs(8);
        let clf = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        assert!(clf.report().epochs_run() >= 1);
        assert!(clf.report().final_accuracy() > 0.8);
    }

    #[test]
    fn predict_on_unseen_neighbourhood_generalizes() {
        let (xs, ys) = blobs(30, 4);
        let config = HdcConfig::new().with_dim(512).with_q(8);
        let clf = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        let (test_xs, test_ys) = blobs(10, 99);
        let acc = clf.evaluate(&test_xs, &test_ys).unwrap();
        assert!(acc > 0.8, "test accuracy too low: {acc}");
    }

    #[test]
    fn encode_exposes_query_hypervector() {
        let (xs, ys) = blobs(5, 5);
        let config = HdcConfig::new()
            .with_dim(128)
            .with_q(2)
            .with_retrain_epochs(0);
        let clf = HdcClassifier::fit(&config, &xs, &ys).unwrap();
        let h = clf.encode(&xs[0]).unwrap();
        assert_eq!(h.dim(), 128);
        assert_eq!(
            clf.model().predict(&h).unwrap(),
            clf.predict(&xs[0]).unwrap()
        );
    }
}
