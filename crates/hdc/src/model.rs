//! Class models and associative search (§II-B, §II-C, §IV-A).
//!
//! A trained (non-compressed) HDC model is one dense class hypervector per
//! class. Inference finds the class with the highest cosine similarity to
//! the query; as in the paper, class hypervectors are pre-normalized once so
//! the per-query similarity reduces to a dot product.

use crate::error::{HdcError, Result};
use crate::hv::DenseHv;

/// A trained HDC model: `k` class hypervectors of dimension `D`.
///
/// # Examples
///
/// ```
/// use hdc::hv::DenseHv;
/// use hdc::model::ClassModel;
///
/// let classes = vec![
///     DenseHv::from_vec(vec![5, 0, 0]),
///     DenseHv::from_vec(vec![0, 5, 0]),
/// ];
/// let model = ClassModel::from_classes(classes)?;
/// let query = DenseHv::from_vec(vec![1, 4, 0]);
/// assert_eq!(model.predict(&query)?, 1);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassModel {
    classes: Vec<DenseHv>,
    norms: Vec<f64>,
}

impl ClassModel {
    /// Builds a model from class hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if `classes` is empty, and
    /// [`HdcError::DimensionMismatch`] if the dimensions disagree.
    pub fn from_classes(classes: Vec<DenseHv>) -> Result<Self> {
        if classes.is_empty() {
            return Err(HdcError::invalid_dataset("model needs at least one class"));
        }
        let dim = classes[0].dim();
        for c in &classes {
            if c.dim() != dim {
                return Err(HdcError::DimensionMismatch {
                    expected: dim,
                    actual: c.dim(),
                });
            }
        }
        let norms = classes.iter().map(DenseHv::norm).collect();
        Ok(Self { classes, norms })
    }

    /// Builds an all-zero model with `k` classes (used by online trainers).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `k == 0` or `dim == 0`.
    pub fn zeros(k: usize, dim: usize) -> Result<Self> {
        if k == 0 {
            return Err(HdcError::invalid_config("k", "need at least one class"));
        }
        if dim == 0 {
            return Err(HdcError::invalid_config(
                "dim",
                "dimension must be positive",
            ));
        }
        Ok(Self {
            classes: vec![DenseHv::zeros(dim); k],
            norms: vec![0.0; k],
        })
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.classes[0].dim()
    }

    /// The class hypervector for `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &DenseHv {
        &self.classes[label]
    }

    /// All class hypervectors in label order.
    pub fn classes(&self) -> &[DenseHv] {
        &self.classes
    }

    /// Normalized-dot scores of a query against every class
    /// (`H · C_i / ‖C_i‖`; the common query norm is omitted, §IV-A).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the query dimension differs.
    pub fn scores(&self, query: &DenseHv) -> Result<Vec<f64>> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        Ok(self
            .classes
            .iter()
            .zip(&self.norms)
            .map(|(c, &n)| {
                if n == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    query.dot(c) as f64 / n
                }
            })
            .collect())
    }

    /// Predicts the best-matching class for a query hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the query dimension differs.
    pub fn predict(&self, query: &DenseHv) -> Result<usize> {
        let scores = self.scores(query)?;
        Ok(argmax(&scores))
    }

    /// The `k` best-matching classes with their normalized-dot scores, best
    /// first (clamped to the class count) — for rejection thresholds and
    /// top-k evaluation on many-class applications.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the query dimension differs.
    pub fn predict_top_k(&self, query: &DenseHv, k: usize) -> Result<Vec<(usize, f64)>> {
        let scores = self.scores(query)?;
        let mut ranked: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        ranked.truncate(k.min(self.n_classes()));
        Ok(ranked)
    }

    /// Full cosine similarities `δ(H, C_i)` including the query norm — used
    /// by the Fig. 8 cosine-distribution experiment.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the query dimension differs.
    pub fn cosines(&self, query: &DenseHv) -> Result<Vec<f64>> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        Ok(self.classes.iter().map(|c| query.cosine(c)).collect())
    }

    /// Adds an encoded sample into a class (`C += H`).
    ///
    /// Norms are refreshed lazily: call [`ClassModel::refresh_norms`] after a
    /// batch of updates (the paper normalizes once after training).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::UnknownClass`] for an out-of-range label and
    /// [`HdcError::DimensionMismatch`] for a wrong-dimension sample.
    pub fn add(&mut self, label: usize, sample: &DenseHv) -> Result<()> {
        self.check(label, sample)?;
        self.classes[label].add_assign_hv(sample);
        Ok(())
    }

    /// Subtracts an encoded sample from a class (`C -= H`).
    ///
    /// # Errors
    ///
    /// Same as [`ClassModel::add`].
    pub fn sub(&mut self, label: usize, sample: &DenseHv) -> Result<()> {
        self.check(label, sample)?;
        self.classes[label].sub_assign_hv(sample);
        Ok(())
    }

    fn check(&self, label: usize, sample: &DenseHv) -> Result<()> {
        if label >= self.n_classes() {
            return Err(HdcError::UnknownClass {
                label,
                n_classes: self.n_classes(),
            });
        }
        if sample.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: sample.dim(),
            });
        }
        Ok(())
    }

    /// Element-wise adds every class hypervector of `other` into this
    /// model (`C_i += C'_i`), the merge step of sharded training. Integer
    /// addition is associative and commutative, so merging per-shard
    /// partial models in shard order is bit-identical to serial
    /// accumulation. Norms are refreshed lazily: call
    /// [`ClassModel::refresh_norms`] after the final merge.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if the class counts differ and
    /// [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn merge_add(&mut self, other: &Self) -> Result<()> {
        if other.n_classes() != self.n_classes() {
            return Err(HdcError::invalid_dataset(format!(
                "cannot merge a {}-class model into a {}-class model",
                other.n_classes(),
                self.n_classes()
            )));
        }
        if other.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        for (c, oc) in self.classes.iter_mut().zip(&other.classes) {
            c.add_assign_hv(oc);
        }
        Ok(())
    }

    /// Recomputes the cached class norms after in-place updates.
    pub fn refresh_norms(&mut self) {
        for (n, c) in self.norms.iter_mut().zip(&self.classes) {
            *n = c.norm();
        }
    }

    /// Average pairwise cosine similarity among class hypervectors — the
    /// model-correlation statistic behind Fig. 8's motivation.
    pub fn class_correlation(&self) -> f64 {
        let k = self.n_classes();
        if k < 2 {
            return 1.0;
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                sum += self.classes[i].cosine(&self.classes[j]);
                pairs += 1;
            }
        }
        sum / pairs as f64
    }

    /// Model size in bytes assuming 32-bit storage per element — the metric
    /// behind the paper's "model size" comparisons (k·D·4 bytes).
    pub fn size_bytes(&self) -> usize {
        self.n_classes() * self.dim() * std::mem::size_of::<i32>()
    }
}

/// Index of the maximum score (first one wins on ties).
pub(crate) fn argmax(scores: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ClassModel {
        ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![10, 0, 0, 0]),
            DenseHv::from_vec(vec![0, 10, 0, 0]),
            DenseHv::from_vec(vec![0, 0, 10, 10]),
        ])
        .unwrap()
    }

    #[test]
    fn predict_picks_most_similar_class() {
        let m = toy_model();
        assert_eq!(m.predict(&DenseHv::from_vec(vec![9, 1, 0, 0])).unwrap(), 0);
        assert_eq!(m.predict(&DenseHv::from_vec(vec![0, 5, 1, 0])).unwrap(), 1);
        assert_eq!(m.predict(&DenseHv::from_vec(vec![0, 0, 3, 3])).unwrap(), 2);
    }

    #[test]
    fn scores_are_norm_adjusted() {
        // Class 2 has norm √200; a query equally aligned with class 0 and 2
        // must not be biased toward the larger-magnitude class.
        let m = toy_model();
        let scores = m.scores(&DenseHv::from_vec(vec![1, 0, 1, 1])).unwrap();
        assert!(scores[2] > scores[0]);
        let m2 = ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![100, 0]),
            DenseHv::from_vec(vec![1, 1]),
        ])
        .unwrap();
        // Aligned with class 1's direction despite class 0's magnitude.
        assert_eq!(m2.predict(&DenseHv::from_vec(vec![1, 1])).unwrap(), 1);
    }

    #[test]
    fn add_sub_then_refresh_updates_predictions() {
        let mut m = ClassModel::zeros(2, 4).unwrap();
        let sample = DenseHv::from_vec(vec![1, 1, 0, 0]);
        for _ in 0..5 {
            m.add(0, &sample).unwrap();
        }
        m.add(1, &DenseHv::from_vec(vec![0, 0, 1, 1])).unwrap();
        m.refresh_norms();
        assert_eq!(m.predict(&sample).unwrap(), 0);
        // Move the mass away from class 0.
        for _ in 0..5 {
            m.sub(0, &sample).unwrap();
        }
        m.add(1, &sample).unwrap();
        m.refresh_norms();
        assert_eq!(m.predict(&sample).unwrap(), 1);
    }

    #[test]
    fn zero_norm_classes_never_win() {
        let mut m = ClassModel::zeros(2, 4).unwrap();
        m.add(1, &DenseHv::from_vec(vec![1, 0, 0, 0])).unwrap();
        m.refresh_norms();
        assert_eq!(m.predict(&DenseHv::from_vec(vec![1, 0, 0, 0])).unwrap(), 1);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let mut m = toy_model();
        assert!(matches!(
            m.predict(&DenseHv::zeros(3)),
            Err(HdcError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
        assert!(matches!(
            m.add(7, &DenseHv::zeros(4)),
            Err(HdcError::UnknownClass {
                label: 7,
                n_classes: 3
            })
        ));
        assert!(matches!(
            m.add(0, &DenseHv::zeros(5)),
            Err(HdcError::DimensionMismatch { .. })
        ));
        assert!(ClassModel::from_classes(vec![]).is_err());
        assert!(ClassModel::from_classes(vec![DenseHv::zeros(2), DenseHv::zeros(3)]).is_err());
    }

    #[test]
    fn class_correlation_detects_shared_component() {
        let independent = ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![1, 0, 0, 0]),
            DenseHv::from_vec(vec![0, 1, 0, 0]),
        ])
        .unwrap();
        let correlated = ClassModel::from_classes(vec![
            DenseHv::from_vec(vec![10, 10, 1, 0]),
            DenseHv::from_vec(vec![10, 10, 0, 1]),
        ])
        .unwrap();
        assert!(correlated.class_correlation() > independent.class_correlation());
    }

    #[test]
    fn size_scales_linearly_with_classes() {
        // The inference-scalability complaint of §II-D: k·D·4 bytes.
        let m = toy_model();
        assert_eq!(m.size_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn cosines_include_query_norm() {
        let m = toy_model();
        let cs = m.cosines(&DenseHv::from_vec(vec![10, 0, 0, 0])).unwrap();
        assert!((cs[0] - 1.0).abs() < 1e-12);
        assert!(cs[1].abs() < 1e-12);
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }

    #[test]
    fn top_k_ranks_and_clamps() {
        let m = toy_model();
        let q = DenseHv::from_vec(vec![5, 3, 1, 0]);
        let top = m.predict_top_k(&q, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(m.predict_top_k(&q, 99).unwrap().len(), 3);
        assert!(m.predict_top_k(&DenseHv::zeros(2), 1).is_err());
    }
}
