//! Binary (majority-thresholded) HDC models.
//!
//! §VII of the paper notes that several prior HDC systems work entirely in
//! the binary domain, trading accuracy (≈17.5% on average, per the paper)
//! for cheaper Hamming-distance inference. This module provides that
//! binarized variant so the accuracy gap can be measured directly.

use crate::error::{HdcError, Result};
use crate::hv::{BipolarHv, DenseHv};
use crate::model::{argmax, ClassModel};

/// A binarized class model: the element-wise sign of each class hypervector.
///
/// Inference uses the bipolar dot product (equivalent to Hamming distance up
/// to an affine transform), which is what binary-HDC hardware computes.
///
/// # Examples
///
/// ```
/// use hdc::hv::DenseHv;
/// use hdc::model::ClassModel;
/// use hdc::binary::BinaryModel;
///
/// let model = ClassModel::from_classes(vec![
///     DenseHv::from_vec(vec![5, -2, 7, -9]),
///     DenseHv::from_vec(vec![-5, 2, -7, 9]),
/// ])?;
/// let bin = BinaryModel::from_model(&model);
/// let query = DenseHv::from_vec(vec![3, -1, 2, -4]);
/// assert_eq!(bin.predict(&query)?, 0);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BinaryModel {
    classes: Vec<BipolarHv>,
}

impl BinaryModel {
    /// Binarizes a trained non-binary model by taking element-wise signs.
    pub fn from_model(model: &ClassModel) -> Self {
        Self {
            classes: model.classes().iter().map(DenseHv::sign).collect(),
        }
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.classes[0].dim()
    }

    /// The binarized class hypervector for `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &BipolarHv {
        &self.classes[label]
    }

    /// Predicts using bipolar dot products against a *dense* query (the
    /// query itself is usually left non-binary, as in the paper's binary
    /// baselines where only the model is binarized).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn predict(&self, query: &DenseHv) -> Result<usize> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        let scores: Vec<f64> = self
            .classes
            .iter()
            .map(|c| query.dot_bipolar(c) as f64)
            .collect();
        Ok(argmax(&scores))
    }

    /// Predicts from a fully binarized query via Hamming distance (the
    /// all-binary regime of the prior-work systems).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn predict_binary(&self, query: &BipolarHv) -> Result<usize> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        let scores: Vec<f64> = self
            .classes
            .iter()
            .map(|c| -(query.hamming(c) as f64))
            .collect();
        Ok(argmax(&scores))
    }

    /// Model size in bytes (1 bit per dimension, the binary-HDC selling
    /// point).
    pub fn size_bytes(&self) -> usize {
        self.n_classes() * self.dim().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained_pair(dim: usize, seed: u64) -> (ClassModel, Vec<DenseHv>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos = [
            BipolarHv::random(dim, &mut rng),
            BipolarHv::random(dim, &mut rng),
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..20 {
                let mut hv = p.clone();
                let idx: Vec<usize> = (0..dim / 10).map(|_| rng.gen_range(0..dim)).collect();
                hv.flip(&idx);
                xs.push(DenseHv::from(&hv));
                ys.push(c);
            }
        }
        let model = crate::train::initial_fit(&xs, &ys, 2).unwrap();
        (model, xs, ys)
    }

    #[test]
    fn binary_model_classifies_clean_data() {
        let (model, xs, ys) = trained_pair(512, 1);
        let bin = BinaryModel::from_model(&model);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| bin.predict(h).unwrap() == y)
            .count();
        assert_eq!(correct, xs.len());
        assert_eq!(bin.n_classes(), 2);
        assert_eq!(bin.dim(), 512);
    }

    #[test]
    fn binary_query_path_agrees_on_easy_data() {
        let (model, xs, ys) = trained_pair(512, 2);
        let bin = BinaryModel::from_model(&model);
        for (h, &y) in xs.iter().zip(&ys) {
            assert_eq!(bin.predict_binary(&h.sign()).unwrap(), y);
        }
    }

    #[test]
    fn binary_model_is_32x_smaller() {
        let (model, _, _) = trained_pair(512, 3);
        let bin = BinaryModel::from_model(&model);
        assert_eq!(model.size_bytes() / bin.size_bytes(), 32);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let (model, _, _) = trained_pair(64, 4);
        let bin = BinaryModel::from_model(&model);
        assert!(bin.predict(&DenseHv::zeros(32)).is_err());
        assert!(bin.predict_binary(&BipolarHv::ones(32)).is_err());
    }
}
