//! Feature quantization: linear (baseline) and equalized (LookHD §III-B).
//!
//! HDC represents feature values with one of `q` level hypervectors, so the
//! continuous feature range must first be quantized into `q` discrete levels.
//! The baseline quantizes the `[f_min, f_max]` range into equal-width bins.
//! LookHD instead chooses the boundaries so that *every level receives the
//! same number of training values* (equalized / quantile quantization,
//! Fig. 3b), which lets `q = 2..4` match the accuracy of `q = 16` linear
//! levels (Fig. 4).

use crate::error::{HdcError, Result};

/// Which boundary-selection rule to use when fitting a quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quantization {
    /// Equal-width bins over `[f_min, f_max]` (the baseline HDC rule).
    Linear,
    /// Equal-mass (quantile) bins over the empirical training distribution
    /// (the LookHD rule).
    #[default]
    Equalized,
}

/// A fitted quantizer mapping `f64` feature values to level indices
/// `0..q`.
///
/// The quantizer stores `q - 1` sorted interior boundaries; value `x` maps
/// to the number of boundaries strictly below it (values on a boundary go to
/// the upper level). Values outside the training range clamp to the extreme
/// levels.
///
/// # Examples
///
/// ```
/// use hdc::quantize::{Quantization, Quantizer};
///
/// let samples: Vec<f64> = (0..100).map(f64::from).collect();
/// let q = Quantizer::fit(Quantization::Linear, &samples, 4)?;
/// assert_eq!(q.level(0.0), 0);
/// assert_eq!(q.level(99.0), 3);
/// assert_eq!(q.levels(), 4);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    boundaries: Vec<f64>,
    q: usize,
    kind: Quantization,
}

impl Quantizer {
    /// Fits a quantizer with `q` levels to the given training values.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `q < 2`, and
    /// [`HdcError::InvalidDataset`] if `values` is empty or contains a
    /// non-finite number.
    pub fn fit(kind: Quantization, values: &[f64], q: usize) -> Result<Self> {
        if q < 2 {
            return Err(HdcError::invalid_config(
                "q",
                format!("need at least 2 levels, got {q}"),
            ));
        }
        if values.is_empty() {
            return Err(HdcError::invalid_dataset(
                "cannot fit a quantizer to zero values",
            ));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(HdcError::invalid_dataset("feature values must be finite"));
        }
        let boundaries = match kind {
            Quantization::Linear => Self::linear_boundaries(values, q)?,
            Quantization::Equalized => Self::equalized_boundaries(values, q)?,
        };
        Ok(Self {
            boundaries,
            q,
            kind,
        })
    }

    /// Builds a quantizer from explicit interior boundaries (ascending).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if the boundaries are empty, not
    /// sorted, or not finite.
    pub fn from_boundaries(kind: Quantization, boundaries: Vec<f64>) -> Result<Self> {
        if boundaries.is_empty() {
            return Err(HdcError::invalid_config(
                "boundaries",
                "need at least one boundary",
            ));
        }
        if boundaries.iter().any(|b| !b.is_finite()) {
            return Err(HdcError::invalid_config(
                "boundaries",
                "boundaries must be finite",
            ));
        }
        if boundaries.windows(2).any(|w| w[0] > w[1]) {
            return Err(HdcError::invalid_config(
                "boundaries",
                "boundaries must be ascending",
            ));
        }
        let q = boundaries.len() + 1;
        Ok(Self {
            boundaries,
            q,
            kind,
        })
    }

    fn linear_boundaries(values: &[f64], q: usize) -> Result<Vec<f64>> {
        // `fit` rejects empty input, but guard here too: on empty values
        // min stays +∞ and every boundary would be non-finite.
        if values.is_empty() {
            return Err(HdcError::invalid_dataset(
                "cannot derive linear boundaries from zero values",
            ));
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if min == max {
            // Degenerate constant feature: all boundaries collapse, every
            // value lands in the top level. Still valid.
            return Ok(vec![min; q - 1]);
        }
        let width = (max - min) / q as f64;
        Ok((1..q).map(|i| min + width * i as f64).collect())
    }

    fn equalized_boundaries(values: &[f64], q: usize) -> Result<Vec<f64>> {
        // `fit` rejects empty input, but guard here too: with n = 0 the
        // `n - 1` clamp below underflows.
        if values.is_empty() {
            return Err(HdcError::invalid_dataset(
                "cannot derive equalized boundaries from zero values",
            ));
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        let n = sorted.len();
        Ok((1..q)
            .map(|i| {
                // The i-th q-quantile of the empirical distribution.
                let pos = (i * n) / q;
                sorted[pos.min(n - 1)]
            })
            .collect())
    }

    /// Maps a value to its level index in `0..q`.
    pub fn level(&self, x: f64) -> usize {
        // Number of boundaries strictly below x == partition_point on b < x … we
        // want values equal to a boundary to go up, i.e. count boundaries <= x?
        // Convention: level(x) = #{b : b <= x}, clamped to q-1. This sends a
        // boundary value to the upper bin and is stable for the degenerate
        // constant-feature case.
        let idx = self.boundaries.partition_point(|&b| b <= x);
        idx.min(self.q - 1)
    }

    /// Number of quantization levels `q`.
    pub fn levels(&self) -> usize {
        self.q
    }

    /// The fitted interior boundaries (length `q - 1`, ascending).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Number of *unreachable* interior levels: adjacent equal boundaries
    /// leave no value that can land between them. Equalized fitting on
    /// duplicate-heavy data collapses quantiles silently (more than half
    /// the mass on one value pins several quantiles to it); callers can
    /// check this to detect that fewer than `q` levels are effectively in
    /// use. Zero for any strictly-ascending boundary set.
    pub fn collapsed_levels(&self) -> usize {
        self.boundaries.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// The rule this quantizer was fitted with.
    pub fn kind(&self) -> Quantization {
        self.kind
    }

    /// Quantizes a whole feature vector.
    pub fn levels_of(&self, features: &[f64]) -> Vec<usize> {
        features.iter().map(|&x| self.level(x)).collect()
    }

    /// Histogram of level occupancy over `values` — used by the Fig. 3
    /// experiment to show equalized bins receive near-equal mass.
    pub fn occupancy(&self, values: &[f64]) -> Vec<usize> {
        let mut counts = vec![0usize; self.q];
        for &v in values {
            counts[self.level(v)] += 1;
        }
        counts
    }
}

/// Independent quantizers per feature column (an alternative to the
/// paper's single global quantizer fitted over all feature values).
///
/// Per-feature fitting helps when feature scales differ wildly (each
/// column gets its own boundaries) at the cost of `n · (q − 1)` stored
/// boundaries instead of `q − 1`. The `ablation_quantizer_scope` binary
/// measures the accuracy difference on the five applications.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureQuantizers {
    columns: Vec<Quantizer>,
}

impl FeatureQuantizers {
    /// Fits one quantizer per feature column of a row-major matrix.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty or ragged matrix
    /// and propagates per-column fit errors.
    pub fn fit(kind: Quantization, rows: &[Vec<f64>], q: usize) -> Result<Self> {
        if rows.is_empty() {
            return Err(HdcError::invalid_dataset(
                "cannot fit quantizers to zero rows",
            ));
        }
        let width = rows[0].len();
        if width == 0 || rows.iter().any(|r| r.len() != width) {
            return Err(HdcError::invalid_dataset(
                "feature matrix must be rectangular and non-empty",
            ));
        }
        let mut columns = Vec::with_capacity(width);
        for j in 0..width {
            let column: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            columns.push(Quantizer::fit(kind, &column, q)?);
        }
        Ok(Self { columns })
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Number of levels `q` (identical across columns).
    pub fn levels(&self) -> usize {
        self.columns[0].levels()
    }

    /// The quantizer of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn column(&self, j: usize) -> &Quantizer {
        &self.columns[j]
    }

    /// Quantizes a feature vector column-wise.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on an arity mismatch.
    pub fn levels_of(&self, features: &[f64]) -> Result<Vec<usize>> {
        if features.len() != self.columns.len() {
            return Err(HdcError::invalid_dataset(format!(
                "expected {} features, got {}",
                self.columns.len(),
                features.len()
            )));
        }
        Ok(features
            .iter()
            .zip(&self.columns)
            .map(|(&x, quantizer)| quantizer.level(x))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64).collect()
    }

    /// Heavily skewed sample (quadratic CDF) to distinguish linear from
    /// equalized fitting.
    fn skewed(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 / n as f64).powi(4)).collect()
    }

    #[test]
    fn linear_boundaries_are_equal_width() {
        let q = Quantizer::fit(Quantization::Linear, &uniform(1000), 4).unwrap();
        let b = q.boundaries();
        assert_eq!(b.len(), 3);
        let w0 = b[0];
        assert!((b[1] - 2.0 * w0).abs() < 1e-9);
        assert!((b[2] - 3.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn equalized_boundaries_balance_occupancy_on_skewed_data() {
        let data = skewed(10_000);
        let lin = Quantizer::fit(Quantization::Linear, &data, 4).unwrap();
        let eq = Quantizer::fit(Quantization::Equalized, &data, 4).unwrap();
        let lin_occ = lin.occupancy(&data);
        let eq_occ = eq.occupancy(&data);
        // Linear bins are wildly unbalanced on x^4-skewed data…
        assert!(*lin_occ.iter().max().unwrap() > 5 * *lin_occ.iter().min().unwrap());
        // …equalized bins are near-uniform.
        let max = *eq_occ.iter().max().unwrap() as f64;
        let min = *eq_occ.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.1,
            "equalized occupancy unbalanced: {eq_occ:?}"
        );
    }

    #[test]
    fn level_covers_full_range_and_clamps() {
        let q = Quantizer::fit(Quantization::Linear, &uniform(100), 8).unwrap();
        assert_eq!(q.level(-100.0), 0);
        assert_eq!(q.level(100.0), 7);
        let seen: std::collections::BTreeSet<usize> =
            uniform(100).iter().map(|&x| q.level(x)).collect();
        assert_eq!(seen.len(), 8, "all 8 levels should be hit: {seen:?}");
    }

    #[test]
    fn constant_feature_is_degenerate_but_valid() {
        let q = Quantizer::fit(Quantization::Linear, &[5.0; 10], 4).unwrap();
        assert_eq!(q.level(5.0), 3);
        assert_eq!(q.level(4.9), 0);
        let q = Quantizer::fit(Quantization::Equalized, &[5.0; 10], 4).unwrap();
        assert_eq!(q.level(5.0), 3);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert!(matches!(
            Quantizer::fit(Quantization::Linear, &uniform(10), 1),
            Err(HdcError::InvalidConfig { parameter: "q", .. })
        ));
        assert!(matches!(
            Quantizer::fit(Quantization::Linear, &[], 4),
            Err(HdcError::InvalidDataset { .. })
        ));
        assert!(matches!(
            Quantizer::fit(Quantization::Linear, &[f64::NAN], 4),
            Err(HdcError::InvalidDataset { .. })
        ));
    }

    #[test]
    fn empty_input_errors_through_every_entry_point() {
        // The public fit path rejects empty values for both rules…
        for kind in [Quantization::Linear, Quantization::Equalized] {
            assert!(matches!(
                Quantizer::fit(kind, &[], 4),
                Err(HdcError::InvalidDataset { .. })
            ));
        }
        // …and the boundary builders guard themselves too (equalized used
        // to underflow `n - 1` when reached with zero values).
        assert!(Quantizer::linear_boundaries(&[], 4).is_err());
        assert!(Quantizer::equalized_boundaries(&[], 4).is_err());
    }

    #[test]
    fn all_equal_input_collapses_but_stays_usable() {
        for kind in [Quantization::Linear, Quantization::Equalized] {
            let q = Quantizer::fit(kind, &[5.0; 32], 4).unwrap();
            assert_eq!(q.boundaries(), &[5.0; 3]);
            // All 3 interior boundaries coincide: the 2 levels between
            // them are unreachable, which collapsed_levels reports.
            assert_eq!(q.collapsed_levels(), 2);
            assert_eq!(q.level(5.0), 3);
            assert_eq!(q.level(4.9), 0);
            assert!(q.boundaries().iter().all(|b| b.is_finite()));
        }
    }

    #[test]
    fn duplicate_heavy_input_reports_collapsed_levels() {
        // 3/4 of the mass sits on 1.0: the q=4 equalized quantiles at
        // 1/4 and 2/4 of the sorted data both land on 1.0, silently
        // merging the two middle levels.
        let mut data = vec![1.0; 75];
        data.extend((0..25).map(|i| 2.0 + i as f64 / 25.0));
        let eq = Quantizer::fit(Quantization::Equalized, &data, 4).unwrap();
        assert_eq!(eq.boundaries(), &[1.0, 1.0, 2.0]);
        assert_eq!(eq.collapsed_levels(), 1);
        // Only two levels are actually reachable on this data…
        let occupied = eq.occupancy(&data).iter().filter(|&&c| c > 0).count();
        assert_eq!(occupied, 2);
        // …while linear boundaries stay strictly ascending and lossless.
        let lin = Quantizer::fit(Quantization::Linear, &data, 4).unwrap();
        assert_eq!(lin.collapsed_levels(), 0);
        assert!(lin.boundaries().windows(2).all(|w| w[0] < w[1]));
        // A healthy equalized fit reports zero collapsed levels.
        let healthy = Quantizer::fit(Quantization::Equalized, &uniform(100), 4).unwrap();
        assert_eq!(healthy.collapsed_levels(), 0);
    }

    #[test]
    fn from_boundaries_validates() {
        assert!(Quantizer::from_boundaries(Quantization::Linear, vec![]).is_err());
        assert!(Quantizer::from_boundaries(Quantization::Linear, vec![2.0, 1.0]).is_err());
        assert!(Quantizer::from_boundaries(Quantization::Linear, vec![f64::INFINITY]).is_err());
        let q = Quantizer::from_boundaries(Quantization::Linear, vec![0.0, 1.0]).unwrap();
        assert_eq!(q.levels(), 3);
        assert_eq!(q.level(-1.0), 0);
        assert_eq!(q.level(0.5), 1);
        assert_eq!(q.level(2.0), 2);
    }

    #[test]
    fn levels_of_maps_whole_vector() {
        let q = Quantizer::fit(Quantization::Linear, &uniform(100), 2).unwrap();
        let lv = q.levels_of(&[0.0, 0.2, 0.8, 0.99]);
        assert_eq!(lv, vec![0, 0, 1, 1]);
    }

    #[test]
    fn boundary_values_go_to_upper_level() {
        let q = Quantizer::from_boundaries(Quantization::Linear, vec![1.0]).unwrap();
        assert_eq!(q.level(1.0), 1);
        assert_eq!(q.level(0.999_999), 0);
    }

    #[test]
    fn kind_is_preserved() {
        let q = Quantizer::fit(Quantization::Equalized, &uniform(10), 2).unwrap();
        assert_eq!(q.kind(), Quantization::Equalized);
    }

    #[test]
    fn equalized_on_uniform_matches_linear_closely() {
        let data = uniform(10_000);
        let lin = Quantizer::fit(Quantization::Linear, &data, 4).unwrap();
        let eq = Quantizer::fit(Quantization::Equalized, &data, 4).unwrap();
        for (a, b) in lin.boundaries().iter().zip(eq.boundaries()) {
            assert!((a - b).abs() < 0.01, "linear {a} vs equalized {b}");
        }
    }

    #[test]
    fn per_feature_quantizers_fit_each_column() {
        // Column 0 spans [0, 1]; column 1 spans [100, 200].
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, 100.0 + i as f64])
            .collect();
        let fq = FeatureQuantizers::fit(Quantization::Equalized, &rows, 4).unwrap();
        assert_eq!(fq.n_features(), 2);
        assert_eq!(fq.levels(), 4);
        // A global quantizer would dump all of column 0 into level 0;
        // per-feature boundaries resolve both columns.
        let lv = fq.levels_of(&[0.9, 101.0]).unwrap();
        assert_eq!(lv[0], 3);
        assert_eq!(lv[1], 0);
        assert!(fq.column(0).boundaries()[0] < 1.0);
        assert!(fq.column(1).boundaries()[0] > 100.0);
    }

    #[test]
    fn per_feature_quantizers_validate_inputs() {
        assert!(FeatureQuantizers::fit(Quantization::Linear, &[], 4).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(FeatureQuantizers::fit(Quantization::Linear, &ragged, 4).is_err());
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let fq = FeatureQuantizers::fit(Quantization::Linear, &rows, 2).unwrap();
        assert!(fq.levels_of(&[0.5]).is_err());
    }
}
