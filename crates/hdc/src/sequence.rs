//! Sequence encoding: item memories and n-gram binding.
//!
//! The prior-work HDC systems the paper compares against (§VII) classify
//! text and time-series signals by encoding *symbol sequences*: each
//! symbol gets a random item hypervector, an n-gram is the bound product
//! of its permuted symbols,
//!
//! ```text
//! G(s_1 … s_n) = ρ^{n-1}(I[s_1]) ⊙ ρ^{n-2}(I[s_2]) ⊙ … ⊙ I[s_n]
//! ```
//!
//! and a sequence is the bundle of all its n-grams. This module provides
//! that pipeline so the repository covers the classic HDC workloads
//! (language recognition, text classification) alongside the paper's
//! feature-vector applications.

use std::collections::HashMap;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{HdcError, Result};
use crate::hv::{BipolarHv, DenseHv};

/// A lazily grown item memory: every distinct symbol maps to an
/// independent random bipolar hypervector, deterministically derived from
/// the memory's seed and the symbol's hash — so two memories with the same
/// seed agree on every symbol regardless of insertion order.
#[derive(Debug, Clone)]
pub struct ItemMemory<T: Eq + Hash + Clone> {
    dim: usize,
    seed: u64,
    items: HashMap<T, BipolarHv>,
}

impl<T: Eq + Hash + Clone + std::fmt::Debug> ItemMemory<T> {
    /// Creates an empty item memory of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::invalid_config(
                "dim",
                "dimension must be positive",
            ));
        }
        Ok(Self {
            dim,
            seed,
            items: HashMap::new(),
        })
    }

    /// The hypervector for `symbol`, creating it on first use. The vector
    /// is derived from `hash(symbol) ^ seed`, so lookups are stable across
    /// runs and across memories with the same seed.
    pub fn item(&mut self, symbol: &T) -> &BipolarHv {
        if !self.items.contains_key(symbol) {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            use std::hash::Hasher;
            symbol.hash(&mut hasher);
            let symbol_seed = hasher.finish() ^ self.seed;
            let mut rng = StdRng::seed_from_u64(symbol_seed);
            let hv = BipolarHv::random(self.dim, &mut rng);
            self.items.insert(symbol.clone(), hv);
        }
        &self.items[symbol]
    }

    /// Number of distinct symbols seen.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no symbols have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// N-gram sequence encoder over an [`ItemMemory`].
#[derive(Debug, Clone)]
pub struct NgramEncoder<T: Eq + Hash + Clone> {
    memory: ItemMemory<T>,
    n: usize,
}

impl<T: Eq + Hash + Clone + std::fmt::Debug> NgramEncoder<T> {
    /// Creates an encoder with n-gram size `n` (3–5 is classic for text).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `n == 0` or `dim == 0`.
    pub fn new(dim: usize, n: usize, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(HdcError::invalid_config(
                "n",
                "n-gram size must be positive",
            ));
        }
        Ok(Self {
            memory: ItemMemory::new(dim, seed)?,
            n,
        })
    }

    /// The n-gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read access to the item memory.
    pub fn memory(&self) -> &ItemMemory<T> {
        &self.memory
    }

    /// Encodes one n-gram window (`window.len() == n`).
    fn encode_ngram(&mut self, window: &[T]) -> BipolarHv {
        debug_assert_eq!(window.len(), self.n);
        let mut acc = BipolarHv::ones(self.memory.dim());
        for (j, symbol) in window.iter().enumerate() {
            let rot = self.n - 1 - j;
            let item = self.memory.item(symbol).clone();
            acc = acc.bind(&item.rotated(rot));
        }
        acc
    }

    /// Encodes a whole sequence: the bundle of all its n-grams. Sequences
    /// shorter than `n` are encoded as a single truncated gram.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty sequence.
    pub fn encode(&mut self, sequence: &[T]) -> Result<DenseHv> {
        if sequence.is_empty() {
            return Err(HdcError::invalid_dataset("cannot encode an empty sequence"));
        }
        let mut acc = DenseHv::zeros(self.memory.dim());
        if sequence.len() < self.n {
            let mut short = BipolarHv::ones(self.memory.dim());
            for (j, symbol) in sequence.iter().enumerate() {
                let rot = sequence.len() - 1 - j;
                let item = self.memory.item(symbol).clone();
                short = short.bind(&item.rotated(rot));
            }
            acc.add_bipolar(&short);
            return Ok(acc);
        }
        for window in sequence.windows(self.n) {
            let gram = self.encode_ngram(window);
            acc.add_bipolar(&gram);
        }
        Ok(acc)
    }

    /// Convenience for text: encodes the characters of a string.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty string.
    pub fn encode_str(&mut self, text: &str) -> Result<DenseHv>
    where
        T: From<char>,
    {
        let symbols: Vec<T> = text.chars().map(T::from).collect();
        self.encode(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_memory_is_stable_and_seeded() {
        let mut a = ItemMemory::<char>::new(512, 7).unwrap();
        let mut b = ItemMemory::<char>::new(512, 7).unwrap();
        assert_eq!(a.item(&'x'), b.item(&'x'));
        assert!(!a.is_empty());
        assert_eq!(a.len(), 1);
        let mut c = ItemMemory::<char>::new(512, 8).unwrap();
        assert_ne!(a.item(&'x'), c.item(&'x'));
        // Distinct symbols are near-orthogonal.
        let x = a.item(&'x').clone();
        let y = a.item(&'y').clone();
        assert!(x.cosine(&y).abs() < 0.15);
    }

    #[test]
    fn ngram_encoding_is_order_sensitive() {
        let mut enc = NgramEncoder::<char>::new(2048, 3, 1).unwrap();
        let abc = enc.encode(&['a', 'b', 'c']).unwrap();
        let cba = enc.encode(&['c', 'b', 'a']).unwrap();
        let abc2 = enc.encode(&['a', 'b', 'c']).unwrap();
        assert_eq!(abc, abc2, "encoding must be deterministic");
        assert!(
            abc.cosine(&cba) < 0.3,
            "reversed trigram should be dissimilar: {}",
            abc.cosine(&cba)
        );
    }

    #[test]
    fn similar_texts_encode_similarly() {
        let mut enc = NgramEncoder::<char>::new(4096, 3, 2).unwrap();
        let a = enc
            .encode_str("the quick brown fox jumps over the lazy dog")
            .unwrap();
        let b = enc
            .encode_str("the quick brown fox jumped over a lazy dog")
            .unwrap();
        let c = enc
            .encode_str("zzzz qqqq kkkk wwww vvvv xxxx jjjj")
            .unwrap();
        assert!(a.cosine(&b) > a.cosine(&c) + 0.2);
    }

    #[test]
    fn short_sequences_are_handled() {
        let mut enc = NgramEncoder::<char>::new(256, 4, 3).unwrap();
        let h = enc.encode(&['a']).unwrap();
        assert_eq!(h.dim(), 256);
        assert!(enc.encode(&[]).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(NgramEncoder::<char>::new(0, 3, 0).is_err());
        assert!(NgramEncoder::<char>::new(64, 0, 0).is_err());
        assert!(ItemMemory::<char>::new(0, 0).is_err());
    }

    #[test]
    fn language_identification_toy() {
        // Classic HDC demo: distinguish two "languages" by trigram profile.
        let mut enc = NgramEncoder::<char>::new(4096, 3, 4).unwrap();
        let english = [
            "the cat sat on the mat",
            "a dog ran in the park",
            "she sells sea shells",
        ];
        let fake_latin = [
            "lorem ipsum dolor sit amet",
            "consectetur adipiscing elit",
            "sed do eiusmod tempor",
        ];
        let bundle = |enc: &mut NgramEncoder<char>, texts: &[&str]| {
            let mut acc = DenseHv::zeros(4096);
            for t in texts {
                acc.add_assign_hv(&enc.encode_str(t).unwrap());
            }
            acc
        };
        let en = bundle(&mut enc, &english);
        let la = bundle(&mut enc, &fake_latin);
        let probe_en = enc.encode_str("the dog sat on the shells").unwrap();
        let probe_la = enc.encode_str("dolor sit tempor elit").unwrap();
        assert!(probe_en.cosine(&en) > probe_en.cosine(&la));
        assert!(probe_la.cosine(&la) > probe_la.cosine(&en));
    }
}
