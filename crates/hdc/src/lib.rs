//! # hdc — baseline HyperDimensional Computing substrate
//!
//! This crate implements the classical HDC classification pipeline that the
//! LookHD paper (*Revisiting HyperDimensional Learning for FPGA and
//! Low-Power Architectures*, HPCA 2021) builds on and compares against:
//!
//! * [`hv`] — bit-packed bipolar hypervectors and dense integer
//!   hypervectors with the bind / bundle / permute / dot-product algebra;
//! * [`quantize`] — linear and equalized (quantile) feature quantization;
//! * [`levels`] — correlated level-hypervector ("alphabet") generation;
//! * [`encoding`] — the [`encoding::Encode`] trait and the baseline
//!   permutation encoder (Eq. 1 of the paper);
//! * [`model`] — class models and cosine/dot associative search;
//! * [`train`] — initial bundling training and perceptron-style retraining;
//! * [`classify`] — the [`Classifier`] / [`FitClassifier`] traits every
//!   model family in the workspace implements;
//! * [`classifier`] — the end-to-end baseline [`classifier::HdcClassifier`];
//! * [`binary`] — majority-thresholded binary models (prior-work regime);
//! * [`noise`] — fault injection for robustness studies;
//! * [`persist`] — dependency-free binary model (de)serialization;
//! * [`sequence`] — item memories and n-gram sequence encoding (the text /
//!   time-series workloads of the prior-work systems in §VII);
//! * [`cluster`] — cosine k-means clustering in hyperspace (refs \[19\]/\[20\]);
//! * [`metrics`] — accuracy and confusion matrices.
//!
//! The LookHD contribution itself (lookup-based encoding, counter training,
//! model compression) lives in the companion `lookhd` crate.
//!
//! ## Example
//!
//! ```
//! use hdc::classifier::{HdcClassifier, HdcConfig};
//! use hdc::{Classifier, FitClassifier};
//!
//! // A tiny two-class problem: low feature values vs high feature values.
//! let xs: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 }; 6])
//!     .collect();
//! let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
//!
//! let config = HdcConfig::new().with_dim(512).with_q(4);
//! let clf = HdcClassifier::fit(&config, &xs, &ys)?;
//! assert_eq!(clf.predict(&[0.1; 6])?, 0);
//! assert_eq!(clf.predict(&[0.9; 6])?, 1);
//! # Ok::<(), hdc::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod classifier;
pub mod classify;
pub mod cluster;
pub mod encoding;
mod error;
pub mod hv;
pub mod levels;
pub mod metrics;
pub mod model;
pub mod noise;
pub mod persist;
pub mod quantize;
pub mod sequence;
pub mod train;

pub use classify::{Classifier, FitClassifier};
pub use error::{HdcError, Result};
