//! Error type shared by the HDC substrate and the LookHD crates.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when configuring or training HDC models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// The offending parameter name.
        parameter: &'static str,
        /// Human-readable description of the constraint violation.
        message: String,
    },
    /// The training set was empty or labels/features disagreed in length.
    InvalidDataset {
        /// Human-readable description of the problem.
        message: String,
    },
    /// Two hypervectors (or a hypervector and a model) had different `D`.
    DimensionMismatch {
        /// Dimension expected by the receiver.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A class label was out of range for the model.
    UnknownClass {
        /// The offending label.
        label: usize,
        /// Number of classes the model holds.
        n_classes: usize,
    },
}

impl HdcError {
    /// Convenience constructor for [`HdcError::InvalidConfig`].
    pub fn invalid_config(parameter: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidConfig {
            parameter,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`HdcError::InvalidDataset`].
    pub fn invalid_dataset(message: impl Into<String>) -> Self {
        Self::InvalidDataset {
            message: message.into(),
        }
    }
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { parameter, message } => {
                write!(f, "invalid configuration for `{parameter}`: {message}")
            }
            Self::InvalidDataset { message } => write!(f, "invalid dataset: {message}"),
            Self::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected D={expected}, got D={actual}"
                )
            }
            Self::UnknownClass { label, n_classes } => {
                write!(
                    f,
                    "class label {label} out of range for {n_classes} classes"
                )
            }
        }
    }
}

impl StdError for HdcError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HdcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = HdcError::invalid_config("q", "must be at least 2");
        assert_eq!(
            e.to_string(),
            "invalid configuration for `q`: must be at least 2"
        );
        let e = HdcError::DimensionMismatch {
            expected: 2000,
            actual: 1000,
        };
        assert!(e.to_string().contains("2000"));
        let e = HdcError::UnknownClass {
            label: 9,
            n_classes: 4,
        };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: StdError + Send + Sync + 'static>() {}
        assert_good::<HdcError>();
    }
}
