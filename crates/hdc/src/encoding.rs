//! Encoders: mapping feature vectors into high-dimensional space.
//!
//! The baseline HDC encoding (Eq. 1 of the paper) quantizes every feature to
//! a level hypervector and bundles the per-feature permutations:
//!
//! ```text
//! H = L̄_1 + ρ L̄_2 + … + ρ^{n-1} L̄_n
//! ```
//!
//! where `ρ` is a one-position rotational shift and `L̄_i` is the level
//! hypervector of feature `i`'s quantized value. This module provides the
//! [`Encode`] trait shared with the LookHD lookup encoder and the baseline
//! [`PermutationEncoder`].

use crate::error::{HdcError, Result};
use crate::hv::DenseHv;
use crate::levels::LevelMemory;
use crate::quantize::{FeatureQuantizers, Quantizer};
use lookhd_engine::{Engine, EngineStats};

/// Maps a raw feature vector to a dense query/encoding hypervector.
///
/// Implementations are deterministic: encoding the same features twice
/// yields the same hypervector.
pub trait Encode {
    /// Hypervector dimensionality `D` produced by this encoder.
    fn dim(&self) -> usize;

    /// Number of input features `n` this encoder expects.
    fn n_features(&self) -> usize;

    /// Encodes one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if `features.len()` differs from
    /// [`Encode::n_features`].
    fn encode(&self, features: &[f64]) -> Result<DenseHv>;

    /// Encodes a batch of feature vectors.
    ///
    /// # Errors
    ///
    /// Propagates the first encoding error.
    fn encode_batch(&self, features: &[Vec<f64>]) -> Result<Vec<DenseHv>> {
        features.iter().map(|f| self.encode(f)).collect()
    }
}

/// Encodes a batch through an engine, sharding the rows across worker
/// threads. Encoding is per-sample deterministic and results are
/// concatenated in shard order, so the output equals
/// [`Encode::encode_batch`] for every thread count.
///
/// # Errors
///
/// Propagates the first encoding error in sample order.
pub fn encode_batch_with<E: Encode + Sync>(
    engine: &Engine,
    encoder: &E,
    features: &[Vec<f64>],
) -> Result<(Vec<DenseHv>, EngineStats)> {
    let _span = obs::span("encode_batch");
    obs::counter("encode_batch.samples", features.len() as u64);
    let (encoded, stats) = engine.map_reduce(
        features.len(),
        |range| {
            features[range]
                .iter()
                .map(|f| encoder.encode(f))
                .collect::<Result<Vec<DenseHv>>>()
        },
        |shards| {
            let mut out = Vec::with_capacity(features.len());
            for shard in shards {
                out.extend(shard?);
            }
            Ok::<Vec<DenseHv>, HdcError>(out)
        },
    );
    Ok((encoded?, stats))
}

/// The baseline permutation ("record-based") encoder of §II-A.
///
/// # Examples
///
/// ```
/// use hdc::encoding::{Encode, PermutationEncoder};
/// use hdc::levels::{LevelMemory, LevelScheme};
/// use hdc::quantize::{Quantization, Quantizer};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let levels = LevelMemory::generate(1000, 4, LevelScheme::RandomFlips, &mut rng)?;
/// let quantizer = Quantizer::fit(Quantization::Linear, &[0.0, 1.0, 2.0, 3.0], 4)?;
/// let enc = PermutationEncoder::new(levels, quantizer, 3)?;
/// let h = enc.encode(&[0.0, 1.5, 3.0])?;
/// assert_eq!(h.dim(), 1000);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PermutationEncoder {
    levels: LevelMemory,
    quantizer: QuantizerScope,
    n_features: usize,
}

/// Global (the paper's rule) or per-feature quantization.
#[derive(Debug, Clone)]
enum QuantizerScope {
    Global(Quantizer),
    PerFeature(FeatureQuantizers),
}

impl QuantizerScope {
    fn level(&self, j: usize, x: f64) -> usize {
        match self {
            Self::Global(q) => q.level(x),
            Self::PerFeature(fq) => fq.column(j).level(x),
        }
    }
}

impl PermutationEncoder {
    /// Builds an encoder from a level memory and a fitted quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `n_features == 0` or the
    /// quantizer's level count differs from the level memory's.
    pub fn new(levels: LevelMemory, quantizer: Quantizer, n_features: usize) -> Result<Self> {
        if n_features == 0 {
            return Err(HdcError::invalid_config(
                "n_features",
                "need at least one feature",
            ));
        }
        if quantizer.levels() != levels.levels() {
            return Err(HdcError::invalid_config(
                "q",
                format!(
                    "quantizer has {} levels but level memory has {}",
                    quantizer.levels(),
                    levels.levels()
                ),
            ));
        }
        Ok(Self {
            levels,
            quantizer: QuantizerScope::Global(quantizer),
            n_features,
        })
    }

    /// Builds an encoder with independent per-feature quantizers (an
    /// extension beyond the paper's single global quantizer; see
    /// [`FeatureQuantizers`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when the quantizers' level or
    /// feature counts disagree with the level memory.
    pub fn with_feature_quantizers(
        levels: LevelMemory,
        quantizers: FeatureQuantizers,
    ) -> Result<Self> {
        if quantizers.levels() != levels.levels() {
            return Err(HdcError::invalid_config(
                "q",
                format!(
                    "quantizers have {} levels but level memory has {}",
                    quantizers.levels(),
                    levels.levels()
                ),
            ));
        }
        let n_features = quantizers.n_features();
        Ok(Self {
            levels,
            quantizer: QuantizerScope::PerFeature(quantizers),
            n_features,
        })
    }

    /// The level memory (shared with LookHD's lookup-table builder).
    pub fn levels(&self) -> &LevelMemory {
        &self.levels
    }

    /// The fitted global quantizer, when this encoder uses one.
    pub fn quantizer(&self) -> Option<&Quantizer> {
        match &self.quantizer {
            QuantizerScope::Global(q) => Some(q),
            QuantizerScope::PerFeature(_) => None,
        }
    }
}

impl Encode for PermutationEncoder {
    fn dim(&self) -> usize {
        self.levels.dim()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn encode(&self, features: &[f64]) -> Result<DenseHv> {
        if features.len() != self.n_features {
            return Err(HdcError::invalid_dataset(format!(
                "expected {} features, got {}",
                self.n_features,
                features.len()
            )));
        }
        let mut acc = DenseHv::zeros(self.dim());
        for (i, &f) in features.iter().enumerate() {
            let level = self.quantizer.level(i, f);
            acc.add_rotated_bipolar(self.levels.level(level), i);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelScheme;
    use crate::quantize::Quantization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(dim: usize, q: usize, n: usize, seed: u64) -> PermutationEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Linear, &samples, q).unwrap();
        PermutationEncoder::new(levels, quantizer, n).unwrap()
    }

    #[test]
    fn encode_matches_manual_equation_one() {
        let enc = encoder(256, 4, 5, 1);
        let features = [0.1, 0.4, 0.6, 0.9, 0.2];
        let h = enc.encode(&features).unwrap();
        let mut manual = DenseHv::zeros(256);
        for (i, &f) in features.iter().enumerate() {
            let lvl = enc.quantizer().expect("global quantizer").level(f);
            let rotated = enc.levels().level(lvl).rotated(i);
            manual.add_bipolar(&rotated);
        }
        assert_eq!(h, manual);
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = encoder(512, 4, 8, 2);
        let f: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        assert_eq!(enc.encode(&f).unwrap(), enc.encode(&f).unwrap());
    }

    #[test]
    fn similar_inputs_encode_similarly() {
        let enc = encoder(4000, 8, 20, 3);
        let a: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let mut b = a.clone();
        b[0] += 0.01; // tiny perturbation, same quantization level
        let mut c: Vec<f64> = a.iter().map(|x| 1.0 - x).collect();
        c.reverse(); // thoroughly different pattern
        let ha = enc.encode(&a).unwrap();
        let hb = enc.encode(&b).unwrap();
        let hc = enc.encode(&c).unwrap();
        assert!(ha.cosine(&hb) > ha.cosine(&hc));
        assert!(ha.cosine(&hb) > 0.99);
    }

    #[test]
    fn element_magnitudes_bounded_by_feature_count() {
        let enc = encoder(128, 4, 10, 4);
        let f = vec![0.5; 10];
        let h = enc.encode(&f).unwrap();
        assert!(h.max_abs() <= 10);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let enc = encoder(128, 4, 10, 5);
        assert!(matches!(
            enc.encode(&[0.0; 3]),
            Err(HdcError::InvalidDataset { .. })
        ));
    }

    #[test]
    fn constructor_validates() {
        let mut rng = StdRng::seed_from_u64(6);
        let levels = LevelMemory::generate(64, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let quant = Quantizer::fit(Quantization::Linear, &[0.0, 1.0], 2).unwrap();
        assert!(PermutationEncoder::new(levels.clone(), quant, 4).is_err());
        let quant4 = Quantizer::fit(Quantization::Linear, &[0.0, 1.0], 4).unwrap();
        assert!(PermutationEncoder::new(levels, quant4, 0).is_err());
    }

    #[test]
    fn encode_batch_encodes_all_rows() {
        let enc = encoder(128, 4, 4, 7);
        let rows = vec![vec![0.1; 4], vec![0.9; 4]];
        let out = enc.encode_batch(&rows).unwrap();
        assert_eq!(out.len(), 2);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn per_feature_quantization_resolves_mixed_scales() {
        // Column 0 in [0, 1], column 1 in [100, 200]: a global quantizer
        // collapses column 0 to one level; per-feature fitting keeps both
        // informative, so two inputs differing only in column 0 encode
        // differently.
        let mut rng = StdRng::seed_from_u64(9);
        let levels = LevelMemory::generate(512, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, 100.0 + i as f64])
            .collect();
        let fq =
            crate::quantize::FeatureQuantizers::fit(Quantization::Equalized, &rows, 4).unwrap();
        let enc = PermutationEncoder::with_feature_quantizers(levels.clone(), fq).unwrap();
        assert!(enc.quantizer().is_none());
        let a = enc.encode(&[0.05, 150.0]).unwrap();
        let b = enc.encode(&[0.95, 150.0]).unwrap();
        assert!(
            a.cosine(&b) < 0.9,
            "per-feature levels must differ: {}",
            a.cosine(&b)
        );

        // A global *linear* quantizer over the pooled values cannot see
        // column 0 (all of [0, 1] falls in the lowest bin of [0, 200]).
        let pooled: Vec<f64> = rows.iter().flatten().copied().collect();
        let global = Quantizer::fit(Quantization::Linear, &pooled, 4).unwrap();
        let genc = PermutationEncoder::new(levels, global, 2).unwrap();
        let ga = genc.encode(&[0.05, 150.0]).unwrap();
        let gb = genc.encode(&[0.95, 150.0]).unwrap();
        assert!(ga.cosine(&gb) > 0.99, "global levels collapse column 0");
    }
}
