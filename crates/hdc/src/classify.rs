//! The common classifier interface shared by every model family in this
//! workspace.
//!
//! [`Classifier`] is the object-safe inference surface: the baseline HDC
//! classifier, the LookHD classifier, and the MLP baseline all implement
//! it, so experiment drivers can hold a `Box<dyn Classifier>` and swap
//! model families without changing evaluation code. [`FitClassifier`] adds
//! the associated-config constructor, which cannot live on the object-safe
//! trait (it returns `Self`).
//!
//! # Examples
//!
//! ```
//! use hdc::classify::{Classifier, FitClassifier};
//! use hdc::classifier::{HdcClassifier, HdcConfig};
//!
//! let xs: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 }; 4])
//!     .collect();
//! let ys: Vec<usize> = (0..20).map(|i| i % 2).collect();
//! let config = HdcConfig::new().with_dim(256).with_q(4);
//! let clf: Box<dyn Classifier> = Box::new(HdcClassifier::fit(&config, &xs, &ys)?);
//! assert_eq!(clf.num_classes(), 2);
//! assert_eq!(clf.predict(&[0.9; 4])?, 1);
//! assert!(clf.evaluate(&xs, &ys)? > 0.9);
//! # Ok::<(), hdc::HdcError>(())
//! ```

use crate::error::Result;
use crate::metrics::accuracy;

/// Object-safe inference interface of a trained classifier.
///
/// Implementations must be deterministic: the same query yields the same
/// label on every call, whatever execution configuration (thread count)
/// the implementation uses internally.
pub trait Classifier {
    /// Number of classes the model distinguishes.
    fn num_classes(&self) -> usize;

    /// Predicts the label of one raw feature vector.
    ///
    /// # Errors
    ///
    /// Returns an error for a wrong-arity feature vector.
    fn predict(&self, features: &[f64]) -> Result<usize>;

    /// Predicts labels for a batch of feature vectors.
    ///
    /// The default implementation maps [`Classifier::predict`] serially;
    /// implementations may override it with a parallel path as long as
    /// outputs stay identical.
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error in sample order.
    fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<usize>> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// Accuracy over a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors and
    /// [`crate::HdcError::InvalidDataset`] for mismatched lengths.
    fn evaluate(&self, features: &[Vec<f64>], labels: &[usize]) -> Result<f64> {
        accuracy(&self.predict_batch(features)?, labels)
    }

    /// Per-class scores for one feature vector, when the model family
    /// exposes them (`Ok(None)` otherwise — the default). Higher is more
    /// confident; `predict` returns the argmax. Observability consumers
    /// use this for prediction-margin (top1−top2) drift telemetry
    /// without touching the prediction path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Classifier::predict`].
    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        let _ = features;
        Ok(None)
    }

    /// The name of the scoring kernel serving predictions, when the model
    /// family distinguishes kernels (`None` otherwise — the default).
    /// Telemetry surfaces (`info` output, the serve admin snapshot) report
    /// this so operators can tell which kernel actually serves — automatic
    /// kernel selection may silently fall back to a slower exact path.
    fn kernel_name(&self) -> Option<&'static str> {
        None
    }
}

/// Training constructor for a classifier family.
///
/// Split from [`Classifier`] so the latter stays object-safe: `fit`
/// returns `Self` and refers to an associated config type, neither of
/// which a `dyn Classifier` can carry.
pub trait FitClassifier: Classifier + Sized {
    /// The hyperparameter set of this classifier family.
    type Config: Default;

    /// Trains a classifier on `features`/`labels`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid hyperparameters or an empty, ragged,
    /// or mismatched dataset.
    fn fit(config: &Self::Config, features: &[Vec<f64>], labels: &[usize]) -> Result<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HdcError;

    /// A trivial stub: classifies by sign of the first feature.
    struct SignStub;

    impl Classifier for SignStub {
        fn num_classes(&self) -> usize {
            2
        }

        fn predict(&self, features: &[f64]) -> Result<usize> {
            match features.first() {
                Some(&v) => Ok(usize::from(v >= 0.0)),
                None => Err(HdcError::invalid_dataset("empty feature vector")),
            }
        }
    }

    #[test]
    fn default_batch_and_evaluate_use_predict() {
        let clf = SignStub;
        let xs = vec![vec![-1.0], vec![2.0], vec![-0.5], vec![3.0]];
        assert_eq!(clf.predict_batch(&xs).unwrap(), vec![0, 1, 0, 1]);
        assert_eq!(clf.evaluate(&xs, &[0, 1, 0, 1]).unwrap(), 1.0);
        assert_eq!(clf.evaluate(&xs, &[1, 1, 0, 1]).unwrap(), 0.75);
    }

    #[test]
    fn trait_object_is_usable() {
        let clf: Box<dyn Classifier> = Box::new(SignStub);
        assert_eq!(clf.num_classes(), 2);
        assert_eq!(clf.predict(&[-4.0]).unwrap(), 0);
        assert!(clf.predict(&[]).is_err());
    }
}
