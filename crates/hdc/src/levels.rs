//! Level hypervector ("alphabet") generation (§II-A of the paper).
//!
//! Each quantized feature level `0..q` is represented by a bipolar level
//! hypervector `L_i`. Neighbouring levels must stay similar while the
//! extreme levels `L_0` and `L_{q-1}` must be (near-)orthogonal, so that
//! hyperspace distances mirror original-space distances.
//!
//! Two generation schemes are provided:
//!
//! * [`LevelScheme::RandomFlips`] — each next level flips `D/q` uniformly
//!   chosen dimensions of the previous level (flips may overlap across
//!   steps). After `q - 1` steps the fraction of net-flipped dimensions
//!   approaches `(1 - e^{-2(q-1)/q})/2 ≈ 0.43`, i.e. `δ(L_0, L_{q-1}) ≈ 0.13`
//!   — "nearly orthogonal", matching the paper's claim verbatim.
//! * [`LevelScheme::DisjointFlips`] — flips disjoint spans of a random
//!   dimension permutation, `D/(2(q-1))` per step, so similarity decays
//!   *linearly* from 1 to exactly ~0 at the far end. This is the classical
//!   level-hypervector construction used by several baseline HDC systems.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{HdcError, Result};
use crate::hv::BipolarHv;

/// How successive level hypervectors are derived from `L_0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LevelScheme {
    /// Flip `D/q` uniformly random dimensions per step (paper's description).
    #[default]
    RandomFlips,
    /// Flip disjoint `D/(2(q-1))`-dimension spans of one random permutation
    /// per step (classical construction; exact linear similarity decay).
    DisjointFlips,
}

/// An item memory of `q` correlated level hypervectors.
///
/// # Examples
///
/// ```
/// use hdc::levels::{LevelMemory, LevelScheme};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mem = LevelMemory::generate(1000, 4, LevelScheme::RandomFlips, &mut rng)?;
/// // Neighbouring levels are similar, far levels are not.
/// let near = mem.level(0).cosine(mem.level(1));
/// let far = mem.level(0).cosine(mem.level(3));
/// assert!(near > far);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LevelMemory {
    levels: Vec<BipolarHv>,
    scheme: LevelScheme,
}

impl LevelMemory {
    /// Generates `q` level hypervectors of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `dim == 0`, `q == 0`, or
    /// `q > dim` (there would be no dimensions left to flip per step).
    pub fn generate<R: Rng + ?Sized>(
        dim: usize,
        q: usize,
        scheme: LevelScheme,
        rng: &mut R,
    ) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::invalid_config(
                "dim",
                "dimension must be positive",
            ));
        }
        if q == 0 {
            return Err(HdcError::invalid_config("q", "need at least one level"));
        }
        if q > dim {
            return Err(HdcError::invalid_config(
                "q",
                format!("q={q} exceeds dimension {dim}; levels would be degenerate"),
            ));
        }
        let mut levels = Vec::with_capacity(q);
        levels.push(BipolarHv::random(dim, rng));
        match scheme {
            LevelScheme::RandomFlips => {
                let flips_per_step = (dim / q).max(1);
                let mut indices: Vec<usize> = (0..dim).collect();
                for _ in 1..q {
                    let mut next = levels.last().expect("non-empty").clone();
                    indices.shuffle(rng);
                    next.flip(&indices[..flips_per_step]);
                    levels.push(next);
                }
            }
            LevelScheme::DisjointFlips => {
                if q > 1 {
                    let flips_per_step = (dim / (2 * (q - 1))).max(1);
                    let mut perm: Vec<usize> = (0..dim).collect();
                    perm.shuffle(rng);
                    for step in 1..q {
                        let mut next = levels.last().expect("non-empty").clone();
                        let start = (step - 1) * flips_per_step;
                        let end = (start + flips_per_step).min(dim);
                        next.flip(&perm[start..end]);
                        levels.push(next);
                    }
                }
            }
        }
        Ok(Self { levels, scheme })
    }

    /// The level hypervector `L_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.levels()`.
    pub fn level(&self, i: usize) -> &BipolarHv {
        &self.levels[i]
    }

    /// Number of levels `q`.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Dimensionality `D` of the level hypervectors.
    pub fn dim(&self) -> usize {
        self.levels[0].dim()
    }

    /// The generation scheme used.
    pub fn scheme(&self) -> LevelScheme {
        self.scheme
    }

    /// Iterates over the levels in order `L_0 .. L_{q-1}`.
    pub fn iter(&self) -> std::slice::Iter<'_, BipolarHv> {
        self.levels.iter()
    }

    /// Cosine similarity profile `δ(L_0, L_i)` for all `i` — handy for tests
    /// and for the quantization experiments.
    pub fn similarity_profile(&self) -> Vec<f64> {
        let base = &self.levels[0];
        self.levels.iter().map(|l| base.cosine(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mem(dim: usize, q: usize, scheme: LevelScheme, seed: u64) -> LevelMemory {
        let mut rng = StdRng::seed_from_u64(seed);
        LevelMemory::generate(dim, q, scheme, &mut rng).unwrap()
    }

    #[test]
    fn generates_requested_count_and_dim() {
        let m = mem(2000, 8, LevelScheme::RandomFlips, 1);
        assert_eq!(m.levels(), 8);
        assert_eq!(m.dim(), 2000);
        assert_eq!(m.scheme(), LevelScheme::RandomFlips);
        assert_eq!(m.iter().count(), 8);
    }

    #[test]
    fn similarity_decreases_monotonically_disjoint() {
        let m = mem(4000, 8, LevelScheme::DisjointFlips, 2);
        let prof = m.similarity_profile();
        for w in prof.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "profile not decreasing: {prof:?}");
        }
        // Far end is orthogonal by construction (D/2 flipped dims).
        assert!(
            prof.last().unwrap().abs() < 0.05,
            "far level not orthogonal: {prof:?}"
        );
    }

    #[test]
    fn random_flips_far_level_nearly_orthogonal() {
        let m = mem(10_000, 16, LevelScheme::RandomFlips, 3);
        let prof = m.similarity_profile();
        // Neighbour similarity stays high.
        assert!(prof[1] > 0.8, "neighbour level too dissimilar: {}", prof[1]);
        // The theoretical asymptote for the far level is 1 - 2·(1-e^{-2·15/16})/2 ≈ 0.156.
        let far = *prof.last().unwrap();
        assert!(
            far.abs() < 0.25,
            "far level similarity {far} not near-orthogonal"
        );
    }

    #[test]
    fn neighbouring_levels_closer_than_distant_levels() {
        for scheme in [LevelScheme::RandomFlips, LevelScheme::DisjointFlips] {
            let m = mem(4000, 8, scheme, 4);
            for i in 0..7 {
                let near = m.level(i).cosine(m.level(i + 1));
                let far = m.level(0).cosine(m.level(7));
                assert!(near > far, "{scheme:?}: level {i} near={near} far={far}");
            }
        }
    }

    #[test]
    fn q_equal_one_is_single_random_level() {
        let m = mem(512, 1, LevelScheme::DisjointFlips, 5);
        assert_eq!(m.levels(), 1);
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(LevelMemory::generate(0, 4, LevelScheme::RandomFlips, &mut rng).is_err());
        assert!(LevelMemory::generate(100, 0, LevelScheme::RandomFlips, &mut rng).is_err());
        assert!(LevelMemory::generate(4, 16, LevelScheme::RandomFlips, &mut rng).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = mem(1000, 4, LevelScheme::RandomFlips, 42);
        let b = mem(1000, 4, LevelScheme::RandomFlips, 42);
        for i in 0..4 {
            assert_eq!(a.level(i), b.level(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = mem(1000, 4, LevelScheme::RandomFlips, 42);
        let b = mem(1000, 4, LevelScheme::RandomFlips, 43);
        assert_ne!(a.level(0), b.level(0));
    }
}
