//! Unsupervised clustering in hyperspace (the paper's refs \[19\]/\[20\]
//! apply HDC to clustering; this is the k-means-style variant).
//!
//! Centroids are dense hypervectors; assignment uses cosine similarity and
//! the update re-bundles each cluster's members. Because encoded samples
//! live on a (near-)sphere, cosine k-means in hyperspace behaves like
//! spherical k-means in the original space but inherits HDC's robustness
//! and cheap integer arithmetic.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{HdcError, Result};
use crate::hv::DenseHv;

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Final centroids, one dense hypervector per cluster.
    pub centroids: Vec<DenseHv>,
    /// Cluster index per input sample.
    pub assignments: Vec<usize>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster sizes (index = cluster).
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Assigns a new encoded sample to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn assign(&self, encoded: &DenseHv) -> Result<usize> {
        if encoded.dim() != self.centroids[0].dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.centroids[0].dim(),
                actual: encoded.dim(),
            });
        }
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let sim = encoded.cosine(centroid);
            if sim > best_sim {
                best_sim = sim;
                best = c;
            }
        }
        Ok(best)
    }
}

/// Runs cosine k-means over pre-encoded hypervectors.
///
/// Initialization picks `k` distinct samples as seeds (deterministic per
/// `rng`); iteration alternates cosine assignment and centroid re-bundling
/// until assignments stabilize or `max_iterations` is reached. Empty
/// clusters are re-seeded with the sample farthest from its centroid.
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] when `k == 0` or
/// [`HdcError::InvalidDataset`] when there are fewer samples than
/// clusters or dimensions disagree.
pub fn kmeans<R: Rng + ?Sized>(
    encoded: &[DenseHv],
    k: usize,
    max_iterations: usize,
    rng: &mut R,
) -> Result<Clustering> {
    if k == 0 {
        return Err(HdcError::invalid_config("k", "need at least one cluster"));
    }
    if encoded.len() < k {
        return Err(HdcError::invalid_dataset(format!(
            "{} samples cannot form {k} clusters",
            encoded.len()
        )));
    }
    let dim = encoded[0].dim();
    if encoded.iter().any(|h| h.dim() != dim) {
        return Err(HdcError::DimensionMismatch {
            expected: dim,
            actual: encoded
                .iter()
                .find(|h| h.dim() != dim)
                .expect("exists")
                .dim(),
        });
    }
    // Seed with k distinct samples.
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    order.shuffle(rng);
    let mut centroids: Vec<DenseHv> = order[..k].iter().map(|&i| encoded[i].clone()).collect();
    let mut assignments = vec![0usize; encoded.len()];
    let mut iterations = 0usize;
    for iter in 0..max_iterations {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, h) in encoded.iter().enumerate() {
            let mut best = 0usize;
            let mut best_sim = f64::NEG_INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let sim = h.cosine(centroid);
                if sim > best_sim {
                    best_sim = sim;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step: re-bundle members.
        let mut sums = vec![DenseHv::zeros(dim); k];
        let mut counts = vec![0usize; k];
        for (h, &a) in encoded.iter().zip(&assignments) {
            sums[a].add_assign_hv(h);
            counts[a] += 1;
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                centroids[c] = sums[c].clone();
            } else {
                // Re-seed an empty cluster with the worst-fitting sample.
                let (worst, _) = encoded
                    .iter()
                    .enumerate()
                    .map(|(i, h)| (i, h.cosine(&centroids[assignments[i]])))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .expect("non-empty dataset");
                centroids[c] = encoded[worst].clone();
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    Ok(Clustering {
        centroids,
        assignments,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hv::BipolarHv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Encoded samples around `k` random prototypes.
    fn blobs(
        k: usize,
        per: usize,
        dim: usize,
        flips: usize,
        seed: u64,
    ) -> (Vec<DenseHv>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<BipolarHv> = (0..k).map(|_| BipolarHv::random(dim, &mut rng)).collect();
        let mut xs = Vec::new();
        let mut truth = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..per {
                let mut hv = p.clone();
                let idx: Vec<usize> = (0..flips).map(|_| rng.gen_range(0..dim)).collect();
                hv.flip(&idx);
                xs.push(DenseHv::from(&hv));
                truth.push(c);
            }
        }
        (xs, truth)
    }

    /// Clustering accuracy up to label permutation (greedy matching).
    fn purity(assignments: &[usize], truth: &[usize], k: usize) -> f64 {
        let mut counts = vec![vec![0usize; k]; k];
        for (&a, &t) in assignments.iter().zip(truth) {
            counts[a][t] += 1;
        }
        let correct: usize = counts
            .iter()
            .map(|row| row.iter().max().copied().unwrap_or(0))
            .sum();
        correct as f64 / assignments.len() as f64
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let (xs, truth) = blobs(3, 30, 1024, 60, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let clustering = kmeans(&xs, 3, 25, &mut rng).unwrap();
        let p = purity(&clustering.assignments, &truth, 3);
        assert!(p > 0.95, "purity {p}");
        assert_eq!(clustering.k(), 3);
        assert_eq!(clustering.sizes().iter().sum::<usize>(), 90);
    }

    #[test]
    fn assign_routes_new_samples() {
        let (xs, _) = blobs(2, 20, 512, 20, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let clustering = kmeans(&xs, 2, 20, &mut rng).unwrap();
        // A fresh sample near cluster of xs[0] should land with xs[0].
        let target = clustering.assignments[0];
        assert_eq!(clustering.assign(&xs[0]).unwrap(), target);
        assert!(clustering.assign(&DenseHv::zeros(99)).is_err());
    }

    #[test]
    fn converges_and_reports_iterations() {
        let (xs, _) = blobs(2, 15, 512, 10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let clustering = kmeans(&xs, 2, 50, &mut rng).unwrap();
        assert!(
            clustering.iterations < 50,
            "should converge early: {}",
            clustering.iterations
        );
    }

    #[test]
    fn validates_inputs() {
        let (xs, _) = blobs(2, 3, 64, 5, 7);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(kmeans(&xs, 0, 5, &mut rng).is_err());
        assert!(kmeans(&xs[..1], 2, 5, &mut rng).is_err());
        let mut ragged = xs.clone();
        ragged.push(DenseHv::zeros(32));
        assert!(kmeans(&ragged, 2, 5, &mut rng).is_err());
    }

    #[test]
    fn k_equals_n_is_degenerate_but_valid() {
        let (xs, _) = blobs(2, 2, 128, 5, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let clustering = kmeans(&xs, 4, 10, &mut rng).unwrap();
        assert_eq!(clustering.k(), 4);
    }
}
