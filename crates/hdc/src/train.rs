//! Initial training and iterative retraining (§II-B).
//!
//! Initial training bundles (element-wise adds) every encoded sample into
//! its class hypervector. Retraining then revisits the training set for a
//! few epochs: each misclassified sample is added to its true class and
//! subtracted from the wrongly predicted class — a perceptron-style update
//! in hyperspace.

use crate::error::{HdcError, Result};
use crate::hv::DenseHv;
use crate::model::ClassModel;
use lookhd_engine::{Engine, EngineStats};

/// Per-epoch statistics produced by [`retrain`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Number of misclassified training samples (model updates) this epoch.
    pub updates: usize,
    /// Training accuracy measured during the epoch's pass.
    pub train_accuracy: f64,
}

/// Summary of a retraining run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// One entry per epoch actually executed.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Number of epochs executed.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }

    /// Total model updates across all epochs.
    pub fn total_updates(&self) -> usize {
        self.epochs.iter().map(|e| e.updates).sum()
    }

    /// Average updates per epoch (0.0 when no epochs ran) — the statistic
    /// the paper's retraining-cost evaluation uses (§VI-E).
    pub fn avg_updates_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.total_updates() as f64 / self.epochs.len() as f64
        }
    }

    /// Final training accuracy (0.0 when no epochs ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }
}

/// Bundles pre-encoded samples into a fresh class model
/// (`C_i = Σ_{j ∈ class_i} H_j`).
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] when `encoded` is empty or length
/// differs from `labels`, [`HdcError::UnknownClass`] for an out-of-range
/// label, and [`HdcError::DimensionMismatch`] for inconsistent dimensions.
pub fn initial_fit(encoded: &[DenseHv], labels: &[usize], n_classes: usize) -> Result<ClassModel> {
    let _span = obs::span("bundle_train");
    if encoded.is_empty() {
        return Err(HdcError::invalid_dataset("cannot train on zero samples"));
    }
    if encoded.len() != labels.len() {
        return Err(HdcError::invalid_dataset(format!(
            "{} samples but {} labels",
            encoded.len(),
            labels.len()
        )));
    }
    let mut model = ClassModel::zeros(n_classes, encoded[0].dim())?;
    for (h, &y) in encoded.iter().zip(labels) {
        model.add(y, h)?;
    }
    model.refresh_norms();
    Ok(model)
}

/// Sharded variant of [`initial_fit`]: each engine worker bundles a
/// private partial model over its shard of samples, and the partials are
/// element-wise added in shard order. Because bundling is integer
/// addition (associative and commutative), the result is **bit-identical**
/// to [`initial_fit`] for every thread count.
///
/// # Errors
///
/// Same conditions as [`initial_fit`].
pub fn initial_fit_with(
    engine: &Engine,
    encoded: &[DenseHv],
    labels: &[usize],
    n_classes: usize,
) -> Result<(ClassModel, EngineStats)> {
    let _span = obs::span("bundle_train");
    if encoded.is_empty() {
        return Err(HdcError::invalid_dataset("cannot train on zero samples"));
    }
    if encoded.len() != labels.len() {
        return Err(HdcError::invalid_dataset(format!(
            "{} samples but {} labels",
            encoded.len(),
            labels.len()
        )));
    }
    let dim = encoded[0].dim();
    let (merged, stats) = engine.map_reduce(
        encoded.len(),
        |range| {
            let mut partial = ClassModel::zeros(n_classes, dim)?;
            for i in range {
                partial.add(labels[i], &encoded[i])?;
            }
            Ok::<ClassModel, HdcError>(partial)
        },
        |partials| {
            let mut iter = partials.into_iter();
            let mut model = iter.next().expect("non-empty input implies >= 1 shard")?;
            for partial in iter {
                model.merge_add(&partial?)?;
            }
            model.refresh_norms();
            Ok::<ClassModel, HdcError>(model)
        },
    );
    Ok((merged?, stats))
}

/// Runs up to `max_epochs` of perceptron-style retraining, stopping early
/// when an epoch completes with zero updates (the model has stabilized).
///
/// Updates are applied online (immediately after each misprediction), the
/// usual software HDC retraining regime; the FPGA variant in
/// `lookhd::retrain` stages updates on a copy instead (§V-C).
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] if `encoded` and `labels` lengths
/// differ, plus any model-update error.
pub fn retrain(
    model: &mut ClassModel,
    encoded: &[DenseHv],
    labels: &[usize],
    max_epochs: usize,
) -> Result<TrainReport> {
    if encoded.len() != labels.len() {
        return Err(HdcError::invalid_dataset(format!(
            "{} samples but {} labels",
            encoded.len(),
            labels.len()
        )));
    }
    let mut report = TrainReport::default();
    for epoch in 0..max_epochs {
        let mut updates = 0usize;
        let mut correct = 0usize;
        for (h, &y) in encoded.iter().zip(labels) {
            let pred = model.predict(h)?;
            if pred == y {
                correct += 1;
            } else {
                model.add(y, h)?;
                model.sub(pred, h)?;
                model.refresh_norms();
                updates += 1;
            }
        }
        report.epochs.push(EpochStats {
            epoch,
            updates,
            train_accuracy: correct as f64 / encoded.len().max(1) as f64,
        });
        if updates == 0 {
            break;
        }
    }
    Ok(report)
}

/// Runs retraining with the paper's stopping rule: "the retraining needs
/// to be continued for a few iterations until the HDC accuracy stabilized
/// over the validation data, which is a part of the training dataset"
/// (§II-B). Epochs run until validation accuracy has not improved for
/// `patience` consecutive epochs (or `max_epochs` is reached); the model
/// is rolled back to the best validation snapshot.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for empty or mismatched inputs,
/// plus any model-update error.
#[allow(clippy::too_many_arguments)]
pub fn retrain_with_validation(
    model: &mut ClassModel,
    train_encoded: &[DenseHv],
    train_labels: &[usize],
    val_encoded: &[DenseHv],
    val_labels: &[usize],
    max_epochs: usize,
    patience: usize,
) -> Result<TrainReport> {
    if val_encoded.is_empty() || val_encoded.len() != val_labels.len() {
        return Err(HdcError::invalid_dataset(
            "validation split must be non-empty and consistent",
        ));
    }
    let val_accuracy = |m: &ClassModel| -> Result<f64> {
        let mut correct = 0usize;
        for (h, &y) in val_encoded.iter().zip(val_labels) {
            if m.predict(h)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / val_encoded.len() as f64)
    };
    let mut best = model.clone();
    let mut best_acc = val_accuracy(model)?;
    let mut since_best = 0usize;
    let mut report = TrainReport::default();
    for epoch in 0..max_epochs {
        let mut epoch_report = retrain(model, train_encoded, train_labels, 1)?;
        if let Some(mut stats) = epoch_report.epochs.pop() {
            stats.epoch = epoch;
            report.epochs.push(stats);
        }
        let acc = val_accuracy(model)?;
        if acc > best_acc {
            best_acc = acc;
            best = model.clone();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
        if report.epochs.last().is_some_and(|e| e.updates == 0) {
            break;
        }
    }
    *model = best;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hv::BipolarHv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a noisy two-class dataset of encoded hypervectors around two
    /// random bipolar prototypes.
    fn noisy_dataset(
        dim: usize,
        per_class: usize,
        noise_flips: usize,
        seed: u64,
    ) -> (Vec<DenseHv>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos = [
            BipolarHv::random(dim, &mut rng),
            BipolarHv::random(dim, &mut rng),
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, proto) in protos.iter().enumerate() {
            for _ in 0..per_class {
                let mut hv = proto.clone();
                let idx: Vec<usize> = (0..noise_flips).map(|_| rng.gen_range(0..dim)).collect();
                hv.flip(&idx);
                xs.push(DenseHv::from(&hv));
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn initial_fit_separates_clean_classes() {
        let (xs, ys) = noisy_dataset(512, 20, 50, 1);
        let model = initial_fit(&xs, &ys, 2).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| model.predict(h).unwrap() == y)
            .count();
        assert_eq!(correct, xs.len());
    }

    #[test]
    fn initial_fit_matches_manual_sum() {
        let (xs, ys) = noisy_dataset(64, 3, 5, 2);
        let model = initial_fit(&xs, &ys, 2).unwrap();
        let mut manual = DenseHv::zeros(64);
        for (h, &y) in xs.iter().zip(&ys) {
            if y == 0 {
                manual.add_assign_hv(h);
            }
        }
        assert_eq!(model.class(0), &manual);
    }

    #[test]
    fn retrain_stops_early_when_perfect() {
        let (xs, ys) = noisy_dataset(512, 10, 20, 3);
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        let report = retrain(&mut model, &xs, &ys, 10).unwrap();
        assert!(report.epochs_run() <= 2, "should converge fast: {report:?}");
        assert_eq!(report.final_accuracy(), 1.0);
    }

    #[test]
    fn retrain_improves_a_deliberately_corrupted_model() {
        let (xs, ys) = noisy_dataset(512, 25, 120, 4);
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        // Corrupt class 0 by negating its accumulated mass (subtract it twice),
        // so class-0 queries anti-correlate with their own class hypervector.
        for (h, &y) in xs.iter().zip(&ys) {
            if y == 0 {
                model.sub(0, h).unwrap();
                model.sub(0, h).unwrap();
            }
        }
        model.refresh_norms();
        let acc_before = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| model.predict(h).unwrap() == y)
            .count() as f64
            / xs.len() as f64;
        let report = retrain(&mut model, &xs, &ys, 20).unwrap();
        assert!(
            report.final_accuracy() > acc_before,
            "retraining should recover accuracy: before={acc_before}, after={}",
            report.final_accuracy()
        );
    }

    #[test]
    fn report_statistics_are_consistent() {
        let stats = TrainReport {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    updates: 10,
                    train_accuracy: 0.8,
                },
                EpochStats {
                    epoch: 1,
                    updates: 4,
                    train_accuracy: 0.95,
                },
            ],
        };
        assert_eq!(stats.epochs_run(), 2);
        assert_eq!(stats.total_updates(), 14);
        assert!((stats.avg_updates_per_epoch() - 7.0).abs() < 1e-12);
        assert!((stats.final_accuracy() - 0.95).abs() < 1e-12);
        assert_eq!(TrainReport::default().avg_updates_per_epoch(), 0.0);
    }

    #[test]
    fn validates_inputs() {
        let (xs, ys) = noisy_dataset(64, 2, 5, 5);
        assert!(initial_fit(&[], &[], 2).is_err());
        assert!(initial_fit(&xs, &ys[..1], 2).is_err());
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        assert!(retrain(&mut model, &xs, &ys[..1], 1).is_err());
        // Out-of-range label
        assert!(initial_fit(&xs, &vec![9; xs.len()], 2).is_err());
    }

    #[test]
    fn validation_stop_keeps_best_model() {
        let (xs, ys) = noisy_dataset(512, 20, 120, 7);
        // Corrupt so retraining has real work to do.
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        for (h, &y) in xs.iter().zip(&ys) {
            if y == 0 {
                model.sub(0, h).unwrap();
                model.sub(0, h).unwrap();
            }
        }
        model.refresh_norms();
        // Use the tail of the data as validation.
        let (vx, vy) = (&xs[30..], &ys[30..]);
        let report =
            retrain_with_validation(&mut model, &xs[..30], &ys[..30], vx, vy, 20, 3).unwrap();
        assert!(report.epochs_run() >= 1);
        let val_acc = vx
            .iter()
            .zip(vy)
            .filter(|(h, &y)| model.predict(h).unwrap() == y)
            .count() as f64
            / vx.len() as f64;
        assert!(val_acc > 0.8, "validation accuracy too low: {val_acc}");
    }

    #[test]
    fn validation_stop_validates_inputs() {
        let (xs, ys) = noisy_dataset(64, 2, 5, 8);
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        assert!(retrain_with_validation(&mut model, &xs, &ys, &[], &[], 5, 2).is_err());
    }

    #[test]
    fn zero_epochs_is_a_no_op() {
        let (xs, ys) = noisy_dataset(64, 2, 5, 6);
        let mut model = initial_fit(&xs, &ys, 2).unwrap();
        let before = model.class(0).clone();
        let report = retrain(&mut model, &xs, &ys, 0).unwrap();
        assert_eq!(report.epochs_run(), 0);
        assert_eq!(model.class(0), &before);
    }
}
