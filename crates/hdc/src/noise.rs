//! Noise injection for robustness studies.
//!
//! One of HDC's selling points (§I) is robustness to hardware noise and
//! bit-level faults. These helpers corrupt stored hypervectors so tests and
//! benches can measure how gracefully accuracy degrades.

use rand::Rng;

use crate::hv::{BipolarHv, DenseHv};
use crate::model::ClassModel;

/// Flips each dimension of a bipolar hypervector independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn flip_bipolar<R: Rng + ?Sized>(hv: &mut BipolarHv, p: f64, rng: &mut R) {
    assert!(
        (0.0..=1.0).contains(&p),
        "flip probability must be in [0, 1]"
    );
    let idx: Vec<usize> = (0..hv.dim()).filter(|_| rng.gen_bool(p)).collect();
    hv.flip(&idx);
}

/// Negates each element of a dense hypervector independently with
/// probability `p` (models a sign-bit fault in sign-magnitude storage).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn flip_signs<R: Rng + ?Sized>(hv: &mut DenseHv, p: f64, rng: &mut R) {
    assert!(
        (0.0..=1.0).contains(&p),
        "flip probability must be in [0, 1]"
    );
    for v in hv.as_mut_slice() {
        if rng.gen_bool(p) {
            *v = -*v;
        }
    }
}

/// Applies [`flip_signs`] to every class of a model and refreshes its norms.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn corrupt_model<R: Rng + ?Sized>(model: &mut ClassModel, p: f64, rng: &mut R) {
    let k = model.n_classes();
    for label in 0..k {
        let mut c = model.class(label).clone();
        flip_signs(&mut c, p, rng);
        // Replace by subtracting the old and adding the corrupted values.
        let old = model.class(label).clone();
        model.sub(label, &old).expect("label in range");
        model.add(label, &c).expect("label in range");
    }
    model.refresh_norms();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flip_bipolar_rate_is_approximately_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = BipolarHv::random(10_000, &mut rng);
        let mut noisy = orig.clone();
        flip_bipolar(&mut noisy, 0.1, &mut rng);
        let flipped = orig.hamming(&noisy) as f64 / 10_000.0;
        assert!((flipped - 0.1).abs() < 0.02, "flip rate {flipped}");
    }

    #[test]
    fn flip_signs_zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = DenseHv::from_vec(vec![1, -2, 3]);
        let orig = v.clone();
        flip_signs(&mut v, 0.0, &mut rng);
        assert_eq!(v, orig);
    }

    #[test]
    fn flip_signs_one_p_negates_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = DenseHv::from_vec(vec![1, -2, 3]);
        flip_signs(&mut v, 1.0, &mut rng);
        assert_eq!(v.as_slice(), &[-1, 2, -3]);
    }

    #[test]
    fn small_noise_preserves_predictions() {
        // HDC robustness: 1% sign faults should not change the winner on
        // well-separated classes.
        let mut rng = StdRng::seed_from_u64(4);
        let a = BipolarHv::random(4000, &mut rng);
        let b = BipolarHv::random(4000, &mut rng);
        let mut model =
            ClassModel::from_classes(vec![DenseHv::from(&a), DenseHv::from(&b)]).unwrap();
        let query = DenseHv::from(&a);
        assert_eq!(model.predict(&query).unwrap(), 0);
        corrupt_model(&mut model, 0.01, &mut rng);
        assert_eq!(model.predict(&query).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn rejects_invalid_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = DenseHv::zeros(4);
        flip_signs(&mut v, 1.5, &mut rng);
    }
}
