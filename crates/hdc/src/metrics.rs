//! Classification metrics: accuracy and confusion matrices.

use crate::error::{HdcError, Result};

/// Fraction of predictions matching the reference labels.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] if the slices are empty or differ
/// in length.
///
/// # Examples
///
/// ```
/// let acc = hdc::metrics::accuracy(&[0, 1, 1], &[0, 1, 0])?;
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), hdc::HdcError>(())
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.is_empty() {
        return Err(HdcError::invalid_dataset("cannot score zero predictions"));
    }
    if predictions.len() != labels.len() {
        return Err(HdcError::invalid_dataset(format!(
            "{} predictions but {} labels",
            predictions.len(),
            labels.len()
        )));
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| p == y)
        .count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// A `k × k` confusion matrix; rows are true labels, columns predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for empty or mismatched slices
    /// and [`HdcError::UnknownClass`] for labels `≥ n_classes`.
    pub fn from_predictions(
        predictions: &[usize],
        labels: &[usize],
        n_classes: usize,
    ) -> Result<Self> {
        if predictions.is_empty() || predictions.len() != labels.len() {
            return Err(HdcError::invalid_dataset(
                "predictions and labels must be equal-length and non-empty",
            ));
        }
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&p, &y) in predictions.iter().zip(labels) {
            if p >= n_classes || y >= n_classes {
                return Err(HdcError::UnknownClass {
                    label: p.max(y),
                    n_classes,
                });
            }
            counts[y * n_classes + p] += 1;
        }
        Ok(Self { n_classes, counts })
    }

    /// Count of samples with true label `truth` predicted as `pred`.
    ///
    /// # Panics
    ///
    /// Panics if either index is `≥ n_classes`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        assert!(truth < self.n_classes && pred < self.n_classes);
        self.counts[truth * self.n_classes + pred]
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Overall accuracy derived from the matrix diagonal.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.n_classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum); `None` when a class has no
    /// samples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = (0..self.n_classes).map(|j| self.count(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]).unwrap(), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]).unwrap(), 0.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 0);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(cm.n_classes(), 2);
    }

    #[test]
    fn recall_handles_empty_rows() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3).unwrap();
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.recall(1), None);
    }

    #[test]
    fn rejects_out_of_range_labels() {
        assert!(matches!(
            ConfusionMatrix::from_predictions(&[5], &[0], 2),
            Err(HdcError::UnknownClass { .. })
        ));
    }
}
