//! # netpoll — a thin, dependency-free readiness-polling shim
//!
//! `lookhd-serve`'s event loop needs exactly four OS facilities: "tell me
//! which of these sockets are readable/writable", "let another thread
//! wake the poll", nonblocking accept, and nothing else. This crate
//! wraps them behind a tiny safe API so the serve crate itself can stay
//! `#![forbid(unsafe_code)]` while the workspace stays free of external
//! dependencies (the usual `mio`/`libc` route is unavailable offline).
//!
//! * On **Linux** the backend is raw `epoll` — `epoll_create1` /
//!   `epoll_ctl` / `epoll_wait` declared as `extern "C"` bindings against
//!   the libc that `std` already links, plus an `eventfd` for cross-thread
//!   wakeups. Pollers run level-triggered by default; [`Mode::Edge`]
//!   switches every registration (waker included) to `EPOLLET`, trading
//!   re-reported readiness for one wakeup per readiness *transition* —
//!   callers must then drain each fd to `WouldBlock` before waiting again.
//! * On **other Unixes** the same API is served by POSIX `poll(2)` with a
//!   self-pipe waker. O(n) per wait, fine as a portability fallback.
//!   `poll(2)` has no edge-triggered mode, so [`Mode::Edge`] degrades to
//!   level-triggered there; code written to the edge contract (drain to
//!   `WouldBlock`) is correct under both, it just wakes more often.
//!
//! The Linux backend also exposes [`reuseport_listener`]: a
//! `SO_REUSEPORT` TCP listener factory so several acceptor threads can
//! each bind their own listener to one address and let the kernel shard
//! incoming connections across them. On the portable backend it returns
//! `Unsupported` and callers fall back to a single shared listener.
//!
//! The `unsafe` in this crate is confined to the `sys` FFI declarations
//! and the few call sites that use them; every invariant (valid fds via
//! `OwnedFd`, initialized event buffers, no aliasing) is local and
//! documented there.
//!
//! ## Tokens
//!
//! Each registered fd carries a caller-chosen `u64` token returned in
//! [`Event::token`]. The token [`WAKER_TOKEN`] is reserved: events for the
//! internal wake fd are consumed and reported with that token so callers
//! can distinguish "a peer woke you" from socket readiness.
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//! use netpoll::{Interest, Poller};
//!
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! listener.set_nonblocking(true)?;
//! let poller = Poller::new()?;
//! poller.register(listener.as_raw_fd(), 7, Interest::READABLE)?;
//! let mut events = Vec::new();
//! poller.wait(&mut events, None)?; // blocks until readiness or wake()
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]

use std::io;
use std::os::fd::RawFd;

/// The reserved token reported for wakeups triggered via [`Waker::wake`].
/// Registering a caller fd with this token is rejected.
pub const WAKER_TOKEN: u64 = u64::MAX;

/// Readiness delivery discipline for a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Report an fd on every wait while it stays ready (epoll default).
    /// Undrained sockets simply show up again next wait.
    Level,
    /// Report an fd only when its readiness *transitions* (`EPOLLET`).
    /// Callers must drain each reported fd to `WouldBlock` before the
    /// next wait or risk missing data. The portable `poll(2)` backend
    /// cannot express this and silently serves level-triggered events;
    /// the drain-to-`WouldBlock` contract is correct under both.
    Edge,
}

/// Which readiness conditions a registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Watch for readability only.
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };
    /// Watch for writability only.
    pub const WRITABLE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Watch for both readability and writability.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
    /// Watch for nothing: the fd stays registered (hangup/error events are
    /// still reported) but produces no read/write readiness. Used to park
    /// a connection whose input should be ignored (e.g. during drain).
    pub const NONE: Self = Self {
        readable: false,
        writable: false,
    };

    /// Whether this interest includes readability.
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Whether this interest includes writability.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The union of two interest sets.
    pub fn union(self, other: Self) -> Self {
        Self {
            readable: self.readable || other.readable,
            writable: self.writable || other.writable,
        }
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with ([`WAKER_TOKEN`] for wakeups).
    pub token: u64,
    /// The fd can be read without blocking (also set at EOF).
    pub readable: bool,
    /// The fd can be written without blocking.
    pub writable: bool,
    /// The peer hung up or the fd errored; the fd should be torn down
    /// (readable/writable may be set too — drain first if needed).
    pub hangup: bool,
}

pub use imp::{reuseport_listener, Poller, Waker};

// ---------------------------------------------------------------------------
// Linux backend: epoll + eventfd
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::Arc;
    use std::time::Duration;

    use super::{Event, Interest, Mode, WAKER_TOKEN};

    /// Raw FFI surface. These symbols live in the libc that `std` links
    /// into every Rust binary on Linux; the signatures mirror the man
    /// pages exactly. Constants are from `<sys/epoll.h>` / `<sys/eventfd.h>`
    /// / `<sys/socket.h>` for x86_64/aarch64 (identical on both).
    mod sys {
        use std::os::fd::RawFd;

        // `struct epoll_event` is packed on x86_64 only (the kernel ABI
        // quirk inherited from the 32-bit layout); other architectures use
        // natural alignment.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        /// `struct sockaddr_in` — all multi-byte fields in network order.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct SockAddrIn {
            pub family: u16,
            pub port_be: u16,
            pub addr_be: u32,
            pub zero: [u8; 8],
        }

        /// `struct sockaddr_in6`.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct SockAddrIn6 {
            pub family: u16,
            pub port_be: u16,
            pub flowinfo: u32,
            pub addr: [u8; 16],
            pub scope_id: u32,
        }

        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        /// Edge-triggered delivery (`EPOLLET`, bit 31).
        pub const EPOLLET: u32 = 1 << 31;

        /// `EPOLL_CLOEXEC` == `O_CLOEXEC`.
        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        /// `EFD_CLOEXEC` == `O_CLOEXEC`, `EFD_NONBLOCK` == `O_NONBLOCK`.
        pub const EFD_CLOEXEC: i32 = 0o2000000;
        pub const EFD_NONBLOCK: i32 = 0o4000;

        pub const AF_INET: u16 = 2;
        pub const AF_INET6: u16 = 10;
        pub const SOCK_STREAM: i32 = 1;
        /// `SOCK_CLOEXEC` == `O_CLOEXEC`.
        pub const SOCK_CLOEXEC: i32 = 0o2000000;
        pub const SOL_SOCKET: i32 = 1;
        pub const SO_REUSEADDR: i32 = 2;
        pub const SO_REUSEPORT: i32 = 15;

        extern "C" {
            pub fn epoll_create1(flags: i32) -> RawFd;
            pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: RawFd,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout_ms: i32,
            ) -> i32;
            pub fn eventfd(initval: u32, flags: i32) -> RawFd;
            pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
            pub fn socket(domain: i32, ty: i32, protocol: i32) -> RawFd;
            pub fn setsockopt(
                fd: RawFd,
                level: i32,
                optname: i32,
                optval: *const u8,
                optlen: u32,
            ) -> i32;
            pub fn bind(fd: RawFd, addr: *const u8, addrlen: u32) -> i32;
            pub fn listen(fd: RawFd, backlog: i32) -> i32;
        }
    }

    fn epoll_mask(interest: Interest, edge: bool) -> u32 {
        // EPOLLRDHUP distinguishes "peer half-closed" from plain EPOLLIN
        // and makes abandoned connections visible even when parked with
        // `Interest::NONE` (EPOLLERR/EPOLLHUP are always reported).
        let mut mask = sys::EPOLLRDHUP;
        if interest.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        if edge {
            mask |= sys::EPOLLET;
        }
        mask
    }

    /// An epoll instance plus its eventfd wake channel.
    #[derive(Debug)]
    pub struct Poller {
        epfd: OwnedFd,
        wake: Arc<OwnedFd>,
        edge: bool,
    }

    /// Wakes a [`Poller::wait`] from another thread. Cheap to clone; all
    /// clones poke the same eventfd.
    #[derive(Debug, Clone)]
    pub struct Waker {
        wake: Arc<OwnedFd>,
    }

    impl Waker {
        /// Interrupts the poller's current (or next) wait. Coalesces: many
        /// wakes before the poller runs produce one event.
        pub fn wake(&self) {
            let value: u64 = 1;
            // SAFETY: `wake` is a valid eventfd owned by the Arc for the
            // duration of the call; the buffer is 8 initialized bytes as
            // eventfd(2) requires. A full counter (EAGAIN) already means
            // "wake pending", so the result can be ignored.
            let _ = unsafe {
                sys::write(
                    self.wake.as_raw_fd(),
                    value.to_ne_bytes().as_ptr(),
                    std::mem::size_of::<u64>(),
                )
            };
        }
    }

    impl Poller {
        /// Creates a level-triggered poller with its wake channel already
        /// registered.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1`/`eventfd`/`epoll_ctl` failures.
        pub fn new() -> io::Result<Self> {
            Self::with_mode(Mode::Level)
        }

        /// Creates a poller in the given [`Mode`]. Under [`Mode::Edge`]
        /// every registration — the internal waker included — carries
        /// `EPOLLET`, so callers must drain each reported fd to
        /// `WouldBlock` before the next wait.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1`/`eventfd`/`epoll_ctl` failures.
        pub fn with_mode(mode: Mode) -> io::Result<Self> {
            let edge = mode == Mode::Edge;
            // SAFETY: plain syscall, no pointers. A negative return is an
            // error and never converted to an OwnedFd.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: epfd is a freshly returned, unowned, valid fd.
            let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
            // SAFETY: plain syscall, no pointers.
            let wake = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if wake < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: same as epfd above.
            let wake = unsafe { OwnedFd::from_raw_fd(wake) };
            let poller = Self {
                epfd,
                wake: Arc::new(wake),
                edge,
            };
            let mut wake_mask = sys::EPOLLIN;
            if edge {
                wake_mask |= sys::EPOLLET;
            }
            poller.ctl(
                sys::EPOLL_CTL_ADD,
                poller.wake.as_raw_fd(),
                WAKER_TOKEN,
                wake_mask,
            )?;
            Ok(poller)
        }

        /// Whether this poller delivers edge-triggered events.
        pub fn is_edge(&self) -> bool {
            self.edge
        }

        /// A handle other threads can use to interrupt [`Poller::wait`].
        pub fn waker(&self) -> Waker {
            Waker {
                wake: Arc::clone(&self.wake),
            }
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let mut event = sys::EpollEvent {
                events,
                data: token,
            };
            // SAFETY: epfd and fd are valid for the call; `event` is a
            // live, initialized struct whose pointer epoll_ctl only reads.
            let rc = unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Starts watching `fd` with `interest`, reporting `token`.
        ///
        /// # Errors
        ///
        /// Rejects [`WAKER_TOKEN`] as `InvalidInput`; propagates
        /// `epoll_ctl` failures (e.g. an already-registered fd).
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if token == WAKER_TOKEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token u64::MAX is reserved for the waker",
                ));
            }
            self.ctl(
                sys::EPOLL_CTL_ADD,
                fd,
                token,
                epoll_mask(interest, self.edge),
            )
        }

        /// Changes the interest set (and token) of a registered fd.
        ///
        /// # Errors
        ///
        /// Same conditions as [`Poller::register`].
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if token == WAKER_TOKEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token u64::MAX is reserved for the waker",
                ));
            }
            self.ctl(
                sys::EPOLL_CTL_MOD,
                fd,
                token,
                epoll_mask(interest, self.edge),
            )
        }

        /// Stops watching a registered fd.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failures.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one fd is ready, a [`Waker`] fires, or
        /// `timeout` elapses (`None` = wait forever). Ready events are
        /// appended to `events` (cleared first). Wakeups appear as events
        /// with [`WAKER_TOKEN`]; their eventfd is drained here.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failures. `EINTR` is retried
        /// internally.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round up so a 0 < t < 1 ms timeout still sleeps.
                Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            const CAPACITY: usize = 256;
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                // SAFETY: epfd is valid; `buf` is a live array of CAPACITY
                // initialized events that the kernel writes into.
                let rc = unsafe {
                    sys::epoll_wait(
                        self.epfd.as_raw_fd(),
                        buf.as_mut_ptr(),
                        CAPACITY as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let mask = raw.events;
                let token = raw.data;
                if token == WAKER_TOKEN {
                    self.drain_wake();
                    events.push(Event {
                        token,
                        readable: false,
                        writable: false,
                        hangup: false,
                    });
                    continue;
                }
                events.push(Event {
                    token,
                    readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: mask & sys::EPOLLOUT != 0,
                    hangup: mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Resets the eventfd counter so readiness clears. Loops until the
        /// read reports `WouldBlock`: a single read would suffice for one
        /// drain (eventfd reads return the whole counter), but a wake
        /// posted between that read and the next `wait()` must land the
        /// fd back at a zero counter before we sleep — under
        /// edge-triggered delivery a partially drained eventfd never
        /// fires again and the wakeup is lost. Draining to `WouldBlock`
        /// guarantees every post-drain wake is a fresh 0→1 transition,
        /// which re-arms the edge.
        fn drain_wake(&self) {
            let mut buf = [0u8; 8];
            loop {
                // SAFETY: `wake` is a valid nonblocking eventfd; the
                // buffer is 8 writable bytes. A negative return (EAGAIN:
                // counter already zero) terminates the drain.
                let rc = unsafe { sys::read(self.wake.as_raw_fd(), buf.as_mut_ptr(), buf.len()) };
                if rc < 0 {
                    break;
                }
            }
        }
    }

    /// Binds a TCP listener to `addr` with `SO_REUSEPORT` (and
    /// `SO_REUSEADDR`) set before the bind, so several listeners can share
    /// one address and the kernel shards incoming connections across them
    /// by flow hash. The listener is returned blocking, like
    /// `TcpListener::bind`; callers set nonblocking themselves.
    ///
    /// # Errors
    ///
    /// Propagates `socket`/`setsockopt`/`bind`/`listen` failures.
    pub fn reuseport_listener(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
        let domain = match addr {
            std::net::SocketAddr::V4(_) => sys::AF_INET,
            std::net::SocketAddr::V6(_) => sys::AF_INET6,
        };
        // SAFETY: plain syscall, no pointers. A negative return is an
        // error and never converted to an OwnedFd.
        let fd = unsafe { sys::socket(i32::from(domain), sys::SOCK_STREAM | sys::SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd is a freshly returned, unowned, valid socket; from
        // here the OwnedFd closes it on every error path.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        for opt in [sys::SO_REUSEADDR, sys::SO_REUSEPORT] {
            let one: i32 = 1;
            // SAFETY: fd is valid; optval points at 4 live bytes and
            // optlen matches.
            let rc = unsafe {
                sys::setsockopt(
                    fd.as_raw_fd(),
                    sys::SOL_SOCKET,
                    opt,
                    one.to_ne_bytes().as_ptr(),
                    4,
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        let rc = match addr {
            std::net::SocketAddr::V4(v4) => {
                let sa = sys::SockAddrIn {
                    family: sys::AF_INET,
                    port_be: v4.port().to_be(),
                    // `octets()` is already network byte order in memory.
                    addr_be: u32::from_ne_bytes(v4.ip().octets()),
                    zero: [0; 8],
                };
                // SAFETY: fd is valid; the pointer covers a live
                // sockaddr_in of exactly the passed length.
                unsafe {
                    sys::bind(
                        fd.as_raw_fd(),
                        (&sa as *const sys::SockAddrIn).cast(),
                        std::mem::size_of::<sys::SockAddrIn>() as u32,
                    )
                }
            }
            std::net::SocketAddr::V6(v6) => {
                let sa = sys::SockAddrIn6 {
                    family: sys::AF_INET6,
                    port_be: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                // SAFETY: as above, for sockaddr_in6.
                unsafe {
                    sys::bind(
                        fd.as_raw_fd(),
                        (&sa as *const sys::SockAddrIn6).cast(),
                        std::mem::size_of::<sys::SockAddrIn6>() as u32,
                    )
                }
            }
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: plain syscall on a valid fd.
        if unsafe { sys::listen(fd.as_raw_fd(), 1024) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(std::net::TcpListener::from(fd))
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2) + self-pipe
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use std::collections::BTreeMap;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, RawFd};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use super::{Event, Interest, Mode, WAKER_TOKEN};

    mod sys {
        use std::os::fd::RawFd;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: RawFd,
            pub events: i16,
            pub revents: i16,
        }

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;

        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        }
    }

    /// POSIX `poll(2)` emulation of the epoll-backed API. The interest
    /// table lives behind a mutex so registration from other threads
    /// (workers requesting write interest) stays safe; `poll` itself
    /// rebuilds the fd array each wait — O(n), acceptable for a fallback.
    #[derive(Debug)]
    pub struct Poller {
        interests: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
        wake_read: std::net::TcpStream,
        wake_write: Arc<Mutex<std::net::TcpStream>>,
    }

    /// Self-pipe waker (a loopback socketpair stand-in: `std` exposes no
    /// portable pipe, and a localhost TCP pair behaves identically here).
    #[derive(Debug, Clone)]
    pub struct Waker {
        wake_write: Arc<Mutex<std::net::TcpStream>>,
    }

    impl Waker {
        /// Interrupts the poller's current (or next) wait.
        pub fn wake(&self) {
            if let Ok(mut w) = self.wake_write.lock() {
                let _ = w.write(&[1u8]);
            }
        }
    }

    impl Poller {
        /// Creates a poller with its wake channel already registered.
        ///
        /// # Errors
        ///
        /// Propagates socket-pair setup failures.
        pub fn new() -> io::Result<Self> {
            Self::with_mode(Mode::Level)
        }

        /// Creates a poller in the given [`Mode`]. `poll(2)` cannot
        /// deliver edge-triggered events, so [`Mode::Edge`] is accepted
        /// but served level-triggered; drain-to-`WouldBlock` consumers
        /// stay correct, they just wake more often.
        ///
        /// # Errors
        ///
        /// Propagates socket-pair setup failures.
        pub fn with_mode(_mode: Mode) -> io::Result<Self> {
            let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
            let write_half = std::net::TcpStream::connect(listener.local_addr()?)?;
            let (read_half, _) = listener.accept()?;
            read_half.set_nonblocking(true)?;
            write_half.set_nonblocking(true)?;
            write_half.set_nodelay(true)?;
            Ok(Self {
                interests: Mutex::new(BTreeMap::new()),
                wake_read: read_half,
                wake_write: Arc::new(Mutex::new(write_half)),
            })
        }

        /// A handle other threads can use to interrupt [`Poller::wait`].
        pub fn waker(&self) -> Waker {
            Waker {
                wake_write: Arc::clone(&self.wake_write),
            }
        }

        /// Always `false`: this backend only serves level-triggered events.
        pub fn is_edge(&self) -> bool {
            false
        }

        /// Starts watching `fd` with `interest`, reporting `token`.
        ///
        /// # Errors
        ///
        /// Rejects [`WAKER_TOKEN`] and double registration.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if token == WAKER_TOKEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token u64::MAX is reserved for the waker",
                ));
            }
            let mut interests = self.interests.lock().expect("netpoll interests poisoned");
            if interests.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        /// Changes the interest set (and token) of a registered fd.
        ///
        /// # Errors
        ///
        /// Rejects [`WAKER_TOKEN`] and unknown fds.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if token == WAKER_TOKEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "token u64::MAX is reserved for the waker",
                ));
            }
            let mut interests = self.interests.lock().expect("netpoll interests poisoned");
            match interests.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stops watching a registered fd.
        ///
        /// # Errors
        ///
        /// Rejects unknown fds.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut interests = self.interests.lock().expect("netpoll interests poisoned");
            match interests.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Blocks until readiness, a wake, or `timeout` (see the Linux
        /// backend for the contract).
        ///
        /// # Errors
        ///
        /// Propagates `poll` failures. `EINTR` is retried internally.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<(u64, sys::PollFd)> = vec![(
                WAKER_TOKEN,
                sys::PollFd {
                    fd: self.wake_read.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                },
            )];
            {
                let interests = self.interests.lock().expect("netpoll interests poisoned");
                for (&fd, &(token, interest)) in interests.iter() {
                    let mut mask = 0i16;
                    if interest.is_readable() {
                        mask |= sys::POLLIN;
                    }
                    if interest.is_writable() {
                        mask |= sys::POLLOUT;
                    }
                    fds.push((
                        token,
                        sys::PollFd {
                            fd,
                            events: mask,
                            revents: 0,
                        },
                    ));
                }
            }
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            let mut raw: Vec<sys::PollFd> = fds.iter().map(|(_, p)| *p).collect();
            loop {
                // SAFETY: `raw` is a live, initialized array of pollfd
                // structs; nfds matches its length.
                let rc = unsafe { sys::poll(raw.as_mut_ptr(), raw.len() as u64, timeout_ms) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for ((token, _), polled) in fds.iter().zip(&raw) {
                if polled.revents == 0 {
                    continue;
                }
                if *token == WAKER_TOKEN {
                    let mut sink = [0u8; 64];
                    let mut read_half = &self.wake_read;
                    while matches!(read_half.read(&mut sink), Ok(n) if n > 0) {}
                    events.push(Event {
                        token: *token,
                        readable: false,
                        writable: false,
                        hangup: false,
                    });
                    continue;
                }
                events.push(Event {
                    token: *token,
                    readable: polled.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                    writable: polled.revents & sys::POLLOUT != 0,
                    hangup: polled.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// `SO_REUSEPORT` sharding is Linux-specific here; this backend
    /// reports `Unsupported` so callers fall back to a single listener.
    pub fn reuseport_listener(_addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT accept sharding requires the Linux epoll backend",
        ))
    }
}

#[cfg(not(unix))]
compile_error!("netpoll supports Unix targets only (epoll on Linux, poll(2) elsewhere)");

/// Convenience: classify an I/O result from a nonblocking operation.
/// `WouldBlock` is the readiness loop's steady state, not an error, and
/// `Interrupted` calls should simply be retried.
pub fn is_would_block(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock
}

/// Registers interest flags for a raw fd owner. Blanket helper so callers
/// can pass `&TcpStream`/`&TcpListener` without importing `AsRawFd`.
pub fn raw_fd<T: std::os::fd::AsRawFd>(io: &T) -> RawFd {
    io.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    use super::*;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_fires_on_data_and_clears_when_drained() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(raw_fd(&a), 42, Interest::READABLE).unwrap();

        // Nothing to read yet: a zero-ish timeout returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        b.write_all(b"hello").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Level-triggered: still ready until drained.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut buf = [0u8; 16];
        let n = (&a).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn write_interest_and_modify() {
        let (a, _b) = pair();
        let poller = Poller::new().unwrap();
        // A fresh socket is immediately writable.
        poller.register(raw_fd(&a), 7, Interest::WRITABLE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        // Parked: no events despite writability.
        poller.modify(raw_fd(&a), 7, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.token == 7 && e.writable),
            "{events:?}"
        );
        poller.deregister(raw_fd(&a)).unwrap();
    }

    #[test]
    fn waker_interrupts_a_blocking_wait_across_threads() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let started = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        handle.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "wait did not return promptly"
        );
        assert!(events.iter().any(|e| e.token == WAKER_TOKEN));
        // Wakes coalesce and drain: the next wait times out quietly.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn hangup_is_reported() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.register(raw_fd(&a), 9, Interest::READABLE).unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // A clean close shows up as readable (EOF) and/or hangup.
        assert!(
            events
                .iter()
                .any(|e| e.token == 9 && (e.readable || e.hangup)),
            "{events:?}"
        );
    }

    #[test]
    fn waker_token_is_reserved() {
        let (a, _b) = pair();
        let poller = Poller::new().unwrap();
        assert!(poller
            .register(raw_fd(&a), WAKER_TOKEN, Interest::READABLE)
            .is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn edge_triggered_reports_once_until_new_data() {
        let (a, mut b) = pair();
        let poller = Poller::with_mode(Mode::Edge).unwrap();
        assert!(poller.is_edge());
        poller.register(raw_fd(&a), 42, Interest::READABLE).unwrap();

        b.write_all(b"hello").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Edge-triggered: the undrained socket is NOT re-reported.
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        // New data is a fresh edge even though the old bytes still sit
        // in the socket buffer.
        b.write_all(b" world").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 32];
        let n = (&a).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
    }

    /// The ET-safety regression test for the waker: two threads hammer
    /// wake() against a poller in edge mode while the poll thread drains.
    /// Every round ends with a wake that MUST be observed — under the old
    /// single-read drain, a wake racing the drain left the eventfd
    /// counter nonzero, and the next wake never produced a fresh edge.
    #[test]
    fn waker_hammer_from_two_threads_never_loses_the_final_wake() {
        for mode in [Mode::Level, Mode::Edge] {
            let poller = Poller::with_mode(mode).unwrap();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut storms = Vec::new();
            for _ in 0..2 {
                let waker = poller.waker();
                let stop = std::sync::Arc::clone(&stop);
                storms.push(std::thread::spawn(move || {
                    let mut n = 0u32;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        waker.wake();
                        n += 1;
                        if n.is_multiple_of(64) {
                            std::thread::yield_now();
                        }
                    }
                }));
            }
            // Drain concurrently with the storm for a while.
            let mut events = Vec::new();
            let deadline = Instant::now() + Duration::from_millis(200);
            while Instant::now() < deadline {
                poller
                    .wait(&mut events, Some(Duration::from_millis(10)))
                    .unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            for h in storms {
                h.join().unwrap();
            }
            // Settle: consume whatever the storm left behind.
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(20)))
                    .unwrap();
                if events.is_empty() {
                    break;
                }
            }
            // The decisive wake after the storm must still come through.
            let waker = poller.waker();
            let h = std::thread::spawn(move || waker.wake());
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            h.join().unwrap();
            assert!(
                events.iter().any(|e| e.token == WAKER_TOKEN),
                "post-storm wake was lost in {mode:?} mode"
            );
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_share_one_address() {
        use std::net::SocketAddr;
        let first = reuseport_listener("127.0.0.1:0".parse::<SocketAddr>().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        // A second listener binds the very same port thanks to REUSEPORT.
        let second = reuseport_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();

        // Each connection lands on exactly one of the listeners.
        let mut accepted = 0;
        let mut clients = Vec::new();
        for _ in 0..8 {
            clients.push(TcpStream::connect(addr).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while accepted < 8 && Instant::now() < deadline {
            for listener in [&first, &second] {
                loop {
                    match listener.accept() {
                        Ok(_) => accepted += 1,
                        Err(e) if is_would_block(&e) => break,
                        Err(e) => panic!("accept failed: {e}"),
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(accepted, 8, "kernel did not deliver all connections");
    }
}
