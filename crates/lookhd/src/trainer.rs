//! Counter-based training (§III-D): stream samples as counter increments,
//! materialize class hypervectors once at the end.

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use hdc::{HdcError, Result};
use lookhd_engine::{Engine, EngineStats};

use crate::counters::ChunkCounters;
use crate::encoder::LookupEncoder;

/// Trains a [`ClassModel`] with LookHD's counter factorization.
///
/// The result is **bit-exact** with bundling every encoded sample
/// (`C_i = Σ_{j∈class_i} H_j`), but per-sample work is just quantization and
/// counter increments — no `D`-dimensional arithmetic (the source of the
/// paper's training speedup).
#[derive(Debug, Clone)]
pub struct CounterTrainer {
    counters: ChunkCounters,
}

impl CounterTrainer {
    /// Creates a trainer for `n_classes` classes over the encoder's layout.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `n_classes == 0`.
    pub fn new(encoder: &LookupEncoder, n_classes: usize) -> Result<Self> {
        Ok(Self {
            counters: ChunkCounters::new(*encoder.layout(), n_classes)?,
        })
    }

    /// Streams one training sample: quantize → chunk addresses → counter
    /// increments. No hypervector arithmetic happens here.
    ///
    /// # Errors
    ///
    /// Propagates encoding and counter errors.
    pub fn observe(
        &mut self,
        encoder: &LookupEncoder,
        features: &[f64],
        label: usize,
    ) -> Result<()> {
        let addrs = encoder.addresses(features)?;
        obs::counter("counter_train.samples", 1);
        self.counters.observe(label, &addrs)
    }

    /// Folds another trainer's counters into this one. Counter addition
    /// is associative and commutative, so sharded observation followed by
    /// a merge is bit-identical to serial observation in any order.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on layout or class-count
    /// disagreement.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        self.counters.merge(&other.counters)
    }

    /// Materializes the class hypervectors (Fig. 6 steps E–F):
    /// per chunk, the weighted sum `Σ_addr count·LUT[addr]` is formed and
    /// bound with the chunk's position key, then accumulated over chunks.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if no samples were observed.
    pub fn finalize(&self, encoder: &LookupEncoder) -> Result<ClassModel> {
        Ok(self.finalize_with(&Engine::serial(), encoder)?.0)
    }

    /// [`CounterTrainer::finalize`] with class materialization sharded
    /// across the engine's threads. Classes are independent, so the result
    /// is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if no samples were observed.
    pub fn finalize_with(
        &self,
        engine: &Engine,
        encoder: &LookupEncoder,
    ) -> Result<(ClassModel, EngineStats)> {
        let _span = obs::span("materialize");
        let total: u64 = (0..self.counters.n_classes())
            .map(|c| self.counters.samples_seen(c))
            .sum();
        if total == 0 {
            return Err(HdcError::invalid_dataset(
                "cannot finalize with zero observed samples",
            ));
        }
        let dim = encoder.lut().levels().dim();
        let (classes, stats) = engine.map_reduce(
            self.counters.n_classes(),
            |class_range| {
                class_range
                    .map(|class| self.materialize_class(encoder, class, dim))
                    .collect::<Vec<DenseHv>>()
            },
            |shards| shards.into_iter().flatten().collect::<Vec<DenseHv>>(),
        );
        Ok((ClassModel::from_classes(classes)?, stats))
    }

    /// Materializes one class hypervector from its counters (Fig. 6 steps
    /// E–F).
    fn materialize_class(&self, encoder: &LookupEncoder, class: usize, dim: usize) -> DenseHv {
        let mut acc = DenseHv::zeros(dim);
        for chunk in 0..self.counters.layout().n_chunks() {
            let key = encoder.positions().key(chunk);
            // Collect first: accumulate_row borrows the LUT immutably and
            // the iterator borrows the counters; both are disjoint from
            // `acc`, so this is purely to keep lifetimes simple.
            let entries: Vec<(u64, u32)> = self.counters.nonzero(class, chunk).collect();
            for (addr, count) in entries {
                encoder
                    .lut()
                    .accumulate_row(chunk, addr, key, count as i32, &mut acc);
            }
        }
        acc
    }

    /// One-shot convenience: observe every `(features, label)` pair and
    /// finalize.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for empty or mismatched inputs,
    /// plus any per-sample error.
    pub fn fit(
        encoder: &LookupEncoder,
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
    ) -> Result<ClassModel> {
        let _span = obs::span("counter_train");
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        if features.len() != labels.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} samples but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let mut trainer = Self::new(encoder, n_classes)?;
        for (f, &y) in features.iter().zip(labels) {
            trainer.observe(encoder, f, y)?;
        }
        trainer.finalize(encoder)
    }

    /// Sharded variant of [`CounterTrainer::fit`]: each engine worker
    /// accumulates a **private** counter set over its shard of samples;
    /// the per-shard counters are element-wise added in shard order and
    /// materialized once. Counter addition is associative and commutative,
    /// so the trained model is **bit-identical** to the serial
    /// [`CounterTrainer::fit`] for every thread count.
    ///
    /// Returned stats cover the counting phase; materialization is also
    /// sharded (over classes) via [`CounterTrainer::finalize_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CounterTrainer::fit`].
    pub fn fit_with(
        engine: &Engine,
        encoder: &LookupEncoder,
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
    ) -> Result<(ClassModel, EngineStats)> {
        let _span = obs::span("counter_train");
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        if features.len() != labels.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} samples but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let (trainer, count_stats) = engine.map_reduce(
            features.len(),
            |range| {
                let mut shard = Self::new(encoder, n_classes)?;
                for i in range {
                    shard.observe(encoder, &features[i], labels[i])?;
                }
                Ok::<Self, HdcError>(shard)
            },
            |shards| {
                let mut iter = shards.into_iter();
                let mut merged = iter.next().expect("non-empty input implies >= 1 shard")?;
                for shard in iter {
                    merged.counters.merge(&shard?.counters)?;
                }
                Ok::<Self, HdcError>(merged)
            },
        );
        let (model, _) = trainer?.finalize_with(engine, encoder)?;
        Ok((model, count_stats))
    }

    /// Read access to the counter state (for the hardware cost models).
    pub fn counters(&self) -> &ChunkCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::encoding::Encode;
    use hdc::levels::{LevelMemory, LevelScheme};
    use hdc::quantize::{Quantization, Quantizer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::chunking::ChunkLayout;
    use crate::lut::TableMode;

    fn encoder(n: usize, r: usize, q: usize, dim: usize, seed: u64) -> LookupEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap()
    }

    fn random_dataset(
        n: usize,
        samples: usize,
        k: usize,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = (0..samples)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys = (0..samples).map(|i| i % k).collect();
        (xs, ys)
    }

    /// The paper's central training claim: the counter factorization equals
    /// explicit encode-and-bundle, exactly.
    #[test]
    fn counter_training_equals_bundled_encoding() {
        let enc = encoder(13, 5, 4, 256, 1);
        let (xs, ys) = random_dataset(13, 40, 3, 2);
        let counter_model = CounterTrainer::fit(&enc, &xs, &ys, 3).unwrap();
        // Reference: encode every sample and bundle.
        let encoded = enc.encode_batch(&xs).unwrap();
        let reference = hdc::train::initial_fit(&encoded, &ys, 3).unwrap();
        for c in 0..3 {
            assert_eq!(counter_model.class(c), reference.class(c), "class {c}");
        }
    }

    #[test]
    fn equivalence_holds_for_on_the_fly_tables() {
        let mut rng = StdRng::seed_from_u64(3);
        let levels = LevelMemory::generate(128, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let q = Quantizer::fit(Quantization::Linear, &[0.0, 0.5, 1.0], 4).unwrap();
        let layout = ChunkLayout::new(11, 5, 4).unwrap();
        let enc = LookupEncoder::new(layout, &levels, q, TableMode::OnTheFly, 7).unwrap();
        let (xs, ys) = random_dataset(11, 20, 2, 4);
        let counter_model = CounterTrainer::fit(&enc, &xs, &ys, 2).unwrap();
        let reference = hdc::train::initial_fit(&enc.encode_batch(&xs).unwrap(), &ys, 2).unwrap();
        assert_eq!(counter_model.class(0), reference.class(0));
        assert_eq!(counter_model.class(1), reference.class(1));
    }

    #[test]
    fn incremental_observe_matches_one_shot_fit() {
        let enc = encoder(10, 5, 2, 64, 5);
        let (xs, ys) = random_dataset(10, 15, 2, 6);
        let mut t = CounterTrainer::new(&enc, 2).unwrap();
        for (f, &y) in xs.iter().zip(&ys) {
            t.observe(&enc, f, y).unwrap();
        }
        let a = t.finalize(&enc).unwrap();
        let b = CounterTrainer::fit(&enc, &xs, &ys, 2).unwrap();
        assert_eq!(a.class(0), b.class(0));
        assert_eq!(a.class(1), b.class(1));
    }

    #[test]
    fn sharded_fit_is_bit_identical_to_serial() {
        use lookhd_engine::EngineConfig;
        let enc = encoder(13, 5, 4, 256, 21);
        let (xs, ys) = random_dataset(13, 50, 3, 22);
        let serial = CounterTrainer::fit(&enc, &xs, &ys, 3).unwrap();
        // 50 % 7 != 0 exercises the remainder shard.
        for threads in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig::new().with_threads(threads).with_shard_size(7));
            let (model, stats) = CounterTrainer::fit_with(&engine, &enc, &xs, &ys, 3).unwrap();
            for c in 0..3 {
                assert_eq!(
                    model.class(c),
                    serial.class(c),
                    "threads={threads} class={c}"
                );
            }
            assert_eq!(stats.items, 50);
            assert_eq!(stats.shards.len(), 8);
        }
    }

    #[test]
    fn finalize_without_observations_errors() {
        let enc = encoder(10, 5, 2, 64, 7);
        let t = CounterTrainer::new(&enc, 2).unwrap();
        assert!(t.finalize(&enc).is_err());
    }

    #[test]
    fn fit_validates_inputs() {
        let enc = encoder(10, 5, 2, 64, 8);
        assert!(CounterTrainer::fit(&enc, &[], &[], 2).is_err());
        let (xs, _) = random_dataset(10, 3, 2, 9);
        assert!(CounterTrainer::fit(&enc, &xs, &[0], 2).is_err());
    }

    #[test]
    fn counters_expose_sample_counts() {
        let enc = encoder(10, 5, 2, 64, 10);
        let (xs, ys) = random_dataset(10, 9, 3, 11);
        let mut t = CounterTrainer::new(&enc, 3).unwrap();
        for (f, &y) in xs.iter().zip(&ys) {
            t.observe(&enc, f, y).unwrap();
        }
        assert_eq!(t.counters().samples_seen(0), 3);
        assert_eq!(t.counters().samples_seen(1), 3);
        assert_eq!(t.counters().samples_seen(2), 3);
    }
}
