//! Compression-quality analysis over whole datasets.
//!
//! The §IV-C / §VI-G discussion turns on two distributions: the *margin*
//! between the best and runner-up class scores (how much headroom each
//! query has) and the Eq. 5 *noise/signal* ratio the compression injects.
//! This module computes both over a labelled evaluation set, which is how
//! the Fig. 15 crossover ("no loss below a group-size threshold") can be
//! predicted without running the sweep.

use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use hdc::{HdcError, Result};

use crate::compress::CompressedModel;

/// Summary statistics of a sample of real values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Computes statistics over a non-empty sample.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for an empty sample.
    pub fn of(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(HdcError::invalid_dataset("cannot summarize zero values"));
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Dataset-level compression diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionAnalysis {
    /// Normalized margins `(s₁ − s₂)/|s₁|` of the *uncompressed* model:
    /// how far the winner leads the runner-up per query.
    pub margins: Stats,
    /// Own-class noise/signal ratios of the compressed scores (Eq. 5).
    pub noise_to_signal: Stats,
    /// Fraction of queries whose uncompressed winner survives compression.
    pub agreement: f64,
    /// Fraction of queries with margins smaller than the mean noise ratio —
    /// the at-risk population the compression may flip.
    pub at_risk: f64,
}

/// Analyzes how compression interacts with a model's score margins over a
/// set of encoded queries.
///
/// `model` must be the model `compressed` was built from.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for an empty query set and
/// propagates model errors.
pub fn analyze_compression(
    model: &ClassModel,
    compressed: &CompressedModel,
    queries: &[DenseHv],
) -> Result<CompressionAnalysis> {
    if queries.is_empty() {
        return Err(HdcError::invalid_dataset("cannot analyze zero queries"));
    }
    let mut margins = Vec::with_capacity(queries.len());
    let mut ratios = Vec::with_capacity(queries.len());
    let mut agree = 0usize;
    for query in queries {
        let scores = model.scores(query)?;
        let (top, second) = top_two(&scores);
        let margin = if scores[top].abs() > 0.0 {
            (scores[top] - scores[second]) / scores[top].abs()
        } else {
            0.0
        };
        margins.push(margin);
        let sn = compressed.signal_noise(model, query)?;
        ratios.push(sn[top].noise_to_signal().min(10.0));
        if compressed.predict(query)? == top {
            agree += 1;
        }
    }
    let noise_stats = Stats::of(&ratios)?;
    let at_risk =
        margins.iter().filter(|&&m| m < noise_stats.mean).count() as f64 / margins.len() as f64;
    Ok(CompressionAnalysis {
        margins: Stats::of(&margins)?,
        noise_to_signal: noise_stats,
        agreement: agree as f64 / queries.len() as f64,
        at_risk,
    })
}

fn top_two(scores: &[f64]) -> (usize, usize) {
    let mut top = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[top] {
            top = i;
        }
    }
    let mut second = usize::MAX;
    for (i, &s) in scores.iter().enumerate() {
        if i == top {
            continue;
        }
        if second == usize::MAX || s > scores[second] {
            second = i;
        }
    }
    if second == usize::MAX {
        second = top;
    }
    (top, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressionConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_model(k: usize, d: usize, seed: u64) -> ClassModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = (0..k)
            .map(|_| DenseHv::from_vec((0..d).map(|_| rng.gen_range(-30..=30)).collect()))
            .collect();
        ClassModel::from_classes(classes).unwrap()
    }

    #[test]
    fn stats_are_correct_on_a_known_sample() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(Stats::of(&[]).is_err());
    }

    #[test]
    fn orthogonal_classes_have_high_agreement_and_low_risk() {
        let model = random_model(4, 4000, 1);
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        let queries: Vec<DenseHv> = (0..4).map(|c| model.class(c).clone()).collect();
        let analysis = analyze_compression(&model, &compressed, &queries).unwrap();
        assert_eq!(analysis.agreement, 1.0, "{analysis:?}");
        assert!(analysis.margins.mean > 0.5, "{analysis:?}");
        assert!(analysis.noise_to_signal.mean < 0.2, "{analysis:?}");
        assert!(analysis.at_risk < 0.5, "{analysis:?}");
    }

    #[test]
    fn risk_grows_with_group_size() {
        let model = random_model(24, 1000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let queries: Vec<DenseHv> = (0..24)
            .map(|c| {
                let noisy: Vec<i32> = model
                    .class(c)
                    .as_slice()
                    .iter()
                    .map(|&v| v + rng.gen_range(-10..=10))
                    .collect();
                DenseHv::from_vec(noisy)
            })
            .collect();
        let small = CompressedModel::compress(
            &model,
            &CompressionConfig::new()
                .with_decorrelate(false)
                .with_max_classes_per_vector(4),
        )
        .unwrap();
        let large = CompressedModel::compress(
            &model,
            &CompressionConfig::new()
                .with_decorrelate(false)
                .with_max_classes_per_vector(24),
        )
        .unwrap();
        let a_small = analyze_compression(&model, &small, &queries).unwrap();
        let a_large = analyze_compression(&model, &large, &queries).unwrap();
        assert!(
            a_large.noise_to_signal.mean > a_small.noise_to_signal.mean,
            "noise must grow with group size: {a_small:?} vs {a_large:?}"
        );
    }

    #[test]
    fn validates_inputs() {
        let model = random_model(2, 64, 4);
        let compressed = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert!(analyze_compression(&model, &compressed, &[]).is_err());
    }

    #[test]
    fn top_two_handles_single_class() {
        assert_eq!(top_two(&[5.0]), (0, 0));
        assert_eq!(top_two(&[1.0, 3.0, 2.0]), (1, 2));
    }
}
