//! The LookHD lookup-based encoder (§III, Fig. 5/6, Eq. 3).
//!
//! Encoding a feature vector proceeds in three steps:
//!
//! 1. quantize each feature to a `⌈log2 q⌉`-bit codebook;
//! 2. concatenate the codebooks of each chunk into a direct address and
//!    fetch the pre-stored chunk hypervector `H_i`;
//! 3. aggregate the chunks with random bipolar *position* hypervectors:
//!    `H = P_1 ⊙ H_1 + P_2 ⊙ H_2 + … + P_m ⊙ H_m`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hdc::encoding::Encode;
use hdc::hv::{BipolarHv, DenseHv};
use hdc::levels::LevelMemory;
use hdc::quantize::Quantizer;
use hdc::{HdcError, Result};

use crate::chunking::ChunkLayout;
use crate::lut::{ChunkLut, TableMode};

/// The set of `m` random bipolar position hypervectors `P_1..P_m` that
/// preserve chunk order during aggregation (Eq. 3).
#[derive(Debug, Clone)]
pub struct PositionKeys {
    keys: Vec<BipolarHv>,
}

impl PositionKeys {
    /// Generates `m` independent random bipolar keys of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `dim == 0`.
    pub fn generate<R: Rng + ?Sized>(m: usize, dim: usize, rng: &mut R) -> Self {
        assert!(m > 0, "need at least one position key");
        Self {
            keys: (0..m).map(|_| BipolarHv::random(dim, rng)).collect(),
        }
    }

    /// The key `P_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn key(&self, i: usize) -> &BipolarHv {
        &self.keys[i]
    }

    /// Number of keys `m`.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when there are no keys (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Maximum absolute pairwise cosine among the keys — the orthogonality
    /// quality that bounds chunk-aggregation cross-talk (§III-A).
    pub fn max_cross_correlation(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.keys.len() {
            for j in (i + 1)..self.keys.len() {
                worst = worst.max(self.keys[i].cosine(&self.keys[j]).abs());
            }
        }
        worst
    }
}

/// The LookHD encoder: quantize → address → lookup → keyed aggregation.
///
/// Implements the same [`Encode`] trait as the baseline
/// [`hdc::encoding::PermutationEncoder`], so trainers and classifiers can
/// use either interchangeably.
///
/// # Examples
///
/// ```
/// use hdc::encoding::Encode;
/// use hdc::levels::{LevelMemory, LevelScheme};
/// use hdc::quantize::{Quantization, Quantizer};
/// use lookhd::chunking::ChunkLayout;
/// use lookhd::encoder::LookupEncoder;
/// use lookhd::lut::TableMode;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let levels = LevelMemory::generate(256, 4, LevelScheme::RandomFlips, &mut rng)?;
/// let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
/// let quantizer = Quantizer::fit(Quantization::Equalized, &samples, 4)?;
/// let layout = ChunkLayout::new(10, 5, 4)?;
/// let enc = LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, 7)?;
/// let h = enc.encode(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95])?;
/// assert_eq!(h.dim(), 256);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LookupEncoder {
    lut: ChunkLut,
    quantizer: Quantizer,
    positions: PositionKeys,
}

impl LookupEncoder {
    /// Builds the encoder. `seed` determines the position hypervectors
    /// (the level memory carries its own randomness).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when the quantizer's `q` differs
    /// from the layout's, or when the lookup table cannot be built in the
    /// requested mode.
    pub fn new(
        layout: ChunkLayout,
        levels: &LevelMemory,
        quantizer: Quantizer,
        mode: TableMode,
        seed: u64,
    ) -> Result<Self> {
        if quantizer.levels() != layout.q() {
            return Err(HdcError::invalid_config(
                "q",
                format!(
                    "quantizer has {} levels but layout expects q={}",
                    quantizer.levels(),
                    layout.q()
                ),
            ));
        }
        let lut = ChunkLut::new(layout, levels, mode)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = PositionKeys::generate(layout.n_chunks(), levels.dim(), &mut rng);
        Ok(Self {
            lut,
            quantizer,
            positions,
        })
    }

    /// Quantizes a feature vector into per-chunk table addresses — the
    /// codebook-concatenation step (Fig. 6 steps A–C). This is all the
    /// per-sample work counter-based training performs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on feature-arity mismatch.
    pub fn addresses(&self, features: &[f64]) -> Result<Vec<u64>> {
        let layout = self.lut.layout();
        if features.len() != layout.n_features() {
            return Err(HdcError::invalid_dataset(format!(
                "expected {} features, got {}",
                layout.n_features(),
                features.len()
            )));
        }
        let mut addrs = Vec::with_capacity(layout.n_chunks());
        for c in 0..layout.n_chunks() {
            let range = layout.feature_range(c);
            let levels: Vec<usize> = features[range]
                .iter()
                .map(|&x| self.quantizer.level(x))
                .collect();
            addrs.push(layout.address(c, &levels));
        }
        Ok(addrs)
    }

    /// Aggregates pre-computed chunk addresses into the encoded hypervector
    /// (Eq. 3). Exposed separately so the counter trainer can reuse it.
    pub fn aggregate(&self, addrs: &[u64]) -> DenseHv {
        let mut acc = DenseHv::zeros(self.dim());
        for (c, &addr) in addrs.iter().enumerate() {
            self.lut
                .accumulate_row(c, addr, self.positions.key(c), 1, &mut acc);
        }
        acc
    }

    /// The chunk layout.
    pub fn layout(&self) -> &ChunkLayout {
        self.lut.layout()
    }

    /// The lookup table.
    pub fn lut(&self) -> &ChunkLut {
        &self.lut
    }

    /// The fitted quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The position keys `P_1..P_m`.
    pub fn positions(&self) -> &PositionKeys {
        &self.positions
    }
}

impl Encode for LookupEncoder {
    fn dim(&self) -> usize {
        self.lut.levels().dim()
    }

    fn n_features(&self) -> usize {
        self.lut.layout().n_features()
    }

    fn encode(&self, features: &[f64]) -> Result<DenseHv> {
        let _span = obs::span("encode");
        obs::counter("encode.samples", 1);
        let addrs = self.addresses(features)?;
        Ok(self.aggregate(&addrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::levels::LevelScheme;
    use hdc::quantize::Quantization;

    fn encoder(n: usize, r: usize, q: usize, dim: usize, seed: u64) -> LookupEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap()
    }

    #[test]
    fn encode_matches_manual_equation_three() {
        let enc = encoder(10, 5, 4, 128, 1);
        let features: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let h = enc.encode(&features).unwrap();
        // Manual: per chunk, Eq. 2 then bind with P_c and sum.
        let mut manual = DenseHv::zeros(128);
        for c in 0..2 {
            let mut chunk_hv = DenseHv::zeros(128);
            for (j, &f) in features[c * 5..(c + 1) * 5].iter().enumerate() {
                let lv = enc.quantizer().level(f);
                chunk_hv.add_rotated_bipolar(enc.lut().levels().level(lv), j);
            }
            let bound = chunk_hv.bound(enc.positions().key(c));
            manual.add_assign_hv(&bound);
        }
        assert_eq!(h, manual);
    }

    #[test]
    fn lookup_mode_does_not_change_encoding() {
        let mut rng = StdRng::seed_from_u64(2);
        let levels = LevelMemory::generate(128, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, 4).unwrap();
        let layout = ChunkLayout::new(13, 5, 4).unwrap();
        let a = LookupEncoder::new(
            layout,
            &levels,
            quantizer.clone(),
            TableMode::Materialized,
            9,
        )
        .unwrap();
        let b = LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 9).unwrap();
        let f: Vec<f64> = (0..13).map(|i| i as f64 / 13.0).collect();
        assert_eq!(a.encode(&f).unwrap(), b.encode(&f).unwrap());
    }

    #[test]
    fn addresses_reflect_quantized_levels() {
        let enc = encoder(10, 5, 4, 64, 3);
        let f = vec![0.0; 10]; // all in level 0 → address 0 for both chunks
        assert_eq!(enc.addresses(&f).unwrap(), vec![0, 0]);
        let f = vec![0.999; 10]; // all max level → address q^r - 1
        assert_eq!(enc.addresses(&f).unwrap(), vec![1023, 1023]);
    }

    #[test]
    fn similar_inputs_encode_similarly_distinct_inputs_do_not() {
        let enc = encoder(20, 5, 4, 2048, 4);
        let a: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let mut b = a.clone();
        b[3] += 0.001; // same level
        let c: Vec<f64> = (0..20).map(|i| ((i * 7) % 20) as f64 / 20.0).collect();
        let (ha, hb, hc) = (
            enc.encode(&a).unwrap(),
            enc.encode(&b).unwrap(),
            enc.encode(&c).unwrap(),
        );
        assert!(ha.cosine(&hb) > 0.999);
        assert!(ha.cosine(&hc) < 0.8);
    }

    #[test]
    fn position_keys_nearly_orthogonal() {
        let mut rng = StdRng::seed_from_u64(5);
        let keys = PositionKeys::generate(20, 4000, &mut rng);
        assert_eq!(keys.len(), 20);
        assert!(!keys.is_empty());
        assert!(keys.max_cross_correlation() < 0.1);
    }

    #[test]
    fn wrong_arity_rejected() {
        let enc = encoder(10, 5, 4, 64, 6);
        assert!(enc.encode(&[0.0; 4]).is_err());
        assert!(enc.addresses(&[0.0; 11]).is_err());
    }

    #[test]
    fn quantizer_level_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let levels = LevelMemory::generate(64, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let q8 = Quantizer::fit(Quantization::Linear, &[0.0, 1.0], 8).unwrap();
        let layout = ChunkLayout::new(10, 5, 4).unwrap();
        assert!(LookupEncoder::new(layout, &levels, q8, TableMode::OnTheFly, 0).is_err());
    }

    #[test]
    fn partial_chunk_vectors_encode() {
        let enc = encoder(12, 5, 2, 64, 8);
        let f: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        let h = enc.encode(&f).unwrap();
        assert_eq!(h.dim(), 64);
        // Element magnitude cannot exceed the total feature count.
        assert!(h.max_abs() <= 12);
    }
}
