//! Pre-stored encoded chunk hypervectors (§III-C, Fig. 5).
//!
//! For a chunk of `r` features with `q` levels there are `q^r` possible
//! encoded chunk hypervectors
//! `H(addr) = Σ_{j=0..r} ρ^j( L_{digit_j(addr)} )`. LookHD pre-computes all
//! of them so encoding becomes one memory access.
//!
//! Two storage modes with *identical* results:
//!
//! * [`TableMode::Materialized`] — the table is actually built, as in the
//!   FPGA BRAM implementation. Only feasible while `q^r · D` fits memory.
//! * [`TableMode::OnTheFly`] — rows are synthesized from the level memory
//!   on each access. This lets accuracy sweeps explore `q`/`r` corners whose
//!   tables would not fit (the hardware-feasibility question is modelled
//!   separately in `lookhd-hwsim`).
//!
//! [`ChunkLut::auto`] picks `Materialized` when the full table fits in a
//! caller-supplied byte budget.

use hdc::hv::DenseHv;
use hdc::levels::LevelMemory;
use hdc::{HdcError, Result};

use crate::chunking::ChunkLayout;

/// Storage strategy for the chunk tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableMode {
    /// Pre-compute and store every row (the paper's BRAM tables).
    Materialized,
    /// Recompute rows on access (reference semantics for large sweeps).
    OnTheFly,
}

/// The pre-stored (or lazily synthesized) encoded chunk hypervectors for
/// every chunk of a [`ChunkLayout`].
///
/// # Examples
///
/// ```
/// use hdc::levels::{LevelMemory, LevelScheme};
/// use lookhd::chunking::ChunkLayout;
/// use lookhd::lut::{ChunkLut, TableMode};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let levels = LevelMemory::generate(256, 4, LevelScheme::RandomFlips, &mut rng)?;
/// let layout = ChunkLayout::new(10, 5, 4)?;
/// let lut = ChunkLut::new(layout, &levels, TableMode::Materialized)?;
/// let row = lut.row(0, 7);
/// assert_eq!(row.dim(), 256);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChunkLut {
    layout: ChunkLayout,
    levels: LevelMemory,
    mode: TableMode,
    /// `tables[t]` holds the rows for distinct chunk *shapes*: index 0 is
    /// the full-`r` table shared by all full chunks, index 1 (if present)
    /// the partial-final-chunk table.
    tables: Vec<Vec<DenseHv>>,
}

impl ChunkLut {
    /// Builds the lookup structure in the requested mode.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if the level memory's `q` differs
    /// from the layout's, or if `Materialized` is requested for a table
    /// larger than [`ChunkLut::MATERIALIZE_HARD_LIMIT_BYTES`].
    pub fn new(layout: ChunkLayout, levels: &LevelMemory, mode: TableMode) -> Result<Self> {
        if levels.levels() != layout.q() {
            return Err(HdcError::invalid_config(
                "q",
                format!(
                    "level memory has {} levels but layout expects q={}",
                    levels.levels(),
                    layout.q()
                ),
            ));
        }
        let mut lut = Self {
            layout,
            levels: levels.clone(),
            mode,
            tables: Vec::new(),
        };
        if mode == TableMode::Materialized {
            let bytes = lut.materialized_bytes();
            if bytes > Self::MATERIALIZE_HARD_LIMIT_BYTES {
                return Err(HdcError::invalid_config(
                    "r",
                    format!(
                        "materialized table needs {bytes} bytes (> {} limit); use TableMode::OnTheFly",
                        Self::MATERIALIZE_HARD_LIMIT_BYTES
                    ),
                ));
            }
            lut.materialize();
        }
        Ok(lut)
    }

    /// Hard cap on materialized table size (512 MiB of `i32` elements).
    pub const MATERIALIZE_HARD_LIMIT_BYTES: usize = 512 << 20;

    /// Builds the structure, materializing only when the table fits in
    /// `budget_bytes`.
    ///
    /// # Errors
    ///
    /// Propagates [`ChunkLut::new`] errors.
    pub fn auto(layout: ChunkLayout, levels: &LevelMemory, budget_bytes: usize) -> Result<Self> {
        let probe = Self {
            layout,
            levels: levels.clone(),
            mode: TableMode::OnTheFly,
            tables: Vec::new(),
        };
        let mode =
            if probe.materialized_bytes() <= budget_bytes.min(Self::MATERIALIZE_HARD_LIMIT_BYTES) {
                TableMode::Materialized
            } else {
                TableMode::OnTheFly
            };
        Self::new(layout, levels, mode)
    }

    /// Bytes a fully materialized table would occupy (`i32` per element).
    pub fn materialized_bytes(&self) -> usize {
        let d = self.levels.dim();
        self.shape_rows()
            .iter()
            .map(|&rows| rows * d * std::mem::size_of::<i32>())
            .sum()
    }

    /// Row counts per distinct chunk shape (full table, plus partial-final
    /// table when `r ∤ n`).
    fn shape_rows(&self) -> Vec<usize> {
        let mut shapes = vec![self.layout.table_rows(0)];
        let last = self.layout.n_chunks() - 1;
        if self.layout.chunk_len(last) != self.layout.chunk_len(0) {
            shapes.push(self.layout.table_rows(last));
        }
        shapes
    }

    fn materialize(&mut self) {
        let mut tables = Vec::new();
        let full_len = self.layout.chunk_len(0);
        tables.push(self.build_table(full_len));
        let last = self.layout.n_chunks() - 1;
        let last_len = self.layout.chunk_len(last);
        if last_len != full_len {
            tables.push(self.build_table(last_len));
        }
        self.tables = tables;
    }

    fn build_table(&self, chunk_len: usize) -> Vec<DenseHv> {
        let rows = self.layout.q().pow(chunk_len as u32);
        (0..rows as u64)
            .map(|addr| self.synthesize(chunk_len, addr))
            .collect()
    }

    /// Computes row `addr` for a chunk of `chunk_len` features directly
    /// from the level memory (Eq. 2).
    fn synthesize(&self, chunk_len: usize, addr: u64) -> DenseHv {
        let q = self.layout.q() as u64;
        let mut digits = vec![0usize; chunk_len];
        let mut a = addr;
        for d in digits.iter_mut().rev() {
            *d = (a % q) as usize;
            a /= q;
        }
        let mut acc = DenseHv::zeros(self.levels.dim());
        for (j, &lv) in digits.iter().enumerate() {
            acc.add_rotated_bipolar(self.levels.level(lv), j);
        }
        acc
    }

    fn table_index(&self, chunk: usize) -> usize {
        if self.layout.chunk_len(chunk) == self.layout.chunk_len(0) {
            0
        } else {
            1
        }
    }

    /// The encoded chunk hypervector for `addr` in chunk `chunk`.
    ///
    /// In `Materialized` mode this is a cheap clone of the stored row; in
    /// `OnTheFly` mode the row is synthesized (identical values).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` or `addr` is out of range.
    pub fn row(&self, chunk: usize, addr: u64) -> DenseHv {
        assert!(
            addr < self.layout.table_rows(chunk) as u64,
            "address {addr} out of range for chunk {chunk}"
        );
        match self.mode {
            TableMode::Materialized => self.tables[self.table_index(chunk)][addr as usize].clone(),
            TableMode::OnTheFly => self.synthesize(self.layout.chunk_len(chunk), addr),
        }
    }

    /// Accumulates `w · row(chunk, addr) ⊙ key` into `acc` without cloning
    /// the row in `Materialized` mode — the hot path shared by the encoder
    /// and the counter-training finalize step.
    ///
    /// # Panics
    ///
    /// Panics if `chunk`/`addr` are out of range or dimensions disagree.
    pub fn accumulate_row(
        &self,
        chunk: usize,
        addr: u64,
        key: &hdc::hv::BipolarHv,
        w: i32,
        acc: &mut DenseHv,
    ) {
        match self.mode {
            TableMode::Materialized => {
                let row = &self.tables[self.table_index(chunk)][addr as usize];
                acc.add_bound_scaled(key, row, w);
            }
            TableMode::OnTheFly => {
                let row = self.row(chunk, addr);
                acc.add_bound_scaled(key, &row, w);
            }
        }
    }

    /// The chunk layout this table serves.
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }

    /// The level memory the rows are built from.
    pub fn levels(&self) -> &LevelMemory {
        &self.levels
    }

    /// The active storage mode.
    pub fn mode(&self) -> TableMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::hv::BipolarHv;
    use hdc::levels::LevelScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, r: usize, q: usize, dim: usize) -> (ChunkLayout, LevelMemory) {
        let mut rng = StdRng::seed_from_u64(11);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        (layout, levels)
    }

    #[test]
    fn materialized_and_on_the_fly_agree() {
        let (layout, levels) = setup(13, 5, 4, 128);
        let mat = ChunkLut::new(layout, &levels, TableMode::Materialized).unwrap();
        let fly = ChunkLut::new(layout, &levels, TableMode::OnTheFly).unwrap();
        for chunk in 0..layout.n_chunks() {
            for addr in [0u64, 1, layout.table_rows(chunk) as u64 - 1] {
                assert_eq!(
                    mat.row(chunk, addr),
                    fly.row(chunk, addr),
                    "chunk {chunk} addr {addr}"
                );
            }
        }
    }

    #[test]
    fn row_matches_equation_two() {
        let (layout, levels) = setup(10, 5, 4, 128);
        let lut = ChunkLut::new(layout, &levels, TableMode::Materialized).unwrap();
        // addr digits (most significant first): [0,1,2,3,0]
        let addr = layout.address(0, &[0, 1, 2, 3, 0]);
        let mut manual = DenseHv::zeros(128);
        for (j, lv) in [0usize, 1, 2, 3, 0].into_iter().enumerate() {
            manual.add_rotated_bipolar(levels.level(lv), j);
        }
        assert_eq!(lut.row(0, addr), manual);
    }

    #[test]
    fn partial_chunk_uses_smaller_table() {
        let (layout, levels) = setup(12, 5, 2, 64);
        let lut = ChunkLut::new(layout, &levels, TableMode::Materialized).unwrap();
        assert_eq!(layout.chunk_len(2), 2);
        let row = lut.row(2, 3); // digits [1, 1]
        let mut manual = DenseHv::zeros(64);
        manual.add_rotated_bipolar(levels.level(1), 0);
        manual.add_rotated_bipolar(levels.level(1), 1);
        assert_eq!(row, manual);
    }

    #[test]
    fn accumulate_row_matches_row_plus_bind() {
        let (layout, levels) = setup(10, 5, 2, 64);
        let mut rng = StdRng::seed_from_u64(5);
        let key = BipolarHv::random(64, &mut rng);
        for mode in [TableMode::Materialized, TableMode::OnTheFly] {
            let lut = ChunkLut::new(layout, &levels, mode).unwrap();
            let mut acc = DenseHv::zeros(64);
            lut.accumulate_row(1, 9, &key, 3, &mut acc);
            let mut manual = DenseHv::zeros(64);
            manual.add_bound_scaled(&key, &lut.row(1, 9), 3);
            assert_eq!(acc, manual);
        }
    }

    #[test]
    fn auto_picks_mode_by_budget() {
        let (layout, levels) = setup(10, 5, 4, 128);
        let lut = ChunkLut::auto(layout, &levels, usize::MAX).unwrap();
        assert_eq!(lut.mode(), TableMode::Materialized);
        let lut = ChunkLut::auto(layout, &levels, 1024).unwrap();
        assert_eq!(lut.mode(), TableMode::OnTheFly);
    }

    #[test]
    fn rejects_oversized_materialization() {
        // q=16, r=8 → 16^8 = 4.3e9 rows; materializing must fail cleanly.
        let (layout, levels) = setup(16, 8, 16, 64);
        assert!(ChunkLut::new(layout, &levels, TableMode::Materialized).is_err());
        assert!(ChunkLut::new(layout, &levels, TableMode::OnTheFly).is_ok());
    }

    #[test]
    fn rejects_mismatched_level_memory() {
        let (_, levels) = setup(10, 5, 4, 64);
        let layout8 = ChunkLayout::new(10, 5, 8).unwrap();
        assert!(ChunkLut::new(layout8, &levels, TableMode::OnTheFly).is_err());
    }

    #[test]
    fn materialized_bytes_counts_both_shapes() {
        let (layout, levels) = setup(7, 3, 2, 16);
        let lut = ChunkLut::new(layout, &levels, TableMode::OnTheFly).unwrap();
        // shapes: 2^3 = 8 rows + 2^1 = 2 rows, 16 dims × 4 bytes each
        assert_eq!(lut.materialized_bytes(), (8 + 2) * 16 * 4);
    }
}
