//! Pluggable score kernels: one seam between the classifier and its
//! scoring arithmetic.
//!
//! [`LookHdClassifier`](crate::classifier::LookHdClassifier) historically
//! hard-wired two scoring paths (dense compressed scoring and the SLT1
//! score-LUT) and dispatched between them ad hoc. This module replaces the
//! branches with one object-safe [`ScoreKernel`] trait and three
//! implementations:
//!
//! * [`DenseKernel`] — encode the query hypervector and score it against
//!   the compressed model (Eq. 5). Works for every model, including
//!   whitened (decorrelated) ones. The exact reference.
//! * [`LutKernel`] — the precomputed per-chunk partial-score tables of
//!   [`crate::score_lut`]; bit-identical to dense, no hypervector on the
//!   query path.
//! * [`BinaryKernel`] — class hypervectors mean-centered, binarized, and
//!   bit-packed into `u64` words, scored by XOR + popcount Hamming
//!   distance (the dense binary HD hardware optimizations of Schmuck et
//!   al.), with a
//!   SHEARer-style *multifold* approximation knob: score a prefix of the
//!   packed words and escalate fold by fold only while the top1−top2
//!   margin stays ambiguous.
//!
//! Which kernel a classifier builds is chosen by [`KernelSpec`]
//! (`LookHdConfig::with_kernel`). [`KernelKind::Auto`] resolves
//! `lut → dense`: it tries the score-LUT and silently falls back to the
//! dense path when the model is ineligible (whitened, over budget, out of
//! integer bound), counted as `kernel.fallback`. The binary kernel is
//! approximate, so it is never chosen automatically — only an explicit
//! [`KernelKind::Binary`] selects it.
//!
//! Kernels are stateless with respect to the encoder and model: every
//! scoring call receives `(&LookupEncoder, &CompressedModel)` from the
//! classifier, and the packed class words of [`BinaryKernel`] are the only
//! kernel-owned state. Position and `P'` key hypervectors are never
//! persisted — they rematerialize from the stored seed, and
//! [`BinaryKernel::build`] re-derives the packed class words from the
//! rematerialized model (a property the differential test suite pins
//! bit-exactly against the stored BIN1 words).

use std::any::Any;
use std::fmt;
use std::str::FromStr;

use hdc::encoding::Encode;
use hdc::hv::BipolarHv;
use hdc::{HdcError, Result};

use crate::chunking::ChunkLayout;
use crate::compress::{serial_u32, CompressedModel, MAX_SERIAL_CLASSES, MAX_SERIAL_DIM};
use crate::encoder::LookupEncoder;
use crate::score_lut::ScoreLut;

const BINARY_MAGIC: &[u8; 4] = b"BIN1";
const WORD_BITS: usize = 64;

/// LKS1 kernel-section tag: no kernel payload (dense scoring path).
pub const KERNEL_SECTION_NONE: u8 = 0;
/// LKS1 kernel-section tag: an SLT1 score-LUT section follows.
pub const KERNEL_SECTION_SLT1: u8 = 1;
/// LKS1 kernel-section tag: a BIN1 binary-kernel section follows.
pub const KERNEL_SECTION_BIN1: u8 = 2;

/// Ceiling on the serialized multifold level — far above any useful fold
/// count (folds beyond the packed word count clamp at predict time),
/// present so a corrupt BIN1 header cannot smuggle absurd values through
/// the format.
pub const MAX_MULTIFOLD: usize = 1 << 16;

/// Which scoring kernel the classifier should build at fit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Resolve automatically: try the score-LUT, fall back to dense when
    /// the model is ineligible. Never picks the (approximate) binary
    /// kernel.
    Auto,
    /// Always the dense compressed scoring path (the exact reference).
    #[default]
    Dense,
    /// The precomputed score-LUT tables ([`crate::score_lut`]); an
    /// ineligible model is a hard error (use [`KernelKind::Auto`] for
    /// silent fallback).
    Lut,
    /// Bit-packed binary Hamming scoring ([`BinaryKernel`]); approximate.
    Binary,
}

impl KernelKind {
    /// The stable lower-case name used by the CLI and telemetry.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Dense => "dense",
            KernelKind::Lut => "lut",
            KernelKind::Binary => "binary",
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelKind {
    type Err = HdcError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "auto" => Ok(KernelKind::Auto),
            "dense" => Ok(KernelKind::Dense),
            "lut" => Ok(KernelKind::Lut),
            "binary" => Ok(KernelKind::Binary),
            other => Err(HdcError::invalid_config(
                "kernel",
                format!("unknown kernel '{other}' (expected auto, dense, lut, or binary)"),
            )),
        }
    }
}

/// Full kernel selection: the kind plus the knobs the individual kernels
/// consume (`budget_bytes` for the score-LUT tables, `multifold` for the
/// binary kernel's prefix-scoring level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Which kernel to build (see [`KernelKind`]).
    pub kind: KernelKind,
    /// Byte ceiling for precomputed score-LUT tables (`m·k·q^r` × 8 B);
    /// ignored by the dense and binary kernels.
    pub budget_bytes: usize,
    /// Multifold approximation level of the binary kernel: `0` (or `1`)
    /// scores every packed word; `N ≥ 2` splits the words into `N`
    /// contiguous folds and stops early once the top1−top2 margin is
    /// unambiguous. Ignored by the dense and LUT kernels.
    pub multifold: usize,
}

impl KernelSpec {
    /// Default score-LUT table budget (64 MiB — holds the Table I SPEECH
    /// shape, `124·26·4^5` entries ≈ 26 MiB, with room).
    pub const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

    /// A spec of the given kind with the default budget and multifold off.
    pub fn new(kind: KernelKind) -> Self {
        Self {
            kind,
            budget_bytes: Self::DEFAULT_BUDGET_BYTES,
            multifold: 0,
        }
    }

    /// Auto resolution (`lut → dense` fallback) under the default budget.
    pub fn auto() -> Self {
        Self::new(KernelKind::Auto)
    }

    /// The dense scoring path.
    pub fn dense() -> Self {
        Self::new(KernelKind::Dense)
    }

    /// The score-LUT kernel (hard error when ineligible).
    pub fn lut() -> Self {
        Self::new(KernelKind::Lut)
    }

    /// The binary Hamming kernel.
    pub fn binary() -> Self {
        Self::new(KernelKind::Binary)
    }

    /// Sets the score-LUT table byte budget.
    pub fn with_budget_bytes(mut self, budget_bytes: usize) -> Self {
        self.budget_bytes = budget_bytes;
        self
    }

    /// Sets the binary kernel's multifold level (`0` = off).
    pub fn with_multifold(mut self, multifold: usize) -> Self {
        self.multifold = multifold;
        self
    }
}

impl Default for KernelSpec {
    fn default() -> Self {
        Self::dense()
    }
}

/// First-maximum argmax with the strict-`>` rule every scoring path in
/// this workspace uses, so ties break identically across kernels.
fn argmax_f64(scores: &[f64]) -> usize {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// Object-safe scoring kernel: the one seam through which
/// [`LookHdClassifier`](crate::classifier::LookHdClassifier) scores and
/// classifies queries. Batch variants stay on the classifier, which shards
/// per-query calls across the `lookhd-engine` threads — every kernel is
/// `Send + Sync`, so the same boxed kernel serves all shards.
pub trait ScoreKernel: fmt::Debug + Send + Sync {
    /// Stable kernel name (`"dense"`, `"lut"`, `"binary"`) used by the CLI,
    /// `info` output, and the `kernel.<name>.*` telemetry scheme.
    fn name(&self) -> &'static str;

    /// Per-class scores for one raw feature vector. Exact kernels return
    /// values bit-identical to the dense path; the binary kernel returns
    /// its (integer-valued) Hamming agreement scores.
    ///
    /// # Errors
    ///
    /// Propagates encoding/arity errors.
    fn scores(
        &self,
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<Vec<f64>>;

    /// Predicted label: first-maximum argmax over [`ScoreKernel::scores`]
    /// by default. Kernels override this when they can classify cheaper
    /// than full scoring (the binary kernel's multifold early exit).
    ///
    /// # Errors
    ///
    /// Propagates encoding/arity errors.
    fn predict(
        &self,
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<usize> {
        Ok(argmax_f64(&self.scores(encoder, compressed, features)?))
    }

    /// Whether scores are bit-identical to the dense reference path.
    fn is_exact(&self) -> bool;

    /// Bytes of precomputed kernel state (0 for the stateless dense path).
    fn size_bytes(&self) -> usize;

    /// One-line human summary for `info` output.
    fn describe(&self) -> String;

    /// The LKS1 kernel-section tag and payload, or `None` when nothing
    /// needs persisting (the dense kernel rebuilds implicitly).
    ///
    /// # Errors
    ///
    /// Propagates serialization-cap errors.
    fn persist(&self) -> Result<Option<(u8, Vec<u8>)>>;

    /// Checks the kernel's geometry and eligibility against the layout and
    /// model it will serve (used after deserialization, where the sections
    /// arrive independently).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on any disagreement.
    fn validate_against(&self, layout: &ChunkLayout, compressed: &CompressedModel) -> Result<()>;

    /// Deep copy behind the object (the classifier is `Clone`).
    fn clone_box(&self) -> Box<dyn ScoreKernel>;

    /// Downcast hook (e.g. [`LookHdClassifier::score_lut`](crate::classifier::LookHdClassifier::score_lut)).
    fn as_any(&self) -> &dyn Any;
}

impl Clone for Box<dyn ScoreKernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Builds the kernel a [`KernelSpec`] asks for from a fitted encoder and
/// compressed model.
///
/// [`KernelKind::Auto`] resolves `lut → dense`: an ineligible score-LUT
/// build falls back to [`DenseKernel`] silently, ticking
/// `kernel.fallback`. Explicit kinds propagate build errors instead.
///
/// # Errors
///
/// Returns the underlying build error for explicit [`KernelKind::Lut`] /
/// [`KernelKind::Binary`] requests the model cannot satisfy.
pub fn build_kernel(
    encoder: &LookupEncoder,
    compressed: &CompressedModel,
    spec: &KernelSpec,
) -> Result<Box<dyn ScoreKernel>> {
    match spec.kind {
        KernelKind::Dense => Ok(Box::new(DenseKernel)),
        KernelKind::Lut => Ok(Box::new(LutKernel::build(
            encoder,
            compressed,
            spec.budget_bytes,
        )?)),
        KernelKind::Binary => Ok(Box::new(BinaryKernel::build(
            encoder,
            compressed,
            spec.multifold,
        )?)),
        KernelKind::Auto => match LutKernel::build(encoder, compressed, spec.budget_bytes) {
            Ok(kernel) => Ok(Box::new(kernel)),
            Err(_) => {
                // Ineligible (whitened / over budget / out of bound): the
                // dense path serves identically, just slower.
                obs::counter("kernel.fallback", 1);
                Ok(Box::new(DenseKernel))
            }
        },
    }
}

/// Reconstructs a kernel from an LKS1 kernel-section tag and payload.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for an unknown tag or a malformed
/// payload.
pub fn kernel_from_section(tag: u8, payload: &[u8]) -> Result<Box<dyn ScoreKernel>> {
    match tag {
        KERNEL_SECTION_NONE => Ok(Box::new(DenseKernel)),
        KERNEL_SECTION_SLT1 => Ok(Box::new(LutKernel::new(ScoreLut::from_bytes(payload)?))),
        KERNEL_SECTION_BIN1 => Ok(Box::new(BinaryKernel::from_bytes(payload)?)),
        other => Err(HdcError::invalid_dataset(format!(
            "unknown kernel flag {other}"
        ))),
    }
}

/// The dense scoring path (Eq. 5): encode the query hypervector and score
/// it against the compressed model. Stateless; works for every model,
/// including whitened ones. The exact reference every other kernel is
/// measured against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseKernel;

impl ScoreKernel for DenseKernel {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn scores(
        &self,
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<Vec<f64>> {
        let h = encoder.encode(features)?;
        compressed.scores(&h)
    }

    fn predict(
        &self,
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<usize> {
        let h = encoder.encode(features)?;
        compressed.predict(&h)
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn describe(&self) -> String {
        "dense compressed scoring (no precomputed state)".to_owned()
    }

    fn persist(&self) -> Result<Option<(u8, Vec<u8>)>> {
        Ok(None)
    }

    fn validate_against(&self, _layout: &ChunkLayout, _compressed: &CompressedModel) -> Result<()> {
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn ScoreKernel> {
        Box::new(*self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The score-LUT kernel: [`ScoreLut`] behind the [`ScoreKernel`] seam.
/// Bit-identical to [`DenseKernel`] on every eligible model (see
/// [`crate::score_lut`] for the exactness argument).
#[derive(Debug, Clone, PartialEq)]
pub struct LutKernel {
    lut: ScoreLut,
}

impl LutKernel {
    /// Wraps an already-built (or deserialized) score-LUT.
    pub fn new(lut: ScoreLut) -> Self {
        Self { lut }
    }

    /// Precomputes the tables from a fitted encoder and compressed model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScoreLut::build`].
    pub fn build(
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        budget_bytes: usize,
    ) -> Result<Self> {
        Ok(Self::new(ScoreLut::build(
            encoder,
            compressed,
            budget_bytes,
        )?))
    }

    /// The wrapped score-LUT.
    pub fn lut(&self) -> &ScoreLut {
        &self.lut
    }
}

impl ScoreKernel for LutKernel {
    fn name(&self) -> &'static str {
        "lut"
    }

    fn scores(
        &self,
        encoder: &LookupEncoder,
        _compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<Vec<f64>> {
        let addrs = encoder.addresses(features)?;
        self.lut.scores(&addrs)
    }

    fn predict(
        &self,
        encoder: &LookupEncoder,
        _compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<usize> {
        let addrs = encoder.addresses(features)?;
        self.lut.predict(&addrs)
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn size_bytes(&self) -> usize {
        self.lut.size_bytes()
    }

    fn describe(&self) -> String {
        format!(
            "{} chunk tables x {} classes, {} B precomputed",
            self.lut.n_chunks(),
            self.lut.n_classes(),
            self.lut.size_bytes()
        )
    }

    fn persist(&self) -> Result<Option<(u8, Vec<u8>)>> {
        Ok(Some((KERNEL_SECTION_SLT1, self.lut.to_bytes()?)))
    }

    fn validate_against(&self, layout: &ChunkLayout, compressed: &CompressedModel) -> Result<()> {
        self.lut.validate_against(layout, compressed)
    }

    fn clone_box(&self) -> Box<dyn ScoreKernel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Binarizes an integer hypervector by sign: negative components map to
/// `-1`, zero and positive to `+1` (the deterministic tie rule, so
/// binarized bundling is reproducible bit for bit).
fn binarize(values: &[i32]) -> BipolarHv {
    let mut hv = BipolarHv::ones(values.len());
    for (d, &v) in values.iter().enumerate() {
        if v < 0 {
            hv.set(d, -1);
        }
    }
    hv
}

/// The bit-packed binary Hamming kernel.
///
/// At materialize time each class's effective dense weight vector
/// `W_c[d] = P'_c[d] · C_{g(c)}[d]` (the exact per-dimension weights the
/// dense path scores against) is *centered and binarized*: the class
/// vectors share a large common component `μ[d] = (1/k)·Σ_c W_c[d]`
/// (retraining grows every class from the same bundled accumulators), and
/// a raw `sign(W_c)` is dominated by it, collapsing the per-class signal.
/// The kernel therefore stores `B_c = sign(W_c − μ)` packed into
/// `⌈D/64⌉` `u64` words, plus `μ` itself (rounded to `i32`). A query is
/// encoded, its `μ`-component removed, and binarized the same way —
/// `b = sign(H − ((H·μ)/(μ·μ))·μ)` — then scored per class as
///
/// ```text
/// score_c = B_c · b = D − 2 · popcount(B_c ⊕ b)
/// ```
///
/// — one XOR + popcount per word, no multiplies (the query pays one
/// `D`-wide dot against `μ` once, independent of `k`). The argmax
/// approximates the dense argmax (exactly when the dense margin exceeds
/// the binarization quantization error); scores are not comparable to the
/// dense path's magnitudes.
///
/// ## Multifold approximation
///
/// With `multifold = N ≥ 2` the packed words are split into `N` contiguous
/// folds. Prediction scores fold by fold and, after each fold, accepts the
/// running argmax early when the top1−top2 score margin is *unambiguous*:
/// `margin ≥ 4·√(remaining bits)` (binary cross-talk on the unscored
/// suffix behaves like a ±1 random walk per pair of classes, so `4·√bits`
/// is ≈ 4σ of the possible margin drift). When every fold stays ambiguous
/// the escalation reaches the last fold and the result equals
/// multifold-off scoring exactly.
///
/// The kernel persists as a hardened `BIN1` section holding only the
/// packed class words and the centering mean — position and `P'` keys
/// rematerialize from the stored seed, and [`BinaryKernel::build`] on the
/// rematerialized model reproduces the stored words bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryKernel {
    /// Binarized class vectors `B_c = sign(W_c − μ)`, bit-packed.
    classes: Vec<BipolarHv>,
    /// The cross-class mean `μ` the classes were centered on, rounded to
    /// integers (it is an average of integer weights, so rounding is
    /// lossless to within ±0.5 against magnitudes in the thousands).
    mean: Vec<i32>,
    dim: usize,
    multifold: usize,
}

impl BinaryKernel {
    /// Materializes the kernel: binarized bundling of the compressed
    /// model's per-class weights into packed words.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for a whitened model (the
    /// per-dimension integer weights the binarization quantizes do not
    /// exist under f64 projections) and [`HdcError::DimensionMismatch`]
    /// when the encoder and model disagree on `D`.
    pub fn build(
        encoder: &LookupEncoder,
        compressed: &CompressedModel,
        multifold: usize,
    ) -> Result<Self> {
        let _span = obs::span("binary_kernel_build");
        if compressed.n_directions() != 0 {
            return Err(HdcError::invalid_config(
                "kernel",
                "whitened (decorrelated) models score through f64 projections; \
                 the binary Hamming kernel requires decorrelate=false",
            ));
        }
        let dim = encoder.dim();
        if dim != compressed.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: compressed.dim(),
                actual: dim,
            });
        }
        let k = compressed.n_classes();
        // Reconstruct the exact per-class integer weights the dense path
        // scores against: W_c[d] = C_{g(c)}[d]·P'_c[d].
        let mut weights = vec![vec![0i64; dim]; k];
        for (c, row) in weights.iter_mut().enumerate() {
            let key = compressed.key(c);
            let combined = compressed.combined(compressed.group_of(c)).as_slice();
            for (d, &w) in combined.iter().enumerate() {
                row[d] = (w as i64) * (key.value(d) as i64);
            }
        }
        // Cross-class mean μ, rounded to i32 (each W_c[d] is an i32-range
        // integer, so the rounded average fits).
        let mean: Vec<i32> = (0..dim)
            .map(|d| {
                let sum: i64 = weights.iter().map(|row| row[d]).sum();
                (sum as f64 / k as f64).round() as i32
            })
            .collect();
        let mut classes = Vec::with_capacity(k);
        for row in &weights {
            let mut hv = BipolarHv::ones(dim);
            for (d, &w) in row.iter().enumerate() {
                // B_c[d] = sign(W_c[d] − μ[d]); sign(0) → +1 (see
                // `binarize`).
                if w - (mean[d] as i64) < 0 {
                    hv.set(d, -1);
                }
            }
            classes.push(hv);
        }
        Ok(Self {
            classes,
            mean,
            dim,
            multifold,
        })
    }

    /// The configured multifold level (`0` = off).
    pub fn multifold(&self) -> usize {
        self.multifold
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The binarized, packed class vector `B_c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_classes()`.
    pub fn class(&self, c: usize) -> &BipolarHv {
        &self.classes[c]
    }

    /// The rounded cross-class mean `μ` the class vectors were centered
    /// on before binarization.
    pub fn mean(&self) -> &[i32] {
        &self.mean
    }

    /// Binarizes an encoded query for this kernel: removes the query's
    /// component along the centering mean `μ` (the class-common signal
    /// that carries no class information), then takes signs. Falls back
    /// to a plain sign binarization when `μ = 0`.
    fn binarize_query(&self, values: &[i32]) -> BipolarHv {
        let norm2: i64 = self.mean.iter().map(|&m| (m as i64) * (m as i64)).sum();
        if norm2 == 0 {
            return binarize(values);
        }
        let dot: i64 = values
            .iter()
            .zip(&self.mean)
            .map(|(&v, &m)| (v as i64) * (m as i64))
            .sum();
        let proj = dot as f64 / norm2 as f64;
        let mut hv = BipolarHv::ones(values.len());
        for (d, (&v, &m)) in values.iter().zip(&self.mean).enumerate() {
            if (v as f64) - proj * (m as f64) < 0.0 {
                hv.set(d, -1);
            }
        }
        hv
    }

    /// Escalation rule: the top1−top2 margin is ambiguous while it is
    /// below `4·√(remaining bits)` (≈ 4σ of the pairwise margin drift the
    /// unscored suffix can still cause).
    fn ambiguous(margin: i64, remaining_bits: usize) -> bool {
        (margin as f64) < 4.0 * (remaining_bits as f64).sqrt()
    }

    /// Full (multifold-off) integer Hamming agreement scores for a packed
    /// query.
    fn scores_packed(&self, query: &BipolarHv) -> Vec<i64> {
        self.classes.iter().map(|b| b.dot(query)).collect()
    }

    /// Argmax for a packed query, with multifold early exit when enabled.
    fn predict_packed(&self, query: &BipolarHv) -> usize {
        let q_words = query.words();
        let n_words = q_words.len();
        let folds = self.multifold.min(n_words);
        if folds < 2 {
            return argmax_i64(&self.scores_packed(query));
        }
        let k = self.classes.len();
        let mut disagree = vec![0i64; k];
        let mut scored = 0usize; // words scored so far
        for fold in 0..folds {
            let end = (fold + 1) * n_words / folds;
            for (c, class) in self.classes.iter().enumerate() {
                let c_words = class.words();
                let mut pop = 0u32;
                for w in scored..end {
                    pop += (c_words[w] ^ q_words[w]).count_ones();
                }
                disagree[c] += pop as i64;
            }
            scored = end;
            if scored == n_words {
                break;
            }
            // score_c = bits − 2·disagree_c, so argmax score = first-min
            // disagree (same strict tie-break) and the score margin is
            // 2·(disagree_top2 − disagree_top1).
            let (best, margin) = top1_margin(&disagree);
            let remaining_bits = self.dim - scored * WORD_BITS;
            if !Self::ambiguous(2 * margin, remaining_bits) {
                obs::counter("kernel.binary.multifold.early_exit", 1);
                return best;
            }
        }
        top1_margin(&disagree).0
    }

    /// Serializes the kernel (`BIN1` format): `D`, class count, multifold
    /// level, the `D` `i32` centering-mean values, then each class's
    /// packed `u64` words.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when a count exceeds the format
    /// caps.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(BINARY_MAGIC);
        let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        w32(
            &mut out,
            serial_u32("binary-kernel dim", self.dim, MAX_SERIAL_DIM)?,
        );
        w32(
            &mut out,
            serial_u32(
                "binary-kernel classes",
                self.classes.len(),
                MAX_SERIAL_CLASSES,
            )?,
        );
        w32(
            &mut out,
            serial_u32("binary-kernel multifold", self.multifold, MAX_MULTIFOLD)?,
        );
        for &m in &self.mean {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for class in &self.classes {
            for &word in class.words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Deserializes a kernel written by [`BinaryKernel::to_bytes`].
    ///
    /// Headers are validated against the remaining stream length and the
    /// [`crate::compress::MAX_SERIAL_DIM`] /
    /// [`crate::compress::MAX_SERIAL_CLASSES`] / [`MAX_MULTIFOLD`] caps
    /// *before* any allocation; set bits past `D` in a class's last word
    /// (which [`BinaryKernel::to_bytes`] never writes) and trailing bytes
    /// are rejected, so the encoding stays canonical.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for a malformed, truncated, or
    /// over-long stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(HdcError::invalid_dataset("truncated binary-kernel stream"));
            }
            let out = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(out)
        };
        if take(&mut pos, 4)? != BINARY_MAGIC {
            return Err(HdcError::invalid_dataset(
                "bad magic: not a BIN1 binary kernel",
            ));
        }
        let u32v = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("len checked"),
            ))
        };
        let dim = u32v(&mut pos)? as usize;
        if dim == 0 || dim > MAX_SERIAL_DIM {
            return Err(HdcError::invalid_dataset(format!(
                "binary-kernel dim {dim} outside 1..={MAX_SERIAL_DIM}"
            )));
        }
        let k = u32v(&mut pos)? as usize;
        if k == 0 || k > MAX_SERIAL_CLASSES {
            return Err(HdcError::invalid_dataset(format!(
                "binary-kernel class count {k} outside 1..={MAX_SERIAL_CLASSES}"
            )));
        }
        let multifold = u32v(&mut pos)? as usize;
        if multifold > MAX_MULTIFOLD {
            return Err(HdcError::invalid_dataset(format!(
                "binary-kernel multifold {multifold} exceeds the format limit of {MAX_MULTIFOLD}"
            )));
        }
        let words_per_class = dim.div_ceil(WORD_BITS);
        // dim i32 mean values plus k·words_per_class u64 words, checked
        // against the remaining stream before anything is allocated.
        let total_bytes = k
            .checked_mul(words_per_class)
            .and_then(|w| w.checked_mul(8))
            .and_then(|w| w.checked_add(dim * 4))
            .filter(|&b| b <= bytes.len() - pos)
            .ok_or_else(|| {
                HdcError::invalid_dataset("binary-kernel stream too short for its class words")
            })?;
        let _ = total_bytes;
        let mut mean = Vec::with_capacity(dim);
        for _ in 0..dim {
            mean.push(i32::from_le_bytes(
                take(&mut pos, 4)?.try_into().expect("len checked"),
            ));
        }
        let tail_bits = dim % WORD_BITS;
        let tail_mask = if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        let mut classes = Vec::with_capacity(k);
        for c in 0..k {
            let mut hv = BipolarHv::ones(dim);
            for w in 0..words_per_class {
                let word = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len checked"));
                if w + 1 == words_per_class && word & !tail_mask != 0 {
                    return Err(HdcError::invalid_dataset(format!(
                        "binary-kernel class {c} has bits set past D={dim}"
                    )));
                }
                let base = w * WORD_BITS;
                let mut bits = word;
                while bits != 0 {
                    let d = base + bits.trailing_zeros() as usize;
                    hv.set(d, -1);
                    bits &= bits - 1;
                }
            }
            classes.push(hv);
        }
        if pos != bytes.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} trailing byte(s) after binary kernel (offset {pos})",
                bytes.len() - pos
            )));
        }
        Ok(Self {
            classes,
            mean,
            dim,
            multifold,
        })
    }
}

/// First-minimum over disagreement counts (strict `<`), returning the
/// winning index and the top1−top2 gap (`0` when `k == 1`).
fn top1_margin(disagree: &[i64]) -> (usize, i64) {
    let mut best = 0usize;
    let mut best_v = i64::MAX;
    let mut second_v = i64::MAX;
    for (i, &v) in disagree.iter().enumerate() {
        if v < best_v {
            second_v = best_v;
            best_v = v;
            best = i;
        } else if v < second_v {
            second_v = v;
        }
    }
    let margin = if second_v == i64::MAX {
        0
    } else {
        second_v - best_v
    };
    (best, margin)
}

/// First-maximum argmax over i64 scores (strict `>`), matching
/// [`ScoreLut::predict`] and `CompressedModel::predict`.
fn argmax_i64(scores: &[i64]) -> usize {
    let mut best = 0;
    let mut best_score = i64::MIN;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

impl ScoreKernel for BinaryKernel {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn scores(
        &self,
        encoder: &LookupEncoder,
        _compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<Vec<f64>> {
        let _span = obs::span("binary_kernel");
        obs::counter("kernel.binary.queries", 1);
        let h = encoder.encode(features)?;
        if h.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: h.dim(),
            });
        }
        let query = self.binarize_query(h.as_slice());
        Ok(self
            .scores_packed(&query)
            .iter()
            .map(|&s| s as f64)
            .collect())
    }

    fn predict(
        &self,
        encoder: &LookupEncoder,
        _compressed: &CompressedModel,
        features: &[f64],
    ) -> Result<usize> {
        let _span = obs::span("binary_kernel");
        obs::counter("kernel.binary.queries", 1);
        let h = encoder.encode(features)?;
        if h.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: h.dim(),
            });
        }
        Ok(self.predict_packed(&self.binarize_query(h.as_slice())))
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn size_bytes(&self) -> usize {
        self.classes.len() * self.dim.div_ceil(WORD_BITS) * std::mem::size_of::<u64>()
            + self.mean.len() * std::mem::size_of::<i32>()
    }

    fn describe(&self) -> String {
        format!(
            "{} classes x {} packed words + centering mean ({} B), multifold {}",
            self.classes.len(),
            self.dim.div_ceil(WORD_BITS),
            self.size_bytes(),
            if self.multifold < 2 {
                "off".to_owned()
            } else {
                self.multifold.to_string()
            }
        )
    }

    fn persist(&self) -> Result<Option<(u8, Vec<u8>)>> {
        Ok(Some((KERNEL_SECTION_BIN1, self.to_bytes()?)))
    }

    fn validate_against(&self, _layout: &ChunkLayout, compressed: &CompressedModel) -> Result<()> {
        if compressed.n_directions() != 0 {
            return Err(HdcError::invalid_dataset(
                "binary-kernel section present on a whitened (decorrelated) model",
            ));
        }
        if self.dim != compressed.dim() {
            return Err(HdcError::invalid_dataset(format!(
                "binary kernel has D={}, compressed model has D={}",
                self.dim,
                compressed.dim()
            )));
        }
        if self.classes.len() != compressed.n_classes() {
            return Err(HdcError::invalid_dataset(format!(
                "binary kernel has {} classes, compressed model has {}",
                self.classes.len(),
                compressed.n_classes()
            )));
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn ScoreKernel> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::hv::DenseHv;
    use hdc::levels::{LevelMemory, LevelScheme};
    use hdc::model::ClassModel;
    use hdc::quantize::{Quantization, Quantizer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::compress::CompressionConfig;
    use crate::lut::TableMode;

    /// A fitted encoder + compressed model pair over random classes (same
    /// harness as the score-LUT tests).
    fn setup(
        n: usize,
        r: usize,
        q: usize,
        dim: usize,
        k: usize,
        group: usize,
        seed: u64,
    ) -> (LookupEncoder, CompressedModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let layout = ChunkLayout::new(n, r, q).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap();
        let classes = (0..k)
            .map(|_| DenseHv::from_vec((0..dim).map(|_| rng.gen_range(-30..=30)).collect()))
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let config = CompressionConfig::new()
            .with_decorrelate(false)
            .with_max_classes_per_vector(group);
        let compressed = CompressedModel::compress(&model, &config).unwrap();
        (encoder, compressed)
    }

    fn random_features(n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn kernel_kind_parses_and_displays() {
        for (s, k) in [
            ("auto", KernelKind::Auto),
            ("dense", KernelKind::Dense),
            ("lut", KernelKind::Lut),
            ("binary", KernelKind::Binary),
        ] {
            assert_eq!(s.parse::<KernelKind>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("LUT".parse::<KernelKind>().is_err());
        assert!("".parse::<KernelKind>().is_err());
    }

    #[test]
    fn spec_builders_chain() {
        let spec = KernelSpec::binary().with_multifold(4).with_budget_bytes(99);
        assert_eq!(spec.kind, KernelKind::Binary);
        assert_eq!(spec.multifold, 4);
        assert_eq!(spec.budget_bytes, 99);
        assert_eq!(KernelSpec::default(), KernelSpec::dense());
    }

    #[test]
    fn factory_resolves_each_kind() {
        let (encoder, compressed) = setup(10, 5, 4, 128, 3, 12, 1);
        for (spec, name) in [
            (KernelSpec::dense(), "dense"),
            (KernelSpec::auto(), "lut"),
            (KernelSpec::lut(), "lut"),
            (KernelSpec::binary(), "binary"),
        ] {
            let kernel = build_kernel(&encoder, &compressed, &spec).unwrap();
            assert_eq!(kernel.name(), name, "spec {spec:?}");
            assert!(!kernel.describe().is_empty());
        }
        // Auto falls back to dense when the LUT cannot be built…
        let starved = KernelSpec::auto().with_budget_bytes(1);
        let kernel = build_kernel(&encoder, &compressed, &starved).unwrap();
        assert_eq!(kernel.name(), "dense");
        // …but an explicit request is a hard error.
        assert!(build_kernel(
            &encoder,
            &compressed,
            &KernelSpec::lut().with_budget_bytes(1)
        )
        .is_err());
    }

    #[test]
    fn explicit_kernels_reject_whitened_models() {
        let mut rng = StdRng::seed_from_u64(3);
        let levels = LevelMemory::generate(64, 4, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, 4).unwrap();
        let layout = ChunkLayout::new(10, 5, 4).unwrap();
        let encoder =
            LookupEncoder::new(layout, &levels, quantizer, TableMode::OnTheFly, 3).unwrap();
        let classes = (0..3)
            .map(|_| DenseHv::from_vec((0..64).map(|_| rng.gen_range(-20..=20)).collect()))
            .collect();
        let model = ClassModel::from_classes(classes).unwrap();
        let whitened = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert!(whitened.n_directions() > 0);
        assert!(BinaryKernel::build(&encoder, &whitened, 0).is_err());
        assert!(build_kernel(&encoder, &whitened, &KernelSpec::binary()).is_err());
        // Auto degrades to dense instead.
        let auto = build_kernel(&encoder, &whitened, &KernelSpec::auto()).unwrap();
        assert_eq!(auto.name(), "dense");
    }

    /// The packed-word scoring must equal a naive per-dimension reference
    /// of the centered sign model: `score_c = Σ_d sign(W_c[d] − μ[d]) ·
    /// sign(H[d] − proj·μ[d])` with `sign(0) = +1`, `μ` the rounded
    /// cross-class mean and `proj = (H·μ)/(μ·μ)`.
    #[test]
    fn binary_scores_match_naive_sign_reference() {
        for (n, r, q, dim, k, group) in [
            (10, 5, 4, 128, 3, 12),
            (13, 5, 4, 200, 7, 3), // remainder chunk + odd D (tail word)
        ] {
            let (encoder, compressed) = setup(n, r, q, dim, k, group, 40 + n as u64);
            let kernel = BinaryKernel::build(&encoder, &compressed, 0).unwrap();
            // Independent reconstruction of W and μ.
            let w = |c: usize, d: usize| -> i64 {
                let key = compressed.key(c);
                let combined = compressed.combined(compressed.group_of(c)).as_slice();
                (combined[d] as i64) * (key.value(d) as i64)
            };
            let mu: Vec<i64> = (0..dim)
                .map(|d| {
                    let sum: i64 = (0..k).map(|c| w(c, d)).sum();
                    (sum as f64 / k as f64).round() as i64
                })
                .collect();
            assert_eq!(
                kernel.mean(),
                mu.iter().map(|&m| m as i32).collect::<Vec<_>>().as_slice()
            );
            let mu_norm2: i64 = mu.iter().map(|&m| m * m).sum();
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..20 {
                let features = random_features(n, &mut rng);
                let h = encoder.encode(&features).unwrap();
                let proj = if mu_norm2 == 0 {
                    0.0
                } else {
                    let dot: i64 = h
                        .as_slice()
                        .iter()
                        .zip(&mu)
                        .map(|(&v, &m)| v as i64 * m)
                        .sum();
                    dot as f64 / mu_norm2 as f64
                };
                let fast = kernel.scores(&encoder, &compressed, &features).unwrap();
                for (c, &got) in fast.iter().enumerate() {
                    let naive: i64 = mu
                        .iter()
                        .enumerate()
                        .map(|(d, &m)| {
                            let ws = if w(c, d) - m < 0 { -1 } else { 1 };
                            let centered = h.as_slice()[d] as f64 - proj * m as f64;
                            let hs = if centered < 0.0 { -1 } else { 1 };
                            ws * hs
                        })
                        .sum();
                    assert_eq!(got, naive as f64, "class {c} diverged (n={n})");
                }
            }
        }
    }

    #[test]
    fn multifold_full_escalation_equals_multifold_off() {
        let (encoder, compressed) = setup(13, 5, 4, 256, 5, 3, 7);
        let off = BinaryKernel::build(&encoder, &compressed, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for folds in [2usize, 3, 4, 100] {
            let multi = BinaryKernel::build(&encoder, &compressed, folds).unwrap();
            assert_eq!(multi.multifold(), folds);
            for _ in 0..30 {
                let features = random_features(13, &mut rng);
                // Early-accepted answers may legitimately differ, but on
                // these easy random models they agree; the hard invariant
                // — forced full escalation equals multifold-off — is
                // pinned by predict_packed on an ambiguous (tied) query.
                let h = encoder.encode(&features).unwrap();
                let q = binarize(h.as_slice());
                let full = argmax_i64(&off.scores_packed(&q));
                let folded = multi.predict_packed(&q);
                // Escalation only ever *accepts the running argmax
                // early*; verify agreement against the exact rule by
                // recomputing the early-exit condition is out of scope
                // here — instead pin the contract that an accepted answer
                // equals the full answer whenever no exit fired or the
                // margins are clear. On this data they always match:
                assert_eq!(folded, full, "folds={folds}");
            }
        }
    }

    #[test]
    fn multifold_on_ambiguous_query_escalates_to_exact_answer() {
        // A query orthogonal-ish to every class keeps margins tiny, so no
        // fold is unambiguous and the escalation must run to the end —
        // where the answer is exact by construction.
        let (encoder, compressed) = setup(10, 5, 2, 192, 4, 12, 11);
        let off = BinaryKernel::build(&encoder, &compressed, 0).unwrap();
        let multi = BinaryKernel::build(&encoder, &compressed, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let query = BipolarHv::random(192, &mut rng);
        assert_eq!(
            multi.predict_packed(&query),
            argmax_i64(&off.scores_packed(&query))
        );
    }

    #[test]
    fn rebuild_from_model_is_bit_identical_to_stored_words() {
        let (encoder, compressed) = setup(13, 5, 4, 200, 5, 3, 17);
        let kernel = BinaryKernel::build(&encoder, &compressed, 2).unwrap();
        let bytes = kernel.to_bytes().unwrap();
        let loaded = BinaryKernel::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, kernel);
        // Rematerialization: building again from the (encoder, model) pair
        // reproduces the stored packed words exactly.
        let rebuilt = BinaryKernel::build(&encoder, &compressed, 2).unwrap();
        for c in 0..kernel.n_classes() {
            assert_eq!(rebuilt.class(c).words(), loaded.class(c).words());
        }
        loaded
            .validate_against(encoder.layout(), &compressed)
            .unwrap();
    }

    #[test]
    fn bin1_from_bytes_rejects_corruption() {
        let (encoder, compressed) = setup(10, 5, 2, 100, 3, 12, 19); // D=100: tail word
        let kernel = BinaryKernel::build(&encoder, &compressed, 4).unwrap();
        let bytes = kernel.to_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                BinaryKernel::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} parsed"
            );
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(BinaryKernel::from_bytes(&longer).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(BinaryKernel::from_bytes(&bad_magic).is_err());
        // A dim header lying about a huge kernel is rejected before any
        // allocation (dim at offset 4).
        let mut lying = bytes.clone();
        lying[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(BinaryKernel::from_bytes(&lying).is_err());
        // Tail bits past D must be zero. Class words sit after the
        // 16-byte header and the D·4-byte mean section.
        let words_per = 100usize.div_ceil(64);
        let first_class_last_word = 16 + 100 * 4 + (words_per - 1) * 8;
        let mut tainted = bytes.clone();
        tainted[first_class_last_word + 7] |= 0x80; // bit 63 of a D=100 tail word
        assert!(BinaryKernel::from_bytes(&tainted).is_err());
        // Byte flips never panic; survivors must stay usable.
        let (_, _) = (&encoder, &compressed);
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xFF;
            if let Ok(back) = BinaryKernel::from_bytes(&flipped) {
                let mut rng = StdRng::seed_from_u64(1);
                let q = BipolarHv::random(back.dim(), &mut rng);
                let _ = back.predict_packed(&q);
            }
        }
    }

    #[test]
    fn validate_against_catches_mismatches() {
        let (encoder, compressed) = setup(10, 5, 4, 64, 3, 12, 23);
        let kernel = BinaryKernel::build(&encoder, &compressed, 0).unwrap();
        kernel
            .validate_against(encoder.layout(), &compressed)
            .unwrap();
        let (_, other_k) = setup(10, 5, 4, 64, 5, 12, 23);
        assert!(kernel.validate_against(encoder.layout(), &other_k).is_err());
        let (_, other_dim) = setup(10, 5, 4, 128, 3, 12, 23);
        assert!(kernel
            .validate_against(encoder.layout(), &other_dim)
            .is_err());
    }

    #[test]
    fn kernel_section_round_trips_through_tags() {
        let (encoder, compressed) = setup(10, 5, 4, 128, 3, 12, 29);
        for spec in [KernelSpec::dense(), KernelSpec::lut(), KernelSpec::binary()] {
            let kernel = build_kernel(&encoder, &compressed, &spec).unwrap();
            let section = kernel.persist().unwrap();
            let back = match &section {
                None => kernel_from_section(KERNEL_SECTION_NONE, &[]).unwrap(),
                Some((tag, payload)) => kernel_from_section(*tag, payload).unwrap(),
            };
            assert_eq!(back.name(), kernel.name());
            assert_eq!(back.size_bytes(), kernel.size_bytes());
            back.validate_against(encoder.layout(), &compressed)
                .unwrap();
        }
        assert!(kernel_from_section(9, &[]).is_err());
    }

    #[test]
    fn dense_and_lut_kernels_agree_bit_for_bit_through_the_seam() {
        let (encoder, compressed) = setup(13, 5, 4, 200, 7, 3, 31);
        let dense = build_kernel(&encoder, &compressed, &KernelSpec::dense()).unwrap();
        let lut = build_kernel(&encoder, &compressed, &KernelSpec::lut()).unwrap();
        assert!(dense.is_exact() && lut.is_exact());
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let features = random_features(13, &mut rng);
            assert_eq!(
                dense.scores(&encoder, &compressed, &features).unwrap(),
                lut.scores(&encoder, &compressed, &features).unwrap()
            );
            assert_eq!(
                dense.predict(&encoder, &compressed, &features).unwrap(),
                lut.predict(&encoder, &compressed, &features).unwrap()
            );
        }
    }

    #[test]
    fn boxed_kernels_clone_and_downcast() {
        let (encoder, compressed) = setup(10, 5, 4, 128, 3, 12, 37);
        let kernel = build_kernel(&encoder, &compressed, &KernelSpec::lut()).unwrap();
        let cloned = kernel.clone();
        assert_eq!(cloned.name(), "lut");
        let lut = cloned
            .as_any()
            .downcast_ref::<LutKernel>()
            .expect("downcast");
        assert_eq!(lut.lut().n_classes(), 3);
        assert!(cloned.as_any().downcast_ref::<BinaryKernel>().is_none());
    }
}
