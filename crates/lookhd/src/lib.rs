//! # lookhd — lookup-based hyperdimensional learning (HPCA 2021)
//!
//! This crate implements the LookHD system from *Revisiting
//! HyperDimensional Learning for FPGA and Low-Power Architectures*:
//!
//! * [`chunking`] — feature splitting and concatenated-codebook addressing
//!   (§III-A, §III-C);
//! * [`lut`] — pre-stored encoded chunk hypervectors with materialized
//!   (BRAM-style) and on-the-fly storage modes (§III-C);
//! * [`encoder`] — the lookup encoder with random position-key aggregation
//!   (Eq. 3);
//! * [`counters`] / [`trainer`] — counter-based training that is bit-exact
//!   with encode-and-bundle but does no per-sample hypervector arithmetic
//!   (§III-D);
//! * [`compress`] — model compression into a single hypervector via random
//!   `P'` keys, with decorrelation and Eq. 5 signal/noise analysis (§IV);
//! * [`online`] — OnlineHD-style single-pass novelty-scaled training
//!   (the paper's ref \[13\]; an extension beyond the core LookHD pipeline);
//! * [`retrain`] — staged retraining on the compressed model, with both
//!   exact and paper-hardware update rules (§IV-D, §V-C);
//! * [`score_lut`] — the score-LUT inference kernel: per-chunk, per-class
//!   partial-score tables folding Eq. 5 scoring into the lookup table, so
//!   predict is `m` table reads and `m·k` adds (§III, §V applied to the
//!   scoring stage);
//! * [`score_kernel`] — the pluggable [`score_kernel::ScoreKernel`] seam
//!   the classifier scores through: dense, score-LUT, and bit-packed
//!   binary Hamming kernels selected by [`score_kernel::KernelSpec`];
//! * [`classifier`] — the end-to-end [`classifier::LookHdClassifier`];
//! * [`sweep`] — structured hyperparameter grid sweeps (the Fig. 12 /
//!   Table II experiment pattern, reusable on any dataset);
//! * [`analysis`] — margin / noise-to-signal diagnostics predicting when
//!   compression is lossless (the Fig. 15 crossover, without the sweep).
//!
//! The baseline HDC substrate (hypervectors, quantizers, permutation
//! encoder, class models) lives in the companion [`hdc`] crate; LookHD's
//! encoders and models plug into the same [`hdc::encoding::Encode`] and
//! [`hdc::model::ClassModel`] abstractions.
//!
//! ## Example
//!
//! ```
//! use hdc::{Classifier, FitClassifier};
//! use lookhd::classifier::{LookHdClassifier, LookHdConfig};
//!
//! let xs: Vec<Vec<f64>> = (0..30)
//!     .map(|i| vec![if i % 2 == 0 { 0.2 } else { 0.8 }; 10])
//!     .collect();
//! let ys: Vec<usize> = (0..30).map(|i| i % 2).collect();
//!
//! let config = LookHdConfig::new().with_dim(512).with_q(2);
//! let clf = LookHdClassifier::fit(&config, &xs, &ys)?;
//! assert_eq!(clf.predict(&[0.2; 10])?, 0);
//! # Ok::<(), hdc::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chunking;
pub mod classifier;
pub mod compress;
pub mod counters;
pub mod encoder;
pub mod lut;
pub mod online;
pub mod retrain;
pub mod score_kernel;
pub mod score_lut;
pub mod sweep;
pub mod trainer;

pub use classifier::{LookHdClassifier, LookHdConfig};
pub use compress::{CompressedModel, CompressionConfig};
pub use online::StreamingTrainer;
pub use score_kernel::{
    build_kernel, BinaryKernel, DenseKernel, KernelKind, KernelSpec, LutKernel, ScoreKernel,
};
pub use score_lut::ScoreLut;
