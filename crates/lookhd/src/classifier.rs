//! The end-to-end LookHD classifier: equalized quantization → lookup
//! encoding → counter training → model compression → compressed retraining.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hdc::encoding::{encode_batch_with, Encode};
use hdc::hv::DenseHv;
use hdc::levels::{LevelMemory, LevelScheme};
use hdc::metrics::accuracy;
use hdc::model::ClassModel;
use hdc::quantize::{Quantization, Quantizer};
use hdc::train::TrainReport;
use hdc::{Classifier, FitClassifier, HdcError, Result};
use lookhd_engine::{Engine, EngineConfig, EngineStats};

use crate::chunking::ChunkLayout;
use crate::compress::{CompressedModel, CompressionConfig};
use crate::encoder::LookupEncoder;
use crate::lut::TableMode;
use crate::retrain::{retrain_compressed, UpdateRule};
use crate::score_kernel::{
    build_kernel, kernel_from_section, KernelSpec, LutKernel, ScoreKernel, KERNEL_SECTION_NONE,
};
use crate::score_lut::ScoreLut;
use crate::trainer::CounterTrainer;

const CLASSIFIER_MAGIC: &[u8; 4] = b"LKS1";

/// Hyperparameters of the full LookHD pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LookHdConfig {
    /// Hypervector dimensionality `D` (paper default for efficiency: 2000).
    pub dim: usize,
    /// Quantization levels `q` (paper: 2 or 4 suffice with equalization).
    pub q: usize,
    /// Chunk size `r` (paper: 5 suffices for most applications).
    pub r: usize,
    /// Quantization rule (LookHD default: equalized).
    pub quantization: Quantization,
    /// Level hypervector scheme.
    pub level_scheme: LevelScheme,
    /// Lookup-table storage mode; `None` selects automatically by size.
    pub table_mode: Option<TableMode>,
    /// Compression settings (`P'` keys, decorrelation, grouping).
    pub compression: CompressionConfig,
    /// Maximum retraining epochs on the compressed model.
    pub retrain_epochs: usize,
    /// Fraction of the training set held out to validate compression and
    /// stop retraining (§II-B's "accuracy stabilized over the validation
    /// data, which is a part of the training dataset"). Set to 0.0 to
    /// disable validation-guided fitting.
    pub validation_fraction: f64,
    /// Shrink the compression group size below
    /// [`CompressionConfig::max_classes_per_vector`] when validation shows
    /// quality loss — the paper's exact-mode prescription ("each compressed
    /// hypervector needs to keep the information of less than 12 classes
    /// … to eliminate the quality loss", §VI-G).
    pub adaptive_grouping: bool,
    /// Retraining update arithmetic.
    pub update_rule: UpdateRule,
    /// Which scoring kernel to build at fit time (see
    /// [`crate::score_kernel`]). [`crate::score_kernel::KernelKind::Auto`]
    /// tries the score-LUT and falls back to the dense path when the model
    /// is ineligible (counted as `kernel.fallback`); explicit `lut` /
    /// `binary` requests make ineligibility a fit error instead.
    pub kernel: KernelSpec,
    /// RNG seed (level memory, position keys).
    pub seed: u64,
    /// Execution engine for the counter-training and batch-inference
    /// phases. The default is serial; any thread count produces
    /// bit-identical models and predictions.
    pub engine: EngineConfig,
}

impl LookHdConfig {
    /// Paper defaults: `D = 2000`, `q = 4` equalized levels, `r = 5`,
    /// compression with decorrelation, 10 retraining epochs.
    pub fn new() -> Self {
        Self {
            dim: 2000,
            q: 4,
            r: 5,
            quantization: Quantization::Equalized,
            level_scheme: LevelScheme::RandomFlips,
            table_mode: None,
            compression: CompressionConfig::new(),
            retrain_epochs: 10,
            validation_fraction: 0.15,
            adaptive_grouping: true,
            update_rule: UpdateRule::Exact,
            kernel: KernelSpec::dense(),
            seed: 0x10_0c_4d,
            engine: EngineConfig::new(),
        }
    }

    /// Sets the hypervector dimensionality `D`.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Sets the quantization level count `q`.
    pub fn with_q(mut self, q: usize) -> Self {
        self.q = q;
        self
    }

    /// Sets the chunk size `r`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Sets the quantization rule.
    pub fn with_quantization(mut self, quantization: Quantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// Sets the level hypervector scheme.
    pub fn with_level_scheme(mut self, level_scheme: LevelScheme) -> Self {
        self.level_scheme = level_scheme;
        self
    }

    /// Forces a lookup-table storage mode.
    pub fn with_table_mode(mut self, mode: TableMode) -> Self {
        self.table_mode = Some(mode);
        self
    }

    /// Sets the compression configuration.
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Sets the maximum retraining epochs.
    pub fn with_retrain_epochs(mut self, retrain_epochs: usize) -> Self {
        self.retrain_epochs = retrain_epochs;
        self
    }

    /// Sets the held-out validation fraction (0.0 disables).
    pub fn with_validation_fraction(mut self, fraction: f64) -> Self {
        self.validation_fraction = fraction;
        self
    }

    /// Enables or disables validation-guided group-size shrinking.
    pub fn with_adaptive_grouping(mut self, on: bool) -> Self {
        self.adaptive_grouping = on;
        self
    }

    /// Sets the retraining update rule.
    pub fn with_update_rule(mut self, update_rule: UpdateRule) -> Self {
        self.update_rule = update_rule;
        self
    }

    /// Selects the scoring kernel built at fit time (see
    /// [`crate::score_kernel::KernelSpec`]).
    pub fn with_kernel(mut self, kernel: KernelSpec) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution-engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the engine thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.engine = self.engine.with_threads(threads);
        self
    }
}

impl Default for LookHdConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A trained LookHD classifier.
///
/// # Examples
///
/// ```
/// use hdc::{Classifier, FitClassifier};
/// use lookhd::classifier::{LookHdClassifier, LookHdConfig};
///
/// // Two 10-feature classes: low values vs high values.
/// let xs: Vec<Vec<f64>> = (0..30)
///     .map(|i| vec![if i % 2 == 0 { 0.2 } else { 0.8 }; 10])
///     .collect();
/// let ys: Vec<usize> = (0..30).map(|i| i % 2).collect();
/// let config = LookHdConfig::new().with_dim(512).with_q(2).with_r(5);
/// let clf = LookHdClassifier::fit(&config, &xs, &ys)?;
/// assert_eq!(clf.predict(&[0.2; 10])?, 0);
/// assert_eq!(clf.predict(&[0.8; 10])?, 1);
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LookHdClassifier {
    encoder: LookupEncoder,
    /// The uncompressed trained model (kept for analysis and ablations).
    model: ClassModel,
    compressed: CompressedModel,
    /// The scoring kernel every predict/scores call dispatches through
    /// (see [`crate::score_kernel`]). Built after retraining — precomputed
    /// kernels bake in the final combined vectors — and persisted with the
    /// classifier when the kernel carries state.
    kernel: Box<dyn ScoreKernel>,
    report: TrainReport,
    /// The RNG seed levels/positions were generated from (for persistence).
    seed: u64,
    engine: Engine,
    fit_stats: EngineStats,
}

impl LookHdClassifier {
    fn fit_impl(config: &LookHdConfig, features: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        let _span = obs::span("fit");
        if !(0.0..0.9).contains(&config.validation_fraction) {
            return Err(HdcError::invalid_config(
                "validation_fraction",
                "must be in [0, 0.9)",
            ));
        }
        let encoder = Self::build_encoder(config, features)?;
        let n_classes = labels.iter().max().map_or(0, |m| m + 1);
        let engine = Engine::new(config.engine);
        // Counter-based training (encoding-free per sample), sharded over
        // the engine's threads with bit-identical counter merges.
        let (mut model, fit_stats) =
            CounterTrainer::fit_with(&engine, &encoder, features, labels, n_classes)?;
        model.refresh_norms();

        // Validation split for compression tuning and retraining stop
        // (§II-B: a part of the training dataset).
        let n_val = if config.validation_fraction > 0.0 {
            ((features.len() as f64) * config.validation_fraction).round() as usize
        } else {
            0
        };
        let use_validation = n_val >= 8 && features.len() - n_val >= 8;

        let needs_encodes =
            config.retrain_epochs > 0 || (use_validation && config.adaptive_grouping);
        let encoded = if needs_encodes {
            encode_batch_with(&engine, &encoder, features)?.0
        } else {
            Vec::new()
        };

        // Compress; optionally shrink the group size until validation shows
        // no quality loss vs the uncompressed model (exact mode, §VI-G).
        let mut compressed = CompressedModel::compress(&model, &config.compression)?;
        if use_validation && config.adaptive_grouping {
            let cut = features.len() - n_val;
            let (val_encoded, val_labels) = (&encoded[cut..], &labels[cut..]);
            let accuracy_of = |cm: &CompressedModel| -> Result<f64> {
                let mut correct = 0usize;
                for (h, &y) in val_encoded.iter().zip(val_labels) {
                    if cm.predict(h)? == y {
                        correct += 1;
                    }
                }
                Ok(correct as f64 / val_encoded.len() as f64)
            };
            let mut reference = 0usize;
            for (h, &y) in val_encoded.iter().zip(val_labels) {
                if model.predict(h)? == y {
                    reference += 1;
                }
            }
            let reference = reference as f64 / val_encoded.len() as f64;
            let tolerance = 0.015;
            let start = config.compression.max_classes_per_vector;
            let mut best = compressed;
            if accuracy_of(&best)? + tolerance < reference {
                for group in [8usize, 6, 4, 2, 1] {
                    if group >= start {
                        continue;
                    }
                    let candidate_cfg = config
                        .compression
                        .clone()
                        .with_max_classes_per_vector(group);
                    let candidate = CompressedModel::compress(&model, &candidate_cfg)?;
                    let acc = accuracy_of(&candidate)?;
                    best = candidate;
                    if acc + tolerance >= reference {
                        break;
                    }
                }
            }
            compressed = best;
        }

        // Retrain on the compressed model, rolling back to the best
        // validation snapshot when a validation split is available.
        let _retrain_span = obs::span("retrain");
        let report = if config.retrain_epochs > 0 {
            if use_validation {
                let cut = features.len() - n_val;
                crate::retrain::retrain_compressed_with_validation(
                    &mut compressed,
                    &encoded[..cut],
                    &labels[..cut],
                    &encoded[cut..],
                    &labels[cut..],
                    config.retrain_epochs,
                    3,
                    config.update_rule,
                )?
            } else {
                retrain_compressed(
                    &mut compressed,
                    &encoded,
                    labels,
                    config.retrain_epochs,
                    config.update_rule,
                )?
            }
        } else {
            TrainReport::default()
        };
        drop(_retrain_span);

        // Build the scoring kernel from the *final* compressed model —
        // retraining mutates the combined vectors precomputed kernels
        // bake in. Auto resolution (with its dense fallback) lives in
        // `build_kernel`; explicit ineligible requests fail the fit.
        let kernel = build_kernel(&encoder, &compressed, &config.kernel)?;
        Ok(Self {
            encoder,
            model,
            compressed,
            kernel,
            report,
            seed: config.seed,
            engine,
            fit_stats,
        })
    }

    /// Assembles a classifier from already-built parts — the streaming
    /// trainer's materialization path ([`crate::online::StreamingTrainer`]),
    /// which finalizes live counters into the same model/compression/kernel
    /// pipeline as [`Self::fit`] without holding training samples.
    pub(crate) fn from_parts(
        encoder: LookupEncoder,
        model: ClassModel,
        compressed: CompressedModel,
        kernel: Box<dyn ScoreKernel>,
        seed: u64,
    ) -> Self {
        Self {
            encoder,
            model,
            compressed,
            kernel,
            report: TrainReport::default(),
            seed,
            engine: Engine::serial(),
            fit_stats: EngineStats::default(),
        }
    }

    /// The RNG seed the encoder's level/position tables were generated
    /// from (persisted with the classifier).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the fitted lookup encoder for a training set (quantizer fit
    /// on all training feature values, as in the paper).
    fn build_encoder(config: &LookHdConfig, features: &[Vec<f64>]) -> Result<LookupEncoder> {
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        let n_features = features[0].len();
        if features.iter().any(|f| f.len() != n_features) {
            return Err(HdcError::invalid_dataset("ragged feature matrix"));
        }
        let layout = ChunkLayout::new(n_features, config.r.min(n_features), config.q)?;
        let all_values: Vec<f64> = features.iter().flatten().copied().collect();
        let quantizer = Quantizer::fit(config.quantization, &all_values, config.q)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let levels = LevelMemory::generate(config.dim, config.q, config.level_scheme, &mut rng)?;
        match config.table_mode {
            Some(mode) => LookupEncoder::new(layout, &levels, quantizer, mode, config.seed),
            None => {
                // Auto: materialize up to 64 MiB, otherwise on-the-fly.
                let probe = crate::lut::ChunkLut::auto(layout, &levels, 64 << 20)?;
                LookupEncoder::new(layout, &levels, quantizer, probe.mode(), config.seed)
            }
        }
    }

    /// Predicts using the *uncompressed* model (ablation / exact reference).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn predict_uncompressed(&self, features: &[f64]) -> Result<usize> {
        let h = self.encoder.encode(features)?;
        self.model.predict(&h)
    }

    /// Predicts a batch with the compressed model, sharded across the
    /// engine's threads, and returns the engine statistics alongside the
    /// predictions. Results are identical for every thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error.
    pub fn predict_batch_stats(&self, features: &[Vec<f64>]) -> Result<(Vec<usize>, EngineStats)> {
        self.batch_with(features, |f| self.predict(f))
    }

    /// Predicts a batch with the *uncompressed* model, sharded across the
    /// engine's threads.
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error.
    pub fn predict_batch_uncompressed(&self, features: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self
            .batch_with(features, |f| self.predict_uncompressed(f))?
            .0)
    }

    /// Accuracy over a labelled test set using the *uncompressed* model
    /// (ablation / exact reference for [`Classifier::evaluate`]).
    ///
    /// # Errors
    ///
    /// Propagates prediction/metric errors.
    pub fn evaluate_uncompressed(&self, features: &[Vec<f64>], labels: &[usize]) -> Result<f64> {
        accuracy(&self.predict_batch_uncompressed(features)?, labels)
    }

    /// Runs `per_query` over `features` partitioned into engine shards,
    /// concatenating shard results in shard order.
    fn batch_with<F>(
        &self,
        features: &[Vec<f64>],
        per_query: F,
    ) -> Result<(Vec<usize>, EngineStats)>
    where
        F: Fn(&[f64]) -> Result<usize> + Sync,
    {
        let (preds, stats) = self.engine.map_reduce(
            features.len(),
            |range| {
                features[range]
                    .iter()
                    .map(|f| per_query(f))
                    .collect::<Result<Vec<usize>>>()
            },
            |shards| {
                let mut out = Vec::with_capacity(features.len());
                for shard in shards {
                    out.extend(shard?);
                }
                Ok::<Vec<usize>, HdcError>(out)
            },
        );
        Ok((preds?, stats))
    }

    /// Engine statistics of the counter-training phase.
    pub fn fit_stats(&self) -> &EngineStats {
        &self.fit_stats
    }

    /// The execution engine batch inference runs on.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Replaces the execution engine (e.g. after [`LookHdClassifier::from_bytes`],
    /// which restores a serial engine).
    pub fn set_engine(&mut self, config: EngineConfig) {
        self.engine = Engine::new(config);
    }

    /// The lookup encoder.
    pub fn encoder(&self) -> &LookupEncoder {
        &self.encoder
    }

    /// The uncompressed trained model.
    pub fn model(&self) -> &ClassModel {
        &self.model
    }

    /// The compressed model used for inference.
    pub fn compressed(&self) -> &CompressedModel {
        &self.compressed
    }

    /// The active scoring kernel.
    pub fn kernel(&self) -> &dyn ScoreKernel {
        self.kernel.as_ref()
    }

    /// Rebuilds the scoring kernel in place from a new [`KernelSpec`]
    /// (e.g. to switch a loaded artifact onto the binary kernel without
    /// retraining). The encoder and models are untouched.
    ///
    /// # Errors
    ///
    /// Propagates kernel-build errors (the previous kernel is kept).
    pub fn set_kernel(&mut self, spec: &KernelSpec) -> Result<()> {
        self.kernel = build_kernel(&self.encoder, &self.compressed, spec)?;
        Ok(())
    }

    /// The score-LUT inference kernel, when the active kernel is one (see
    /// [`LookHdConfig::with_kernel`]).
    pub fn score_lut(&self) -> Option<&ScoreLut> {
        self.kernel
            .as_any()
            .downcast_ref::<LutKernel>()
            .map(LutKernel::lut)
    }

    /// Per-class scores for a raw feature vector on the deployment path,
    /// through the active [`ScoreKernel`]. Exact kernels (dense, lut)
    /// return bit-identical values; the binary kernel returns its Hamming
    /// agreement scores.
    ///
    /// When metrics are enabled, each call ticks `kernel.<name>.scores`.
    /// The build-time counter `kernel.fallback` is different: it ticks
    /// once per fit/load whose requested kernel fell back to dense under
    /// Auto resolution.
    ///
    /// # Errors
    ///
    /// Propagates encoding/arity errors.
    pub fn scores(&self, features: &[f64]) -> Result<Vec<f64>> {
        match self.kernel.name() {
            "lut" => obs::counter("kernel.lut.scores", 1),
            "binary" => obs::counter("kernel.binary.scores", 1),
            _ => obs::counter("kernel.dense.scores", 1),
        }
        self.kernel
            .scores(&self.encoder, &self.compressed, features)
    }

    /// The compressed-retraining report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Encodes a query without classifying it.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode(&self, features: &[f64]) -> Result<DenseHv> {
        self.encoder.encode(features)
    }

    /// Serializes the trained classifier (`LKS1` format): hyperparameters,
    /// the fitted quantizer boundaries, the uncompressed model, and the
    /// compressed model. Level and position hypervectors are *not* stored;
    /// they regenerate deterministically from the seed, which keeps the
    /// artifact close to the paper's deployable model size.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when a dimension, count, or
    /// section length exceeds the format's u32 headers or the
    /// [`crate::compress::MAX_SERIAL_DIM`] /
    /// [`crate::compress::MAX_SERIAL_CLASSES`] caps, instead of silently
    /// truncating, and propagates embedded-model serialization errors.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        use crate::compress::{check_regen, serial_u32, MAX_SERIAL_DIM, MAX_SERIAL_FEATURES};
        let mut out = Vec::new();
        out.extend_from_slice(CLASSIFIER_MAGIC);
        let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let layout = self.encoder.layout();
        let dim = self.encoder.lut().levels().dim();
        check_regen("q", layout.q(), dim)?;
        check_regen("n_chunks", layout.n_chunks(), dim)?;
        w32(
            &mut out,
            serial_u32("dim", self.encoder.lut().levels().dim(), MAX_SERIAL_DIM)?,
        );
        w32(&mut out, serial_u32("q", layout.q(), MAX_SERIAL_DIM)?);
        w32(&mut out, serial_u32("r", layout.r(), MAX_SERIAL_FEATURES)?);
        w32(
            &mut out,
            serial_u32("n_features", layout.n_features(), MAX_SERIAL_FEATURES)?,
        );
        out.push(match self.encoder.quantizer().kind() {
            Quantization::Linear => 0,
            Quantization::Equalized => 1,
        });
        out.push(match self.encoder.lut().levels().scheme() {
            LevelScheme::RandomFlips => 0,
            LevelScheme::DisjointFlips => 1,
        });
        out.push(match self.encoder.lut().mode() {
            crate::lut::TableMode::Materialized => 0,
            crate::lut::TableMode::OnTheFly => 1,
        });
        out.extend_from_slice(&self.seed.to_le_bytes());
        let boundaries = self.encoder.quantizer().boundaries();
        w32(
            &mut out,
            serial_u32("n_boundaries", boundaries.len(), u32::MAX as usize)?,
        );
        for &b in boundaries {
            out.extend_from_slice(&b.to_le_bytes());
        }
        let model_bytes = hdc::persist::model_to_bytes(&self.model)
            .map_err(|e| HdcError::invalid_config("model", format!("embedded model: {e}")))?;
        w32(
            &mut out,
            serial_u32("model section length", model_bytes.len(), u32::MAX as usize)?,
        );
        out.extend_from_slice(&model_bytes);
        let compressed_bytes = self.compressed.to_bytes()?;
        w32(
            &mut out,
            serial_u32(
                "compressed section length",
                compressed_bytes.len(),
                u32::MAX as usize,
            )?,
        );
        out.extend_from_slice(&compressed_bytes);
        // The kernel-section tag byte is mandatory (0 = none/dense,
        // 1 = SLT1, 2 = BIN1) so every truncation of the stream stays
        // detectable.
        match self.kernel.persist()? {
            None => out.push(KERNEL_SECTION_NONE),
            Some((tag, payload)) => {
                out.push(tag);
                w32(
                    &mut out,
                    serial_u32("kernel section length", payload.len(), u32::MAX as usize)?,
                );
                out.extend_from_slice(&payload);
            }
        }
        Ok(out)
    }

    /// Deserializes a classifier written by [`LookHdClassifier::to_bytes`],
    /// regenerating level and position hypervectors from the stored seed.
    ///
    /// Length headers are validated against the remaining stream length
    /// and the [`crate::compress::MAX_SERIAL_DIM`] cap before any
    /// allocation, so corrupt or hostile headers produce an error rather
    /// than a multi-GB allocation; trailing bytes after the compressed
    /// section are rejected with the offending byte offset.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for a malformed, truncated, or
    /// over-long stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let bad = |m: &str| HdcError::invalid_dataset(m.to_owned());
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(HdcError::invalid_dataset("truncated classifier stream"));
            }
            let out = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(out)
        };
        if take(&mut pos, 4)? != CLASSIFIER_MAGIC {
            return Err(bad("bad magic: not an LKS1 classifier"));
        }
        let u32v = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("len checked"),
            ))
        };
        let dim = u32v(&mut pos)? as usize;
        if dim > crate::compress::MAX_SERIAL_DIM {
            return Err(HdcError::invalid_dataset(format!(
                "dim {dim} exceeds the format limit of {}",
                crate::compress::MAX_SERIAL_DIM
            )));
        }
        let q = u32v(&mut pos)? as usize;
        let r = u32v(&mut pos)? as usize;
        let n_features = u32v(&mut pos)? as usize;
        if q > crate::compress::MAX_SERIAL_DIM {
            return Err(HdcError::invalid_dataset(format!(
                "q {q} exceeds the format limit of {}",
                crate::compress::MAX_SERIAL_DIM
            )));
        }
        if r > crate::compress::MAX_SERIAL_FEATURES
            || n_features > crate::compress::MAX_SERIAL_FEATURES
        {
            return Err(HdcError::invalid_dataset(format!(
                "r {r} / n_features {n_features} exceed the format limit of {}",
                crate::compress::MAX_SERIAL_FEATURES
            )));
        }
        // Every header field can be individually in-cap while the seeded
        // regeneration they jointly request (q level hypervectors, one
        // position key per chunk, each of `dim` elements) is still huge;
        // bound the products before any of it is built.
        crate::compress::check_regen("q", q, dim)?;
        crate::compress::check_regen("n_chunks", n_features.div_ceil(r.max(1)), dim)?;
        let quant_kind = match take(&mut pos, 1)?[0] {
            0 => Quantization::Linear,
            1 => Quantization::Equalized,
            _ => return Err(bad("unknown quantization tag")),
        };
        let scheme = match take(&mut pos, 1)?[0] {
            0 => LevelScheme::RandomFlips,
            1 => LevelScheme::DisjointFlips,
            _ => return Err(bad("unknown level-scheme tag")),
        };
        let table_mode = match take(&mut pos, 1)?[0] {
            0 => crate::lut::TableMode::Materialized,
            1 => crate::lut::TableMode::OnTheFly,
            _ => return Err(bad("unknown table-mode tag")),
        };
        let seed = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len checked"));
        let n_boundaries = u32v(&mut pos)? as usize;
        // Each boundary is 8 bytes, so a header claiming more boundaries
        // than the remaining stream could hold is corrupt; checking first
        // keeps the preallocation bounded by the artifact's actual size.
        if n_boundaries > (bytes.len() - pos) / 8 {
            return Err(HdcError::invalid_dataset(format!(
                "boundary count {n_boundaries} exceeds remaining stream length"
            )));
        }
        let mut boundaries = Vec::with_capacity(n_boundaries);
        for _ in 0..n_boundaries {
            boundaries.push(f64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("len checked"),
            ));
        }
        let model_len = u32v(&mut pos)? as usize;
        let model = hdc::persist::model_from_bytes(take(&mut pos, model_len)?)
            .map_err(|e| bad(&format!("embedded model: {e}")))?;
        let compressed_len = u32v(&mut pos)? as usize;
        let compressed = CompressedModel::from_bytes(take(&mut pos, compressed_len)?)?;
        let kernel = match take(&mut pos, 1)?[0] {
            KERNEL_SECTION_NONE => kernel_from_section(KERNEL_SECTION_NONE, &[])?,
            tag => {
                let kernel_len = u32v(&mut pos)? as usize;
                kernel_from_section(tag, take(&mut pos, kernel_len)?)?
            }
        };
        if pos != bytes.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} trailing byte(s) after classifier (offset {pos})",
                bytes.len() - pos
            )));
        }
        // Rebuild the encoder deterministically.
        let quantizer = Quantizer::from_boundaries(quant_kind, boundaries)?;
        if quantizer.levels() != q {
            return Err(bad("quantizer boundaries disagree with q"));
        }
        let layout = ChunkLayout::new(n_features, r, q)?;
        // The kernel arrived as an independent section; make sure its
        // geometry agrees with the layout and model it will serve.
        kernel.validate_against(&layout, &compressed)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, scheme, &mut rng)?;
        let encoder = LookupEncoder::new(layout, &levels, quantizer, table_mode, seed)?;
        Ok(Self {
            encoder,
            model,
            compressed,
            kernel,
            report: TrainReport::default(),
            seed,
            // The engine is an execution detail, not part of the model;
            // deserialized classifiers start serial (see `set_engine`).
            engine: Engine::serial(),
            fit_stats: EngineStats::default(),
        })
    }
}

impl Classifier for LookHdClassifier {
    fn num_classes(&self) -> usize {
        self.model.n_classes()
    }

    /// Predicts the class of a raw feature vector through the active
    /// [`ScoreKernel`] (the deployment path). With the score-LUT kernel
    /// this is address extraction + table gathers; with the binary kernel
    /// it is XOR+popcount over packed words (multifold early exit when
    /// enabled); the dense kernel scores the compressed model directly.
    fn predict(&self, features: &[f64]) -> Result<usize> {
        let _span = obs::span("predict");
        self.kernel
            .predict(&self.encoder, &self.compressed, features)
    }

    fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<usize>> {
        Ok(self.predict_batch_stats(features)?.0)
    }

    /// Per-class scores via the inherent [`LookHdClassifier::scores`]
    /// (the active kernel; dense and lut are bit-identical).
    fn class_scores(&self, features: &[f64]) -> Result<Option<Vec<f64>>> {
        self.scores(features).map(Some)
    }

    /// The active scoring kernel's name, for telemetry surfaces.
    fn kernel_name(&self) -> Option<&'static str> {
        Some(self.kernel.name())
    }
}

impl FitClassifier for LookHdClassifier {
    type Config = LookHdConfig;

    /// Trains the full pipeline on `features`/`labels`.
    ///
    /// The counter-training and batch-encoding phases are sharded across
    /// the configured engine's threads; compression and retraining are
    /// inherently sequential and run serially. The trained model is
    /// bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for empty/ragged data and
    /// [`HdcError::InvalidConfig`] for invalid hyperparameters.
    fn fit(config: &LookHdConfig, features: &[Vec<f64>], labels: &[usize]) -> Result<Self> {
        Self::fit_impl(config, features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// `k` Gaussian-ish blobs over `n` features with a monotone non-linear
    /// marginal (to give equalized quantization something to win on).
    fn blobs(
        n: usize,
        k: usize,
        per_class: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..per_class {
                let row: Vec<f64> = p
                    .iter()
                    .map(|&v| {
                        let x: f64 = v + rng.gen_range(-noise..noise);
                        x * x // skew the marginal
                    })
                    .collect();
                xs.push(row);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn fit_predict_separable_three_class() {
        let (xs, ys) = blobs(20, 3, 25, 0.05, 1);
        let config = LookHdConfig::new().with_dim(1024).with_retrain_epochs(5);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        let acc = clf.evaluate(&xs, &ys).unwrap();
        assert!(acc > 0.9, "train accuracy too low: {acc}");
    }

    #[test]
    fn compressed_and_uncompressed_agree_on_easy_data() {
        let (xs, ys) = blobs(20, 3, 20, 0.03, 2);
        let config = LookHdConfig::new().with_dim(2048).with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        let mut agree = 0;
        for x in &xs {
            if clf.predict(x).unwrap() == clf.predict_uncompressed(x).unwrap() {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / xs.len() as f64 > 0.95,
            "compression changed too many predictions: {agree}/{}",
            xs.len()
        );
    }

    #[test]
    fn generalizes_to_held_out_samples() {
        let (xs, ys) = blobs(30, 4, 30, 0.05, 3);
        let (txs, tys) = blobs(30, 4, 8, 0.05, 3); // same protos (same seed)
        let config = LookHdConfig::new().with_dim(1024).with_retrain_epochs(5);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        let acc = clf.evaluate(&txs, &tys).unwrap();
        assert!(acc > 0.85, "test accuracy too low: {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blobs(15, 2, 10, 0.05, 4);
        let config = LookHdConfig::new().with_dim(512).with_seed(11);
        let a = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        let b = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert_eq!(a.predict_batch(&xs).unwrap(), b.predict_batch(&xs).unwrap());
    }

    #[test]
    fn r_larger_than_n_is_clamped() {
        let (xs, ys) = blobs(3, 2, 10, 0.05, 5);
        let config = LookHdConfig::new().with_dim(256).with_r(10).with_q(2);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert_eq!(clf.encoder().layout().r(), 3);
    }

    #[test]
    fn rejects_bad_data() {
        let config = LookHdConfig::new().with_dim(128);
        assert!(LookHdClassifier::fit(&config, &[], &[]).is_err());
        let ragged = vec![vec![0.0; 5], vec![0.0; 4]];
        assert!(LookHdClassifier::fit(&config, &ragged, &[0, 1]).is_err());
    }

    #[test]
    fn config_builder_round_trips() {
        let c = LookHdConfig::new()
            .with_dim(4000)
            .with_q(8)
            .with_r(3)
            .with_quantization(Quantization::Linear)
            .with_level_scheme(LevelScheme::DisjointFlips)
            .with_table_mode(TableMode::OnTheFly)
            .with_compression(CompressionConfig::new().with_seed(5))
            .with_retrain_epochs(2)
            .with_update_rule(UpdateRule::PaperShift)
            .with_kernel(KernelSpec::binary().with_multifold(4))
            .with_seed(77)
            .with_engine(EngineConfig::new().with_shard_size(64))
            .with_threads(4);
        assert_eq!(c.dim, 4000);
        assert_eq!(c.q, 8);
        assert_eq!(c.r, 3);
        assert_eq!(c.quantization, Quantization::Linear);
        assert_eq!(c.table_mode, Some(TableMode::OnTheFly));
        assert_eq!(c.retrain_epochs, 2);
        assert_eq!(c.update_rule, UpdateRule::PaperShift);
        assert_eq!(c.kernel, KernelSpec::binary().with_multifold(4));
        assert_eq!(c.seed, 77);
        assert_eq!(c.engine.threads, 4);
        assert_eq!(c.engine.shard_size, 64);
        assert_eq!(LookHdConfig::default(), LookHdConfig::new());
    }

    #[test]
    fn threaded_fit_and_inference_match_serial() {
        let (xs, ys) = blobs(12, 3, 17, 0.08, 9);
        let base = LookHdConfig::new().with_dim(512).with_retrain_epochs(3);
        let serial = LookHdClassifier::fit(&base, &xs, &ys).unwrap();
        let serial_preds = serial.predict_batch(&xs).unwrap();
        for threads in [2usize, 3, 8] {
            let config = base
                .clone()
                .with_engine(EngineConfig::new().with_threads(threads).with_shard_size(7));
            let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
            assert_eq!(
                clf.predict_batch(&xs).unwrap(),
                serial_preds,
                "{threads} threads diverged from serial"
            );
            assert_eq!(
                clf.predict_batch_uncompressed(&xs).unwrap(),
                serial.predict_batch_uncompressed(&xs).unwrap(),
                "{threads}-thread uncompressed path diverged"
            );
            assert_eq!(clf.model().classes(), serial.model().classes());
        }
    }

    #[test]
    fn score_lut_predictions_match_dense_path() {
        let (xs, ys) = blobs(13, 4, 20, 0.08, 21);
        let base = LookHdConfig::new()
            .with_dim(512)
            .with_retrain_epochs(3)
            .with_compression(CompressionConfig::new().with_decorrelate(false));
        let dense = LookHdClassifier::fit(&base, &xs, &ys).unwrap();
        let fast =
            LookHdClassifier::fit(&base.clone().with_kernel(KernelSpec::auto()), &xs, &ys).unwrap();
        assert!(dense.score_lut().is_none());
        assert_eq!(dense.kernel().name(), "dense");
        assert_eq!(fast.kernel().name(), "lut");
        assert_eq!(Classifier::kernel_name(&fast), Some("lut"));
        let lut = fast.score_lut().expect("kernel should build");
        assert_eq!(lut.n_classes(), 4);
        assert_eq!(
            fast.predict_batch(&xs).unwrap(),
            dense.predict_batch(&xs).unwrap()
        );
        for x in &xs {
            assert_eq!(fast.scores(x).unwrap(), dense.scores(x).unwrap());
        }
        // Sharded batches dispatch through the kernel per query, so any
        // thread count stays bit-identical too.
        let mut threaded = fast.clone();
        threaded.set_engine(EngineConfig::new().with_threads(3).with_shard_size(7));
        assert_eq!(
            threaded.predict_batch(&xs).unwrap(),
            dense.predict_batch(&xs).unwrap()
        );
    }

    #[test]
    fn score_lut_falls_back_when_ineligible() {
        let (xs, ys) = blobs(10, 3, 15, 0.08, 22);
        // Default compression decorrelates — whitening disqualifies the
        // integer kernel, so Auto resolution falls back silently.
        let whitened = LookHdConfig::new()
            .with_dim(256)
            .with_retrain_epochs(0)
            .with_kernel(KernelSpec::auto());
        let clf = LookHdClassifier::fit(&whitened, &xs, &ys).unwrap();
        assert!(clf.score_lut().is_none());
        assert_eq!(clf.kernel().name(), "dense");
        // A one-byte budget can never hold the tables.
        let starved = LookHdConfig::new()
            .with_dim(256)
            .with_retrain_epochs(0)
            .with_compression(CompressionConfig::new().with_decorrelate(false))
            .with_kernel(KernelSpec::auto().with_budget_bytes(1));
        let clf = LookHdClassifier::fit(&starved, &xs, &ys).unwrap();
        assert!(clf.score_lut().is_none());
        assert!(clf.predict(&xs[0]).is_ok());
        // Explicit (non-Auto) requests fail the fit instead.
        assert!(
            LookHdClassifier::fit(&whitened.clone().with_kernel(KernelSpec::lut()), &xs, &ys)
                .is_err()
        );
        assert!(LookHdClassifier::fit(
            &whitened.clone().with_kernel(KernelSpec::binary()),
            &xs,
            &ys
        )
        .is_err());
    }

    #[test]
    fn score_lut_survives_persistence() {
        let (xs, ys) = blobs(11, 3, 18, 0.08, 23);
        let config = LookHdConfig::new()
            .with_dim(256)
            .with_retrain_epochs(2)
            .with_compression(CompressionConfig::new().with_decorrelate(false))
            .with_kernel(KernelSpec::auto());
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert!(clf.score_lut().is_some());
        let bytes = clf.to_bytes().unwrap();
        let back = LookHdClassifier::from_bytes(&bytes).unwrap();
        assert_eq!(back.score_lut(), clf.score_lut());
        for x in &xs {
            assert_eq!(back.predict(x).unwrap(), clf.predict(x).unwrap());
            assert_eq!(back.scores(x).unwrap(), clf.scores(x).unwrap());
        }
        // A kernel-less artifact round-trips to a kernel-less classifier.
        let dense =
            LookHdClassifier::fit(&config.clone().with_kernel(KernelSpec::dense()), &xs, &ys)
                .unwrap();
        let back = LookHdClassifier::from_bytes(&dense.to_bytes().unwrap()).unwrap();
        assert!(back.score_lut().is_none());
    }

    #[test]
    fn binary_kernel_survives_persistence_and_set_kernel_switches() {
        let (xs, ys) = blobs(11, 3, 18, 0.08, 24);
        let config = LookHdConfig::new()
            .with_dim(256)
            .with_retrain_epochs(2)
            .with_compression(CompressionConfig::new().with_decorrelate(false))
            .with_kernel(KernelSpec::binary().with_multifold(2));
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert_eq!(clf.kernel().name(), "binary");
        assert!(!clf.kernel().is_exact());
        assert!(clf.score_lut().is_none());
        let bytes = clf.to_bytes().unwrap();
        let back = LookHdClassifier::from_bytes(&bytes).unwrap();
        assert_eq!(back.kernel().name(), "binary");
        for x in &xs {
            assert_eq!(back.predict(x).unwrap(), clf.predict(x).unwrap());
            assert_eq!(back.scores(x).unwrap(), clf.scores(x).unwrap());
        }
        // `set_kernel` swaps a loaded artifact onto a different kernel
        // without retraining; the dense path is the exact reference.
        let mut switched = back.clone();
        switched.set_kernel(&KernelSpec::dense()).unwrap();
        assert_eq!(switched.kernel().name(), "dense");
        switched.set_kernel(&KernelSpec::lut()).unwrap();
        assert_eq!(switched.kernel().name(), "lut");
        let dense_ref = {
            let mut c = back.clone();
            c.set_kernel(&KernelSpec::dense()).unwrap();
            c
        };
        assert_eq!(
            switched.predict_batch(&xs).unwrap(),
            dense_ref.predict_batch(&xs).unwrap()
        );
    }

    #[test]
    fn retraining_report_is_populated() {
        let (xs, ys) = blobs(20, 3, 15, 0.1, 6);
        let config = LookHdConfig::new().with_dim(512).with_retrain_epochs(4);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert!(clf.report().epochs_run() >= 1);
    }

    #[test]
    fn model_size_shrinks_with_compression() {
        let (xs, ys) = blobs(20, 6, 10, 0.05, 7);
        let config = LookHdConfig::new().with_dim(512).with_retrain_epochs(0);
        let clf = LookHdClassifier::fit(&config, &xs, &ys).unwrap();
        assert!(clf.compressed().size_bytes() < clf.model().size_bytes());
        // With adaptive grouping off, 6 classes compress into one vector.
        let fixed =
            LookHdClassifier::fit(&config.clone().with_adaptive_grouping(false), &xs, &ys).unwrap();
        assert_eq!(
            fixed.model().size_bytes() / fixed.compressed().size_bytes(),
            6
        );
    }
}
