//! Single-pass online training (the OnlineHD regime, the paper's ref \[13\]).
//!
//! Plain bundling weights every sample equally, so a single pass produces a
//! blurry model that needs retraining. Online training instead scales each
//! sample's contribution by how *novel* it is to the current model:
//!
//! ```text
//! δ = cos(H, C_best)
//! C_label    += lr · (1 − δ_label) · H
//! C_mispred  -= lr · (1 − δ_mispred) · H      (only when mispredicted)
//! ```
//!
//! One pass then approaches the quality of bundle-plus-retrain — the
//! "single-pass or few-pass training" capability §VI-F attributes to HDC
//! on devices that cannot afford epochs. The trained model drops into the
//! same [`ClassModel`] / compression pipeline as the counter trainer.

use hdc::encoding::Encode;
use hdc::hv::DenseHv;
use hdc::model::ClassModel;
use hdc::{HdcError, Result};

use crate::classifier::{LookHdClassifier, LookHdConfig};
use crate::compress::CompressedModel;
use crate::counters::ChunkCounters;
use crate::encoder::LookupEncoder;
use crate::score_kernel::{build_kernel, BinaryKernel, KernelSpec};
use crate::trainer::CounterTrainer;

/// Hyperparameters of the online trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Base learning rate (1.0 reproduces the OnlineHD update).
    pub learning_rate: f64,
    /// Fixed-point scale used when rounding the float model to integers.
    pub output_scale: f64,
}

impl OnlineConfig {
    /// OnlineHD defaults: `lr = 1.0`, output scale `64` (keeps integer
    /// resolution well above the update granularity).
    pub fn new() -> Self {
        Self {
            learning_rate: 1.0,
            output_scale: 64.0,
        }
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the fixed-point output scale.
    pub fn with_output_scale(mut self, scale: f64) -> Self {
        self.output_scale = scale;
        self
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental single-pass trainer over any [`Encode`] implementation.
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    classes: Vec<Vec<f64>>,
    norms: Vec<f64>,
    config: OnlineConfig,
    seen: usize,
}

impl OnlineTrainer {
    /// Creates a zeroed trainer for `n_classes` classes at dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] on zero classes/dimension or a
    /// non-positive learning rate or scale.
    pub fn new(n_classes: usize, dim: usize, config: OnlineConfig) -> Result<Self> {
        if n_classes == 0 {
            return Err(HdcError::invalid_config("k", "need at least one class"));
        }
        if dim == 0 {
            return Err(HdcError::invalid_config(
                "dim",
                "dimension must be positive",
            ));
        }
        if config.learning_rate <= 0.0 {
            return Err(HdcError::invalid_config(
                "learning_rate",
                "must be positive",
            ));
        }
        if config.output_scale <= 0.0 {
            return Err(HdcError::invalid_config("output_scale", "must be positive"));
        }
        Ok(Self {
            classes: vec![vec![0.0; dim]; n_classes],
            norms: vec![0.0; n_classes],
            config,
            seen: 0,
        })
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Consumes one encoded sample with the novelty-scaled update.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::UnknownClass`] / [`HdcError::DimensionMismatch`]
    /// on bad arguments.
    pub fn observe(&mut self, encoded: &DenseHv, label: usize) -> Result<()> {
        if label >= self.classes.len() {
            return Err(HdcError::UnknownClass {
                label,
                n_classes: self.classes.len(),
            });
        }
        if encoded.dim() != self.classes[0].len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.classes[0].len(),
                actual: encoded.dim(),
            });
        }
        let h_norm = encoded.norm();
        let cosines: Vec<f64> = (0..self.classes.len())
            .map(|c| self.cosine_to(c, encoded, h_norm))
            .collect();
        let pred = argmax(&cosines);
        let lr = self.config.learning_rate;
        // Pull toward the true class, scaled by novelty.
        let alpha = lr * (1.0 - cosines[label]).max(0.0);
        self.add_scaled(label, encoded, alpha);
        // Push away from the confused class.
        if pred != label {
            let beta = lr * (1.0 - cosines[pred]).max(0.0);
            self.add_scaled(pred, encoded, -beta);
        }
        self.seen += 1;
        Ok(())
    }

    fn cosine_to(&self, class: usize, encoded: &DenseHv, h_norm: f64) -> f64 {
        let n = self.norms[class];
        if n == 0.0 || h_norm == 0.0 {
            return 0.0;
        }
        let dot: f64 = self.classes[class]
            .iter()
            .zip(encoded.as_slice())
            .map(|(&c, &h)| c * h as f64)
            .sum();
        dot / (n * h_norm)
    }

    fn add_scaled(&mut self, class: usize, encoded: &DenseHv, alpha: f64) {
        if alpha == 0.0 {
            return;
        }
        let row = &mut self.classes[class];
        for (c, &h) in row.iter_mut().zip(encoded.as_slice()) {
            *c += alpha * h as f64;
        }
        self.norms[class] = row.iter().map(|c| c * c).sum::<f64>().sqrt();
    }

    /// Finalizes the float model into an integer [`ClassModel`]. Classes
    /// are normalized to a common fixed-point scale so downstream
    /// compression/retraining behave as for the other trainers.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] if no samples were observed.
    pub fn finalize(&self) -> Result<ClassModel> {
        if self.seen == 0 {
            return Err(HdcError::invalid_dataset(
                "cannot finalize with zero observed samples",
            ));
        }
        let max_norm = self.norms.iter().cloned().fold(0.0f64, f64::max);
        let scale = if max_norm > 0.0 {
            self.config.output_scale * (self.classes[0].len() as f64).sqrt() / max_norm
        } else {
            1.0
        };
        let classes = self
            .classes
            .iter()
            .map(|row| DenseHv::from_vec(row.iter().map(|&c| (c * scale).round() as i32).collect()))
            .collect();
        ClassModel::from_classes(classes)
    }

    /// One-shot convenience: stream every `(features, label)` pair through
    /// `encoder` and finalize.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for empty or mismatched inputs,
    /// plus per-sample errors.
    pub fn fit<E: Encode>(
        encoder: &E,
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        config: OnlineConfig,
    ) -> Result<ClassModel> {
        if features.is_empty() {
            return Err(HdcError::invalid_dataset("cannot train on zero samples"));
        }
        if features.len() != labels.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} samples but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let mut trainer = Self::new(n_classes, encoder.dim(), config)?;
        for (f, &y) in features.iter().zip(labels) {
            let h = encoder.encode(f)?;
            trainer.observe(&h, y)?;
        }
        trainer.finalize()
    }
}

/// Streaming counter trainer: the exact-arithmetic sibling of
/// [`OnlineTrainer`], built for live serving.
///
/// The paper's counter training (§III-D) is naturally incremental —
/// folding one labeled example is a handful of counter increments, and
/// counter addition is associative and commutative. A
/// `StreamingTrainer` therefore guarantees, *by construction*, that N
/// examples streamed one at a time (in any order, across any shard
/// split later [`merge`]d) produce counters bit-identical to a single
/// batch [`LookHdClassifier::fit`] on the same data — and
/// [`materialize`] runs the identical finalize → compress → kernel
/// pipeline as batch fit, so the materialized classifier is
/// bit-identical too (pinned by `tests/online_differential.rs`).
///
/// Because no training samples are stored, the sample-dependent fit
/// stages (compressed retraining, validation splits, adaptive group
/// shrinking) cannot run; the trainer's config is normalized to disable
/// them, and a batch fit under the same normalized config runs the
/// exact same pipeline tail.
///
/// [`merge`]: StreamingTrainer::merge
/// [`materialize`]: StreamingTrainer::materialize
#[derive(Debug, Clone)]
pub struct StreamingTrainer {
    encoder: LookupEncoder,
    config: LookHdConfig,
    trainer: CounterTrainer,
}

impl StreamingTrainer {
    /// Creates a streaming trainer over a fitted encoder.
    ///
    /// Only `config.compression`, `config.kernel`, and `config.seed` are
    /// consumed (the encoder is already built); the sample-dependent
    /// knobs (`retrain_epochs`, `validation_fraction`,
    /// `adaptive_grouping`) are forced off — see the type docs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `n_classes == 0`.
    pub fn new(encoder: LookupEncoder, config: LookHdConfig, n_classes: usize) -> Result<Self> {
        let mut config = config;
        config.retrain_epochs = 0;
        config.validation_fraction = 0.0;
        config.adaptive_grouping = false;
        let trainer = CounterTrainer::new(&encoder, n_classes)?;
        Ok(Self {
            encoder,
            config,
            trainer,
        })
    }

    /// Creates a streaming trainer that continues from a trained
    /// classifier's encoder, compression knobs, and kernel choice —
    /// the serve path's online-training entry point (the artifact is the
    /// only configuration a server has). Counters start from zero: the
    /// first materialized version reflects only streamed feedback.
    ///
    /// # Errors
    ///
    /// Propagates trainer-construction errors.
    pub fn from_classifier(clf: &LookHdClassifier) -> Result<Self> {
        let kernel = match clf.kernel().name() {
            "lut" => KernelSpec::lut(),
            "binary" => {
                let multifold = clf
                    .kernel()
                    .as_any()
                    .downcast_ref::<BinaryKernel>()
                    .map_or(0, BinaryKernel::multifold);
                KernelSpec::binary().with_multifold(multifold)
            }
            _ => KernelSpec::dense(),
        };
        let config = LookHdConfig::new()
            .with_compression(clf.compressed().compression_config().clone())
            .with_kernel(kernel)
            .with_seed(clf.seed());
        Self::new(clf.encoder().clone(), config, clf.model().n_classes())
    }

    /// Folds one labeled example into the live counters — the exact
    /// arithmetic of batch fit's counter pass, one sample at a time.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (wrong arity, non-finite values) and
    /// an out-of-range label.
    pub fn observe(&mut self, features: &[f64], label: usize) -> Result<()> {
        self.trainer.observe(&self.encoder, features, label)
    }

    /// Folds another trainer's counters into this one (shard merge).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] on layout or class-count
    /// disagreement.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        self.trainer.merge(&other.trainer)
    }

    /// Total examples folded so far.
    pub fn observed(&self) -> u64 {
        (0..self.counters().n_classes())
            .map(|c| self.counters().samples_seen(c))
            .sum()
    }

    /// Examples folded for one class.
    pub fn observed_for(&self, class: usize) -> u64 {
        if class < self.counters().n_classes() {
            self.counters().samples_seen(class)
        } else {
            0
        }
    }

    /// Number of classes the trainer folds into.
    pub fn n_classes(&self) -> usize {
        self.counters().n_classes()
    }

    /// The live counters (compared exactly by the differential tests).
    pub fn counters(&self) -> &ChunkCounters {
        self.trainer.counters()
    }

    /// The normalized configuration versions are materialized under.
    pub fn config(&self) -> &LookHdConfig {
        &self.config
    }

    /// The fitted encoder every fold and materialization goes through.
    pub fn encoder(&self) -> &LookupEncoder {
        &self.encoder
    }

    /// Materializes the current counters into a full classifier — the
    /// identical pipeline tail batch fit runs under the normalized
    /// config: finalize counters, refresh norms, compress, build the
    /// scoring kernel. Deterministic given the counters, so repeated
    /// calls without intervening folds return bit-identical models.
    ///
    /// This is the off-hot-path step of a model refresh: the serve
    /// trainer thread calls it and atomically swaps the result in.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] when no examples have been
    /// folded, plus compression/kernel build errors.
    pub fn materialize(&self) -> Result<LookHdClassifier> {
        let _span = obs::span("online_materialize");
        let mut model = self.trainer.finalize(&self.encoder)?;
        model.refresh_norms();
        let compressed = CompressedModel::compress(&model, &self.config.compression)?;
        let kernel = build_kernel(&self.encoder, &compressed, &self.config.kernel)?;
        Ok(LookHdClassifier::from_parts(
            self.encoder.clone(),
            model,
            compressed,
            kernel,
            self.config.seed,
        ))
    }
}

fn argmax(scores: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::levels::{LevelMemory, LevelScheme};
    use hdc::quantize::{Quantization, Quantizer};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::chunking::ChunkLayout;
    use crate::encoder::LookupEncoder;
    use crate::lut::TableMode;
    use crate::trainer::CounterTrainer;

    fn encoder(n: usize, q: usize, dim: usize, seed: u64) -> LookupEncoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let levels = LevelMemory::generate(dim, q, LevelScheme::RandomFlips, &mut rng).unwrap();
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let quantizer = Quantizer::fit(Quantization::Equalized, &samples, q).unwrap();
        let layout = ChunkLayout::new(n, 5, q).unwrap();
        LookupEncoder::new(layout, &levels, quantizer, TableMode::Materialized, seed).unwrap()
    }

    /// Hard overlapping dataset: two prototype vectors with heavy noise.
    fn hard_dataset(n: usize, per_class: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..per_class {
                xs.push(
                    p.iter()
                        .map(|&v| (v + rng.gen_range(-0.35f64..0.35)).clamp(0.0, 1.0))
                        .collect(),
                );
                ys.push(c);
            }
        }
        (xs, ys)
    }

    fn accuracy(model: &ClassModel, enc: &LookupEncoder, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| model.predict(&enc.encode(x).unwrap()).unwrap() == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    #[test]
    fn online_single_pass_beats_plain_bundling_on_hard_data() {
        // Averaged over dataset seeds: a single split is too noisy for the
        // "matches or beats" claim to be a property of the algorithm.
        let enc = encoder(40, 4, 2048, 1);
        let (mut sum_bundled, mut sum_online) = (0.0, 0.0);
        let trials = 5;
        for seed in 0..trials {
            let (xs, ys) = hard_dataset(40, 60, 2 + 2 * seed);
            let (txs, tys) = hard_dataset(40, 20, 3 + 2 * seed);
            let bundled = CounterTrainer::fit(&enc, &xs, &ys, 3).unwrap();
            let online = OnlineTrainer::fit(&enc, &xs, &ys, 3, OnlineConfig::new()).unwrap();
            sum_bundled += accuracy(&bundled, &enc, &txs, &tys);
            sum_online += accuracy(&online, &enc, &txs, &tys);
        }
        let acc_bundled = sum_bundled / trials as f64;
        let acc_online = sum_online / trials as f64;
        assert!(
            acc_online + 0.02 >= acc_bundled,
            "online ({acc_online:.3}) should match or beat single-pass bundling ({acc_bundled:.3})"
        );
    }

    #[test]
    fn online_model_learns_at_all() {
        let enc = encoder(40, 4, 1024, 4);
        let (xs, ys) = hard_dataset(40, 40, 5);
        let model = OnlineTrainer::fit(&enc, &xs, &ys, 3, OnlineConfig::new()).unwrap();
        let acc = accuracy(&model, &enc, &xs, &ys);
        assert!(acc > 0.6, "train accuracy too low: {acc}");
    }

    #[test]
    fn incremental_observe_matches_fit() {
        let enc = encoder(20, 2, 512, 6);
        let (xs, ys) = hard_dataset(20, 10, 7);
        let mut t = OnlineTrainer::new(3, 512, OnlineConfig::new()).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            t.observe(&enc.encode(x).unwrap(), y).unwrap();
        }
        assert_eq!(t.samples_seen(), xs.len());
        let a = t.finalize().unwrap();
        let b = OnlineTrainer::fit(&enc, &xs, &ys, 3, OnlineConfig::new()).unwrap();
        for c in 0..3 {
            assert_eq!(a.class(c), b.class(c));
        }
    }

    #[test]
    fn novelty_scaling_shrinks_updates_for_familiar_samples() {
        let enc = encoder(20, 2, 512, 8);
        let x = vec![0.5; 20];
        let h = enc.encode(&x).unwrap();
        let mut t = OnlineTrainer::new(2, 512, OnlineConfig::new()).unwrap();
        t.observe(&h, 0).unwrap();
        let after_first = t.classes[0].clone();
        t.observe(&h, 0).unwrap();
        let delta_second: f64 = t.classes[0]
            .iter()
            .zip(&after_first)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let delta_first: f64 = after_first.iter().map(|v| v.abs()).sum();
        assert!(
            delta_second < 0.2 * delta_first,
            "repeat sample should barely move the model: {delta_second} vs {delta_first}"
        );
    }

    #[test]
    fn validates_configuration_and_inputs() {
        assert!(OnlineTrainer::new(0, 10, OnlineConfig::new()).is_err());
        assert!(OnlineTrainer::new(2, 0, OnlineConfig::new()).is_err());
        assert!(OnlineTrainer::new(2, 10, OnlineConfig::new().with_learning_rate(0.0)).is_err());
        assert!(OnlineTrainer::new(2, 10, OnlineConfig::new().with_output_scale(-1.0)).is_err());
        let mut t = OnlineTrainer::new(2, 10, OnlineConfig::new()).unwrap();
        assert!(t.observe(&DenseHv::zeros(5), 0).is_err());
        assert!(t.observe(&DenseHv::zeros(10), 7).is_err());
        assert!(t.finalize().is_err());
        let enc = encoder(20, 2, 128, 9);
        assert!(OnlineTrainer::fit(&enc, &[], &[], 2, OnlineConfig::new()).is_err());
    }

    #[test]
    fn config_builder_round_trips() {
        let c = OnlineConfig::new()
            .with_learning_rate(0.5)
            .with_output_scale(128.0);
        assert_eq!(c.learning_rate, 0.5);
        assert_eq!(c.output_scale, 128.0);
        assert_eq!(OnlineConfig::default(), OnlineConfig::new());
    }
}
