//! Model compression (§IV): fold `k` class hypervectors into (near-)one.
//!
//! Each class `i` gets a random bipolar key `P'_i`; the compressed model is
//! `C = Σ_i P'_i ⊙ C_i` (Eq. 4). A query `H` is scored against class `j` by
//!
//! ```text
//! score_j = Σ_d P'_j[d] · H[d] · C[d]
//!         = H·C_j  +  Σ_{i≠j} Σ_d (P'_j ⊙ P'_i)[d] · H[d] · C_i[d]
//!           ^signal    ^cross-talk noise (≈ 0 for random keys)   (Eq. 5)
//! ```
//!
//! so the `D` multiplications `H[d]·C[d]` are shared by *all* classes and
//! each class costs only sign-flipped accumulation — the paper's inference
//! speedup.
//!
//! ## Decorrelation (§IV-C)
//!
//! HDC class hypervectors are highly correlated (cosines 0.9–1.0, Fig. 8):
//! level hypervectors are shared and neighbouring levels are similar, so
//! every class carries a large common component. Cross-talk noise scales
//! with `‖H ⊙ C_i‖`, so that common mass drowns the small score gaps.
//! Compression therefore removes the common component from the *model*
//! (`C'_i = C_i − C_ave·δ(C_i, C_ave)`) and — symmetrically — projects the
//! common direction out of each *query* before scoring and updating. The
//! query-side projection is the same `D`-wide multiply-accumulate the
//! shared product already needs, so it does not change the §IV cost story.
//!
//! For `k` beyond [`CompressionConfig::max_classes_per_vector`] classes are
//! packed into multiple combined vectors ("exact mode", §VI-G).

use rand::rngs::StdRng;
use rand::SeedableRng;

use hdc::hv::{BipolarHv, DenseHv};
use hdc::model::ClassModel;
use hdc::{HdcError, Result};

use crate::encoder::PositionKeys;

/// How class hypervectors are magnitude-normalized before combination
/// (the fixed-point analogue of the paper's `C'_i = C_i/‖C_i‖`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleMode {
    /// Normalize every class to the *average* class norm. Keeps the model
    /// at its natural magnitude so retraining updates (`± H`) act with a
    /// sane effective learning rate. The default.
    AverageNorm,
    /// Normalize every class to a fixed integer norm.
    Fixed(i32),
}

/// Configuration of the compression pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionConfig {
    /// Maximum classes folded into one combined hypervector. The paper
    /// finds accuracy is preserved up to 12 (§VI-G); more classes spill
    /// into additional vectors.
    pub max_classes_per_vector: usize,
    /// Apply the §IV-C decorrelation (model- and query-side).
    pub decorrelate: bool,
    /// Number of principal common directions removed when decorrelating.
    /// Round 1 is (up to normalization) the paper's average-removal; extra
    /// rounds deflate further shared structure, which matters when class
    /// hypervectors are more correlated than the paper's datasets.
    pub decorrelate_rounds: usize,
    /// Class-magnitude normalization rule.
    pub scale: ScaleMode,
    /// RNG seed for the `P'` keys. Keys are regenerable from this seed, so
    /// the paper's model-size accounting stores only the combined vectors.
    pub seed: u64,
}

impl CompressionConfig {
    /// Paper defaults: 12 classes per vector, decorrelation on,
    /// average-norm scaling.
    pub fn new() -> Self {
        Self {
            max_classes_per_vector: 12,
            decorrelate: true,
            decorrelate_rounds: 1,
            scale: ScaleMode::AverageNorm,
            seed: 0xC0_4F_5E,
        }
    }

    /// Sets the per-vector class budget (1 ⇒ no compression).
    pub fn with_max_classes_per_vector(mut self, m: usize) -> Self {
        self.max_classes_per_vector = m;
        self
    }

    /// Enables or disables decorrelation.
    pub fn with_decorrelate(mut self, on: bool) -> Self {
        self.decorrelate = on;
        self
    }

    /// Sets how many principal common directions decorrelation removes.
    pub fn with_decorrelate_rounds(mut self, rounds: usize) -> Self {
        self.decorrelate_rounds = rounds.max(1);
        self
    }

    /// Normalizes classes to a fixed integer norm instead of the average.
    pub fn with_scale(mut self, scale: i32) -> Self {
        self.scale = ScaleMode::Fixed(scale);
        self
    }

    /// Sets the scale mode directly.
    pub fn with_scale_mode(mut self, scale: ScaleMode) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the key seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Removes the component common to all classes (§IV-C):
/// `C'_i = C_i − C_ave · δ(C_i, C_ave)`.
///
/// Returns a new model with much lower pairwise class correlation (Fig. 8),
/// which makes the compressed scores robust to cross-talk noise.
///
/// # Errors
///
/// Never fails for a valid model; the signature matches the other model
/// transformations for composability.
pub fn decorrelate(model: &ClassModel) -> Result<ClassModel> {
    let ave = class_average(model);
    let ave_norm = norm_f64(&ave);
    let mut out = Vec::with_capacity(model.n_classes());
    for c in model.classes() {
        let c_norm = c.norm();
        let cos = if ave_norm == 0.0 || c_norm == 0.0 {
            0.0
        } else {
            dot_i32_f64(c.as_slice(), &ave) / (ave_norm * c_norm)
        };
        let values: Vec<i32> = c
            .as_slice()
            .iter()
            .zip(&ave)
            .map(|(&v, a)| (v as f64 - a * cos).round() as i32)
            .collect();
        out.push(DenseHv::from_vec(values));
    }
    ClassModel::from_classes(out)
}

/// Computes the top `rounds` principal common directions of the class
/// matrix by power iteration with deflation, returning the (unit-norm)
/// directions and the deflated class vectors.
fn deflate_classes(model: &ClassModel, rounds: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let k = model.n_classes();
    let d = model.dim();
    let mut rows: Vec<Vec<f64>> = model
        .classes()
        .iter()
        .map(|c| c.as_slice().iter().map(|&v| v as f64).collect())
        .collect();
    let mut directions = Vec::new();
    for round in 0..rounds.min(k) {
        // Start power iteration from the current mean (round 0 exactly
        // reproduces the paper's average direction when it dominates).
        let mut v = vec![0.0f64; d];
        for row in &rows {
            for (a, &x) in v.iter_mut().zip(row) {
                *a += x;
            }
        }
        if norm_f64(&v) < 1e-9 {
            // Mean vanished (already centred); seed deterministically.
            for (i, a) in v.iter_mut().enumerate() {
                *a = if (i + round) % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        for _ in 0..8 {
            let n = norm_f64(&v);
            if n < 1e-12 {
                break;
            }
            for a in &mut v {
                *a /= n;
            }
            // v ← Σ_i (c_i · v) c_i
            let mut next = vec![0.0f64; d];
            for row in &rows {
                let proj: f64 = row.iter().zip(&v).map(|(x, y)| x * y).sum();
                for (a, &x) in next.iter_mut().zip(row) {
                    *a += proj * x;
                }
            }
            v = next;
        }
        let n = norm_f64(&v);
        if n < 1e-9 {
            break;
        }
        for a in &mut v {
            *a /= n;
        }
        // Deflate every class.
        for row in &mut rows {
            let proj: f64 = row.iter().zip(&v).map(|(x, y)| x * y).sum();
            for (a, &dir) in row.iter_mut().zip(&v) {
                *a -= proj * dir;
            }
        }
        directions.push(v);
    }
    (directions, rows)
}

fn class_average(model: &ClassModel) -> Vec<f64> {
    let k = model.n_classes() as f64;
    let mut ave = vec![0.0f64; model.dim()];
    for c in model.classes() {
        for (a, &v) in ave.iter_mut().zip(c.as_slice()) {
            *a += v as f64;
        }
    }
    for a in &mut ave {
        *a /= k;
    }
    ave
}

fn norm_f64(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot_i32_f64(a: &[i32], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, y)| x as f64 * y).sum()
}

/// Largest hypervector dimensionality the `LKC1`/`LKS1` serialized formats
/// accept (2^20). Far above any configuration the paper or the benchmarks
/// use, but small enough that a corrupt length header cannot trigger a
/// multi-GB allocation or a huge key regeneration.
pub const MAX_SERIAL_DIM: usize = 1 << 20;

/// Largest class/group/direction count the serialized formats accept
/// (2^16). Bounds the `P'` key regeneration (`k · dim` bits) a corrupt
/// header could otherwise request.
pub const MAX_SERIAL_CLASSES: usize = 1 << 16;

/// Largest feature count the `LKS1` format accepts (2^20).
pub const MAX_SERIAL_FEATURES: usize = 1 << 20;

/// Ceiling on the total elements (`count × dim`) any deserializer will
/// regenerate from a seed (2^28 ≈ 268M, ~1 GiB of `i32`). Individual
/// header fields can each be in-cap while their *product* — position keys
/// for `⌈n/r⌉` chunks, `q` level hypervectors, `k` class keys — is still
/// absurd; this bounds the product. Serializers apply the same check so a
/// writable artifact is always readable.
pub const MAX_REGEN_ELEMENTS: usize = 1 << 28;

/// Rejects a seeded regeneration of `count × dim` elements that exceeds
/// [`MAX_REGEN_ELEMENTS`], naming the field.
pub(crate) fn check_regen(what: &'static str, count: usize, dim: usize) -> Result<()> {
    if count
        .checked_mul(dim)
        .is_none_or(|n| n > MAX_REGEN_ELEMENTS)
    {
        return Err(HdcError::invalid_config(
            what,
            format!(
                "regenerating {count} x {dim} elements exceeds the \
                 {MAX_REGEN_ELEMENTS}-element limit"
            ),
        ));
    }
    Ok(())
}

/// Converts a count to the `u32` the serialized formats store, rejecting
/// values above `cap` (and, implicitly, anything that would silently
/// truncate) with an error naming the field.
pub(crate) fn serial_u32(what: &'static str, value: usize, cap: usize) -> Result<u32> {
    if value > cap.min(u32::MAX as usize) {
        return Err(HdcError::invalid_config(
            what,
            format!("{value} exceeds the serialized format's limit of {cap}"),
        ));
    }
    Ok(value as u32)
}

/// Per-class signal/noise decomposition of a compressed score (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalNoise {
    /// The true dot product `H · C_j` (after decorrelation/normalization,
    /// with the query-side projection applied).
    pub signal: f64,
    /// The cross-talk residual `score_j − H·C_j`.
    pub noise: f64,
}

impl SignalNoise {
    /// `|noise| / |signal|`; `f64::INFINITY` when the signal is zero.
    pub fn noise_to_signal(&self) -> f64 {
        if self.signal == 0.0 {
            f64::INFINITY
        } else {
            (self.noise / self.signal).abs()
        }
    }
}

/// A compressed HDC model: one (or a few) combined hypervectors plus the
/// per-class keys and, when decorrelation is on, the stored common
/// direction used to whiten queries.
#[derive(Debug, Clone)]
pub struct CompressedModel {
    config: CompressionConfig,
    keys: PositionKeys,
    /// Class labels per combined vector, in label order.
    groups: Vec<Vec<usize>>,
    /// Group index per class label.
    group_of: Vec<usize>,
    combined: Vec<DenseHv>,
    /// Unit-norm common directions removed by decorrelation (empty when
    /// decorrelation is disabled); queries are whitened against these.
    directions: Vec<Vec<f64>>,
    dim: usize,
}

impl CompressedModel {
    /// Compresses a trained model.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `max_classes_per_vector == 0`
    /// or a fixed scale is non-positive.
    pub fn compress(model: &ClassModel, config: &CompressionConfig) -> Result<Self> {
        let _span = obs::span("compress");
        if config.max_classes_per_vector == 0 {
            return Err(HdcError::invalid_config(
                "max_classes_per_vector",
                "must be at least 1",
            ));
        }
        if let ScaleMode::Fixed(s) = config.scale {
            if s <= 0 {
                return Err(HdcError::invalid_config("scale", "must be positive"));
            }
        }
        let (directions, prepared) = Self::prepare_classes(model, config)?;
        let k = prepared.len();
        let dim = model.dim();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let keys = PositionKeys::generate(k, dim, &mut rng);
        let n_groups = k.div_ceil(config.max_classes_per_vector);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        let mut group_of = vec![0usize; k];
        for (label, slot) in group_of.iter_mut().enumerate() {
            let g = label / config.max_classes_per_vector;
            groups[g].push(label);
            *slot = g;
        }
        let mut combined = vec![DenseHv::zeros(dim); n_groups];
        for (label, class) in prepared.iter().enumerate() {
            combined[group_of[label]].add_bound_scaled(keys.key(label), class, 1);
        }
        Ok(Self {
            config: config.clone(),
            keys,
            groups,
            group_of,
            combined,
            directions,
            dim,
        })
    }

    /// The decorrelated, magnitude-normalized class hypervectors the
    /// compression is built from, along with the removed common directions.
    /// Deterministic, so analyses (Eq. 5 noise decomposition) can re-derive
    /// them from the original model.
    fn prepare_classes(
        model: &ClassModel,
        config: &CompressionConfig,
    ) -> Result<(Vec<Vec<f64>>, Vec<DenseHv>)> {
        // Deflating too many directions collapses the class-distinguishing
        // subspace (k classes span at most k directions), so cap the rounds
        // at k/4: small models get the paper's single average-removal,
        // many-class models may deflate deeper.
        let effective_rounds = config
            .decorrelate_rounds
            .clamp(1, (model.n_classes() / 4).max(1));
        let (directions, rows) = if config.decorrelate {
            deflate_classes(model, effective_rounds)
        } else {
            let rows = model
                .classes()
                .iter()
                .map(|c| c.as_slice().iter().map(|&v| v as f64).collect())
                .collect();
            (Vec::new(), rows)
        };
        let norms: Vec<f64> = rows.iter().map(|r| norm_f64(r)).collect();
        let target = match config.scale {
            ScaleMode::Fixed(s) => s as f64,
            ScaleMode::AverageNorm => {
                let nonzero: Vec<f64> = norms.iter().copied().filter(|&n| n > 0.0).collect();
                if nonzero.is_empty() {
                    1.0
                } else {
                    nonzero.iter().sum::<f64>() / nonzero.len() as f64
                }
            }
        };
        let prepared = rows
            .iter()
            .zip(&norms)
            .map(|(r, &n)| {
                if n == 0.0 {
                    DenseHv::from_vec(r.iter().map(|&v| v.round() as i32).collect())
                } else {
                    let s = target / n;
                    DenseHv::from_vec(r.iter().map(|&v| (v * s).round() as i32).collect())
                }
            })
            .collect();
        Ok((directions, prepared))
    }

    /// Projects the stored common directions out of a query (no-op without
    /// decorrelation). Returns the whitened query as `f64` values.
    fn whiten(&self, query: &DenseHv) -> Vec<f64> {
        let mut h: Vec<f64> = query.as_slice().iter().map(|&v| v as f64).collect();
        for dir in &self.directions {
            let proj: f64 = h.iter().zip(dir).map(|(x, y)| x * y).sum();
            for (a, &d) in h.iter_mut().zip(dir) {
                *a -= proj * d;
            }
        }
        h
    }

    /// Like [`CompressedModel::whiten`] but rounded back to integers, for
    /// model updates.
    fn whiten_int(&self, query: &DenseHv) -> DenseHv {
        DenseHv::from_vec(
            self.whiten(query)
                .iter()
                .map(|&x| x.round() as i32)
                .collect(),
        )
    }

    /// Scores every class against a query: `D` multiplications per combined
    /// vector (plus one `D`-wide projection when decorrelating), then
    /// sign-flipped accumulation per class.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn scores(&self, query: &DenseHv) -> Result<Vec<f64>> {
        let _span = obs::span("score");
        obs::counter("score.queries", 1);
        if query.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let mut scores = vec![0.0f64; self.n_classes()];
        if self.directions.is_empty() {
            // Integer fast path (no whitening): exactly the Fig. 11
            // datapath — shared products once, then per-class sign-flipped
            // accumulation driven by the packed key words.
            for (g, combined) in self.combined.iter().enumerate() {
                let v: Vec<i64> = query
                    .as_slice()
                    .iter()
                    .zip(combined.as_slice())
                    .map(|(&hd, &c)| hd as i64 * c as i64)
                    .collect();
                for &label in &self.groups[g] {
                    scores[label] = Self::signed_sum_int(&v, self.keys.key(label));
                }
            }
        } else {
            let h = self.whiten(query);
            for (g, combined) in self.combined.iter().enumerate() {
                // The shared product vector v = H ⊙ C (the only multiplies).
                let v: Vec<f64> = h
                    .iter()
                    .zip(combined.as_slice())
                    .map(|(&hd, &c)| hd * c as f64)
                    .collect();
                for &label in &self.groups[g] {
                    scores[label] = Self::signed_sum_f64(&v, self.keys.key(label));
                }
            }
        }
        Ok(scores)
    }

    /// `Σ_d ±v[d]` with signs from the packed key words (bit 1 ⇔ −1),
    /// computed as `Σv − 2·Σ_{negative dims} v` with a branchless masked
    /// sum (one AND + ADD per element, fully vectorizable).
    fn signed_sum_int(v: &[i64], key: &BipolarHv) -> f64 {
        let total: i64 = v.iter().sum();
        let mut negative: i64 = 0;
        for (wi, &word) in key.words().iter().enumerate() {
            let base = wi * 64;
            let end = (base + 64).min(v.len());
            let mut bits = word;
            for &vd in &v[base..end] {
                negative += vd & -((bits & 1) as i64);
                bits >>= 1;
            }
        }
        (total - 2 * negative) as f64
    }

    /// `Σ_d ±v[d]` for the whitened (f64) path, branchless via sign-bit
    /// flips driven by the packed key word.
    fn signed_sum_f64(v: &[f64], key: &BipolarHv) -> f64 {
        let mut s = 0.0f64;
        for (wi, &word) in key.words().iter().enumerate() {
            let base = wi * 64;
            let end = (base + 64).min(v.len());
            let mut bits = word;
            for &vd in &v[base..end] {
                let sign = (bits & 1) << 63;
                bits >>= 1;
                s += f64::from_bits(vd.to_bits() ^ sign);
            }
        }
        s
    }

    /// Predicts the best-matching class.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn predict(&self, query: &DenseHv) -> Result<usize> {
        let scores = self.scores(query)?;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &s) in scores.iter().enumerate() {
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        Ok(best)
    }

    /// Eq. 5 decomposition for each class: compares the compressed score to
    /// the exact dot product against the class's prepared hypervector.
    ///
    /// `model` must be the same model this was compressed from.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on dimension disagreement.
    pub fn signal_noise(&self, model: &ClassModel, query: &DenseHv) -> Result<Vec<SignalNoise>> {
        let scores = self.scores(query)?;
        let (_, prepared) = Self::prepare_classes(model, &self.config)?;
        let h = self.whiten(query);
        Ok(scores
            .iter()
            .zip(&prepared)
            .map(|(&score, class)| {
                let signal: f64 = h
                    .iter()
                    .zip(class.as_slice())
                    .map(|(&hd, &c)| hd * c as f64)
                    .sum();
                SignalNoise {
                    signal,
                    noise: score - signal,
                }
            })
            .collect())
    }

    /// Applies one retraining update `C += P'_correct ⊙ H − P'_wrong ⊙ H`
    /// directly on the compressed model (§IV-D). The query is whitened with
    /// the stored common direction first, keeping updates in the same
    /// subspace the scores are computed in.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::UnknownClass`] / [`HdcError::DimensionMismatch`]
    /// on bad arguments.
    pub fn update(&mut self, correct: usize, wrong: usize, query: &DenseHv) -> Result<()> {
        self.check_update(correct, wrong, query)?;
        let h = self.whiten_int(query);
        let gc = self.group_of[correct];
        let gw = self.group_of[wrong];
        self.combined[gc].add_bound_scaled(self.keys.key(correct), &h, 1);
        self.combined[gw].add_bound_scaled(self.keys.key(wrong), &h, -1);
        Ok(())
    }

    /// The paper's hardware update rule (§V-C): per dimension, `ΔP'·H` is
    /// replaced by negate/shift cases selected by the binary key bits so no
    /// multiplier is needed. The table as printed in the paper
    /// (`(0,0) → −(h≫1)`, mixed → `h`, `(1,1) → h≫1`) is direction-blind
    /// for mixed bits and inconsistent with the exact arithmetic
    /// (`ΔP' ∈ {−2, 0, +2}`); we implement the direction-corrected reading:
    ///
    /// ```text
    /// (P'_correct, P'_wrong) = (1, 0) →  h      // toward the correct key
    /// (P'_correct, P'_wrong) = (0, 1) → −h      // away from the wrong key
    /// (1, 1)                          →  h ≫ 1  // small nudge (paper table)
    /// (0, 0)                          → −(h ≫ 1)
    /// ```
    ///
    /// This keeps the printed table's shift-based equal-bit nudges while
    /// restoring the update direction; it is a ≈½-rate approximation of
    /// [`CompressedModel::update`], and the `ablation_update_rule` bench
    /// quantifies the accuracy difference. Only defined when both classes
    /// share a combined vector; otherwise this falls back to the exact rule
    /// (the hardware situation — a single compressed model — always shares).
    ///
    /// # Errors
    ///
    /// Same as [`CompressedModel::update`].
    pub fn update_paper_shift(
        &mut self,
        correct: usize,
        wrong: usize,
        query: &DenseHv,
    ) -> Result<()> {
        self.check_update(correct, wrong, query)?;
        let gc = self.group_of[correct];
        let gw = self.group_of[wrong];
        if gc != gw {
            return self.update(correct, wrong, query);
        }
        let h = self.whiten_int(query);
        let kc = self.keys.key(correct).clone();
        let kw = self.keys.key(wrong).clone();
        let combined = &mut self.combined[gc];
        for d in 0..self.dim {
            let hd = h.get(d);
            // Paper's binary representation: bit 1 ⇔ +1, bit 0 ⇔ −1.
            let bc = !kc.is_negative(d);
            let bw = !kw.is_negative(d);
            let delta = match (bc, bw) {
                (false, false) => -(hd >> 1),
                (true, true) => hd >> 1,
                (true, false) => hd,
                (false, true) => -hd,
            };
            combined.as_mut_slice()[d] += delta;
        }
        Ok(())
    }

    fn check_update(&self, correct: usize, wrong: usize, query: &DenseHv) -> Result<()> {
        let k = self.n_classes();
        if correct >= k || wrong >= k {
            return Err(HdcError::UnknownClass {
                label: correct.max(wrong),
                n_classes: k,
            });
        }
        if query.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        Ok(())
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.group_of.len()
    }

    /// The compression configuration this model was built with (used by
    /// the streaming trainer to rebuild versions under identical knobs).
    pub fn compression_config(&self) -> &CompressionConfig {
        &self.config
    }

    /// Number of combined hypervectors (1 in fully compressed mode,
    /// `⌈k/12⌉` in exact mode).
    pub fn n_vectors(&self) -> usize {
        self.combined.len()
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The combined hypervector of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= self.n_vectors()`.
    pub fn combined(&self, g: usize) -> &DenseHv {
        &self.combined[g]
    }

    /// The key `P'_label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn key(&self, label: usize) -> &BipolarHv {
        self.keys.key(label)
    }

    /// The combined-vector group holding class `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn group_of(&self, label: usize) -> usize {
        self.group_of[label]
    }

    /// Number of principal common directions removed by decorrelation
    /// (0 when `decorrelate=false` — the integer fast-path precondition).
    pub fn n_directions(&self) -> usize {
        self.directions.len()
    }

    /// The compression configuration.
    pub fn config(&self) -> &CompressionConfig {
        &self.config
    }

    /// Model size in bytes under the paper's accounting: only the combined
    /// vectors are stored (keys regenerate from [`CompressionConfig::seed`];
    /// the common direction adds one more vector when decorrelating — see
    /// [`CompressedModel::size_bytes_with_keys`] for the all-in number).
    pub fn size_bytes(&self) -> usize {
        self.n_vectors() * self.dim * std::mem::size_of::<i32>()
    }

    /// Model size including materialized binary keys (1 bit/dim/class) and
    /// the stored common direction (int32 per dim) when present.
    pub fn size_bytes_with_keys(&self) -> usize {
        let common = self.directions.len() * self.dim * std::mem::size_of::<i32>();
        self.size_bytes() + self.n_classes() * self.dim.div_ceil(8) + common
    }

    /// Serializes the compressed model (`LKC1` format): configuration,
    /// combined vectors, and whitening directions. The `P'` keys are *not*
    /// stored — they regenerate from [`CompressionConfig::seed`], which is
    /// exactly the paper's model-size accounting.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when a count exceeds the u32
    /// headers of the format (or the [`MAX_SERIAL_DIM`] /
    /// [`MAX_SERIAL_CLASSES`] caps [`CompressedModel::from_bytes`]
    /// enforces), instead of silently truncating.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        check_regen("n_classes", self.n_classes(), self.dim)?;
        let mut out = Vec::new();
        out.extend_from_slice(b"LKC1");
        let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        w32(&mut out, serial_u32("dim", self.dim, MAX_SERIAL_DIM)?);
        w32(
            &mut out,
            serial_u32(
                "max_classes_per_vector",
                self.config.max_classes_per_vector,
                MAX_SERIAL_CLASSES,
            )?,
        );
        out.push(u8::from(self.config.decorrelate));
        w32(
            &mut out,
            serial_u32(
                "decorrelate_rounds",
                self.config.decorrelate_rounds,
                u32::MAX as usize,
            )?,
        );
        match self.config.scale {
            ScaleMode::AverageNorm => {
                out.push(0);
                out.extend_from_slice(&0i32.to_le_bytes());
            }
            ScaleMode::Fixed(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        w32(
            &mut out,
            serial_u32("n_classes", self.n_classes(), MAX_SERIAL_CLASSES)?,
        );
        w32(
            &mut out,
            serial_u32("n_vectors", self.n_vectors(), MAX_SERIAL_CLASSES)?,
        );
        for combined in &self.combined {
            for &v in combined.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        w32(
            &mut out,
            serial_u32("n_directions", self.directions.len(), MAX_SERIAL_CLASSES)?,
        );
        for dir in &self.directions {
            for &v in dir {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(out)
    }

    /// Deserializes a model written by [`CompressedModel::to_bytes`].
    ///
    /// Length headers are validated against the remaining stream length
    /// and the [`MAX_SERIAL_DIM`] / [`MAX_SERIAL_CLASSES`] caps before any
    /// allocation, so corrupt or hostile headers produce an error rather
    /// than a multi-GB allocation. Trailing bytes after the last section
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDataset`] for a malformed, truncated, or
    /// over-long byte stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        struct Reader<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl<'a> Reader<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                if self.pos + n > self.bytes.len() {
                    return Err(HdcError::invalid_dataset(
                        "truncated compressed-model stream",
                    ));
                }
                let out = &self.bytes[self.pos..self.pos + n];
                self.pos += n;
                Ok(out)
            }
            fn u32(&mut self) -> Result<u32> {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("len checked"),
                ))
            }
            fn u8(&mut self) -> Result<u8> {
                Ok(self.take(1)?[0])
            }
            fn i32(&mut self) -> Result<i32> {
                Ok(i32::from_le_bytes(
                    self.take(4)?.try_into().expect("len checked"),
                ))
            }
            fn u64(&mut self) -> Result<u64> {
                Ok(u64::from_le_bytes(
                    self.take(8)?.try_into().expect("len checked"),
                ))
            }
            fn f64(&mut self) -> Result<f64> {
                Ok(f64::from_le_bytes(
                    self.take(8)?.try_into().expect("len checked"),
                ))
            }
            /// Errors unless at least `count * width` bytes remain — called
            /// before bulk preallocation so a corrupt header fails here
            /// instead of in the allocator.
            fn expect_remaining(&self, count: usize, width: usize, what: &str) -> Result<()> {
                let needed = count.checked_mul(width);
                if needed.is_none_or(|n| n > self.bytes.len() - self.pos) {
                    return Err(HdcError::invalid_dataset(format!(
                        "compressed-model stream too short for {what}"
                    )));
                }
                Ok(())
            }
        }
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != b"LKC1" {
            return Err(HdcError::invalid_dataset(
                "bad magic: not an LKC1 compressed model",
            ));
        }
        let dim = r.u32()? as usize;
        if dim == 0 {
            return Err(HdcError::invalid_dataset(
                "zero-dimensional compressed model",
            ));
        }
        if dim > MAX_SERIAL_DIM {
            return Err(HdcError::invalid_dataset(format!(
                "dim {dim} exceeds the format limit of {MAX_SERIAL_DIM}"
            )));
        }
        let max_classes_per_vector = r.u32()? as usize;
        let decorrelate = r.u8()? != 0;
        let decorrelate_rounds = r.u32()? as usize;
        let scale_tag = r.u8()?;
        let scale_value = r.i32()?;
        let scale = match scale_tag {
            0 => ScaleMode::AverageNorm,
            1 => ScaleMode::Fixed(scale_value),
            _ => return Err(HdcError::invalid_dataset("unknown scale mode tag")),
        };
        let seed = r.u64()?;
        let config = CompressionConfig {
            max_classes_per_vector,
            decorrelate,
            decorrelate_rounds,
            scale,
            seed,
        };
        if config.max_classes_per_vector == 0 {
            return Err(HdcError::invalid_dataset("zero classes per vector"));
        }
        let k = r.u32()? as usize;
        let n_groups = r.u32()? as usize;
        if k == 0 || n_groups != k.div_ceil(config.max_classes_per_vector) {
            return Err(HdcError::invalid_dataset("inconsistent class/group counts"));
        }
        if k > MAX_SERIAL_CLASSES {
            return Err(HdcError::invalid_dataset(format!(
                "n_classes {k} exceeds the format limit of {MAX_SERIAL_CLASSES}"
            )));
        }
        check_regen("n_classes", k, dim)?;
        r.expect_remaining(n_groups.saturating_mul(dim), 4, "combined vectors")?;
        let mut combined = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let mut values = Vec::with_capacity(dim);
            for _ in 0..dim {
                values.push(r.i32()?);
            }
            combined.push(DenseHv::from_vec(values));
        }
        let n_directions = r.u32()? as usize;
        if n_directions > k {
            return Err(HdcError::invalid_dataset("more directions than classes"));
        }
        r.expect_remaining(n_directions.saturating_mul(dim), 8, "whitening directions")?;
        let mut directions = Vec::with_capacity(n_directions);
        for _ in 0..n_directions {
            let mut dir = Vec::with_capacity(dim);
            for _ in 0..dim {
                dir.push(r.f64()?);
            }
            directions.push(dir);
        }
        if r.pos != bytes.len() {
            return Err(HdcError::invalid_dataset(format!(
                "{} trailing byte(s) after compressed model (offset {})",
                bytes.len() - r.pos,
                r.pos
            )));
        }
        // Regenerate keys and grouping deterministically from the config.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let keys = PositionKeys::generate(k, dim, &mut rng);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        let mut group_of = vec![0usize; k];
        for (label, slot) in group_of.iter_mut().enumerate() {
            let g = label / config.max_classes_per_vector;
            groups[g].push(label);
            *slot = g;
        }
        Ok(Self {
            config,
            keys,
            groups,
            group_of,
            combined,
            directions,
            dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A model of `k` near-orthogonal random classes at dimension `d`.
    fn random_model(k: usize, d: usize, seed: u64) -> ClassModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = (0..k)
            .map(|_| DenseHv::from_vec((0..d).map(|_| rng.gen_range(-40..=40)).collect()))
            .collect();
        ClassModel::from_classes(classes).unwrap()
    }

    /// A model of `k` highly correlated classes (shared component + id).
    fn correlated_model(
        k: usize,
        d: usize,
        shared_range: i32,
        id_range: i32,
        seed: u64,
    ) -> ClassModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared: Vec<i32> = (0..d)
            .map(|_| rng.gen_range(-shared_range..=shared_range))
            .collect();
        let classes = (0..k)
            .map(|_| {
                DenseHv::from_vec(
                    shared
                        .iter()
                        .map(|&s| s + rng.gen_range(-id_range..=id_range))
                        .collect(),
                )
            })
            .collect();
        ClassModel::from_classes(classes).unwrap()
    }

    #[test]
    fn compressed_prediction_matches_full_model_on_clear_queries() {
        let model = random_model(6, 4000, 1);
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        for label in 0..6 {
            let query = model.class(label).clone();
            assert_eq!(model.predict(&query).unwrap(), label);
            assert_eq!(compressed.predict(&query).unwrap(), label, "class {label}");
        }
    }

    #[test]
    fn noise_is_small_relative_to_signal() {
        let model = random_model(4, 8000, 2);
        let cfg = CompressionConfig::new().with_decorrelate(false);
        let compressed = CompressedModel::compress(&model, &cfg).unwrap();
        let query = model.class(0).clone();
        let sn = compressed.signal_noise(&model, &query).unwrap();
        assert!(sn[0].signal > 0.0);
        assert!(
            sn[0].noise_to_signal() < 0.2,
            "n/s = {}",
            sn[0].noise_to_signal()
        );
    }

    #[test]
    fn noise_grows_with_class_count() {
        let d = 4000;
        let mut ratios = Vec::new();
        for &k in &[2usize, 12, 48] {
            // Single-seed ratios are high-variance; average a few seeds so
            // the monotone trend is the signal being tested, not the draw.
            let mut ratio = 0.0;
            for seed in 0..5 {
                let model = random_model(k, d, seed);
                let cfg = CompressionConfig::new()
                    .with_decorrelate(false)
                    .with_max_classes_per_vector(k); // force single vector
                let compressed = CompressedModel::compress(&model, &cfg).unwrap();
                let query = model.class(0).clone();
                let sn = compressed.signal_noise(&model, &query).unwrap();
                ratio += sn[0].noise_to_signal();
            }
            ratios.push(ratio / 5.0);
        }
        assert!(
            ratios[0] < ratios[2],
            "noise should grow with k: {ratios:?}"
        );
    }

    #[test]
    fn exact_mode_splits_into_expected_vector_count() {
        let model = random_model(26, 500, 4);
        let compressed = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert_eq!(compressed.n_vectors(), 3); // ⌈26/12⌉
        assert_eq!(compressed.n_classes(), 26);
        let single = CompressedModel::compress(
            &model,
            &CompressionConfig::new().with_max_classes_per_vector(26),
        )
        .unwrap();
        assert_eq!(single.n_vectors(), 1);
    }

    #[test]
    fn size_accounting_matches_paper_model() {
        let model = random_model(12, 2000, 5);
        let compressed = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert_eq!(model.size_bytes() / compressed.size_bytes(), 12);
        assert!(compressed.size_bytes_with_keys() > compressed.size_bytes());
    }

    #[test]
    fn decorrelation_reduces_class_correlation() {
        let model = correlated_model(5, 2000, 50, 5, 6);
        let decorrelated = decorrelate(&model).unwrap();
        assert!(model.class_correlation() > 0.9);
        assert!(
            decorrelated.class_correlation() < 0.5,
            "correlation after: {}",
            decorrelated.class_correlation()
        );
    }

    #[test]
    fn decorrelation_rescues_compressed_accuracy_on_correlated_classes() {
        // With heavy class correlation, compression *without* decorrelation
        // misclassifies many class prototypes; with decorrelation (including
        // query whitening) they all survive (Fig. 8's motivation).
        let model = correlated_model(8, 4000, 60, 6, 7);
        let with = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        let without =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        let count_correct = |cm: &CompressedModel| {
            (0..8)
                .filter(|&label| cm.predict(model.class(label)).unwrap() == label)
                .count()
        };
        let with_acc = count_correct(&with);
        let without_acc = count_correct(&without);
        assert!(
            with_acc >= 7,
            "decorrelated compression too weak: {with_acc}/8"
        );
        assert!(
            with_acc >= without_acc,
            "decorrelation should not hurt: {with_acc} vs {without_acc}"
        );
    }

    #[test]
    fn update_moves_decision_toward_correct_class() {
        let model = random_model(4, 2000, 8);
        let mut compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        let query = model.class(2).clone();
        let before = compressed.scores(&query).unwrap();
        compressed.update(2, 0, &query).unwrap();
        let after = compressed.scores(&query).unwrap();
        assert!(after[2] > before[2]);
        assert!(after[0] < before[0]);
    }

    #[test]
    fn whitened_update_stays_in_decorrelated_subspace() {
        // After an update with decorrelation on, scores of unrelated classes
        // move much less than the two updated classes.
        let model = correlated_model(6, 4000, 60, 8, 9);
        let mut compressed = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        let query = model.class(1).clone();
        let before = compressed.scores(&query).unwrap();
        compressed.update(1, 2, &query).unwrap();
        let after = compressed.scores(&query).unwrap();
        let moved_target = (after[1] - before[1]).abs() + (after[2] - before[2]).abs();
        let moved_other = (after[4] - before[4]).abs();
        assert!(
            moved_target > moved_other,
            "target movement {moved_target} vs bystander {moved_other}"
        );
        assert!(after[1] > before[1]);
    }

    #[test]
    fn paper_shift_update_also_moves_scores_but_differs_from_exact() {
        let model = random_model(4, 2000, 9);
        let cfg = CompressionConfig::new()
            .with_decorrelate(false)
            .with_max_classes_per_vector(4);
        let mut exact = CompressedModel::compress(&model, &cfg).unwrap();
        let mut shift = exact.clone();
        let query = model.class(1).clone();
        exact.update(1, 3, &query).unwrap();
        shift.update_paper_shift(1, 3, &query).unwrap();
        let se = exact.scores(&query).unwrap();
        let ss = shift.scores(&query).unwrap();
        assert!(ss[1] > 0.0);
        assert_ne!(exact.combined(0), shift.combined(0));
        assert!(se[1] > 0.0);
    }

    #[test]
    fn fixed_scale_mode_still_works() {
        let model = random_model(3, 1000, 11);
        let cfg = CompressionConfig::new()
            .with_decorrelate(false)
            .with_scale(1024);
        let cm = CompressedModel::compress(&model, &cfg).unwrap();
        for label in 0..3 {
            assert_eq!(cm.predict(model.class(label)).unwrap(), label);
        }
    }

    #[test]
    fn rejects_invalid_configs_and_arguments() {
        let model = random_model(3, 100, 10);
        assert!(CompressedModel::compress(
            &model,
            &CompressionConfig::new().with_max_classes_per_vector(0)
        )
        .is_err());
        assert!(
            CompressedModel::compress(&model, &CompressionConfig::new().with_scale(0)).is_err()
        );
        let mut cm = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        assert!(cm.scores(&DenseHv::zeros(5)).is_err());
        assert!(cm.update(9, 0, &DenseHv::zeros(100)).is_err());
        assert!(cm.update(0, 1, &DenseHv::zeros(7)).is_err());
    }

    #[test]
    fn config_builder_round_trips() {
        let c = CompressionConfig::new()
            .with_max_classes_per_vector(6)
            .with_decorrelate(false)
            .with_scale(512)
            .with_seed(99);
        assert_eq!(c.max_classes_per_vector, 6);
        assert!(!c.decorrelate);
        assert_eq!(c.scale, ScaleMode::Fixed(512));
        assert_eq!(c.seed, 99);
        assert_eq!(CompressionConfig::default(), CompressionConfig::new());
        let c2 = CompressionConfig::new().with_scale_mode(ScaleMode::AverageNorm);
        assert_eq!(c2.scale, ScaleMode::AverageNorm);
    }

    #[test]
    fn compressed_model_round_trips_through_bytes() {
        let model = correlated_model(7, 600, 40, 6, 21);
        let cm = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        let bytes = cm.to_bytes().unwrap();
        let back = CompressedModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.n_classes(), cm.n_classes());
        assert_eq!(back.n_vectors(), cm.n_vectors());
        for g in 0..cm.n_vectors() {
            assert_eq!(back.combined(g), cm.combined(g));
        }
        // Predictions (which exercise keys + whitening) must agree.
        for label in 0..7 {
            let q = model.class(label).clone();
            assert_eq!(back.predict(&q).unwrap(), cm.predict(&q).unwrap());
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(CompressedModel::from_bytes(b"nope").is_err());
        let model = random_model(3, 64, 22);
        let cm = CompressedModel::compress(&model, &CompressionConfig::new()).unwrap();
        let bytes = cm.to_bytes().unwrap();
        assert!(CompressedModel::from_bytes(&bytes[..bytes.len() - 5]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(CompressedModel::from_bytes(&bad).is_err());
    }

    #[test]
    fn signed_sum_fast_paths_match_reference() {
        let mut rng = StdRng::seed_from_u64(30);
        for dim in [64usize, 100, 2000] {
            let key = crate::encoder::PositionKeys::generate(1, dim, &mut rng);
            let key = key.key(0);
            let vi: Vec<i64> = (0..dim).map(|_| rng.gen_range(-1000i64..1000)).collect();
            let reference: i64 = vi
                .iter()
                .enumerate()
                .map(|(d, &v)| if key.is_negative(d) { -v } else { v })
                .sum();
            assert_eq!(CompressedModel::signed_sum_int(&vi, key), reference as f64);
            let vf: Vec<f64> = vi.iter().map(|&v| v as f64 * 0.5).collect();
            let reference_f: f64 = vf
                .iter()
                .enumerate()
                .map(|(d, &v)| if key.is_negative(d) { -v } else { v })
                .sum();
            assert!((CompressedModel::signed_sum_f64(&vf, key) - reference_f).abs() < 1e-9);
        }
    }
}
