//! Feature-vector chunking and codebook addressing (§III-A, §III-C).
//!
//! LookHD splits the `n`-feature vector into `m = ⌈n/r⌉` sequential chunks
//! of (at most) `r` features. Within a chunk, each feature's quantized level
//! is a `⌈log2 q⌉`-bit *codebook*; the concatenation of the `r` codebooks is
//! a direct address into the pre-stored table of encoded chunk hypervectors.
//!
//! When `r` does not divide `n`, the final chunk simply holds the remaining
//! `n mod r` features and addresses a (smaller) table of its own size — the
//! encoding math is unchanged.

use hdc::{HdcError, Result};

/// The geometry of a chunked feature vector.
///
/// # Examples
///
/// ```
/// use lookhd::chunking::ChunkLayout;
///
/// let layout = ChunkLayout::new(617, 5, 4)?; // SPEECH: n=617, r=5, q=4
/// assert_eq!(layout.n_chunks(), 124);        // 123 full chunks + 2 leftovers
/// assert_eq!(layout.chunk_len(123), 2);
/// assert_eq!(layout.table_rows(0), 4usize.pow(5));
/// # Ok::<(), hdc::HdcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkLayout {
    n_features: usize,
    r: usize,
    q: usize,
    m: usize,
}

impl ChunkLayout {
    /// Maximum `r·log2(q)` address width we accept; beyond this even the
    /// sparse (on-the-fly) machinery would overflow a `u64` address.
    pub const MAX_ADDRESS_BITS: u32 = 48;

    /// Creates a layout for `n_features` features, chunk size `r`, and `q`
    /// quantization levels.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if any parameter is zero, if
    /// `r > n_features`, or if the address width `r·⌈log2 q⌉` exceeds
    /// [`ChunkLayout::MAX_ADDRESS_BITS`].
    pub fn new(n_features: usize, r: usize, q: usize) -> Result<Self> {
        if n_features == 0 {
            return Err(HdcError::invalid_config(
                "n_features",
                "need at least one feature",
            ));
        }
        if r == 0 {
            return Err(HdcError::invalid_config("r", "chunk size must be positive"));
        }
        if q < 2 {
            return Err(HdcError::invalid_config("q", "need at least 2 levels"));
        }
        if r > n_features {
            return Err(HdcError::invalid_config(
                "r",
                format!("chunk size {r} exceeds feature count {n_features}"),
            ));
        }
        let bits = r as u32 * Self::codebook_bits_for(q);
        if bits > Self::MAX_ADDRESS_BITS {
            return Err(HdcError::invalid_config(
                "r",
                format!(
                    "address width {bits} bits (r={r}, q={q}) exceeds the supported {} bits",
                    Self::MAX_ADDRESS_BITS
                ),
            ));
        }
        Ok(Self {
            n_features,
            r,
            q,
            m: n_features.div_ceil(r),
        })
    }

    fn codebook_bits_for(q: usize) -> u32 {
        (q as u64).next_power_of_two().trailing_zeros().max(1)
    }

    /// Number of input features `n`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Nominal chunk size `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Quantization levels `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of chunks `m = ⌈n/r⌉`.
    pub fn n_chunks(&self) -> usize {
        self.m
    }

    /// Bits per codebook, `⌈log2 q⌉` (§III-C).
    pub fn codebook_bits(&self) -> u32 {
        Self::codebook_bits_for(self.q)
    }

    /// Actual length of chunk `c` (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_chunks()`.
    pub fn chunk_len(&self, c: usize) -> usize {
        assert!(c < self.m, "chunk {c} out of range for m={}", self.m);
        if c + 1 == self.m {
            self.n_features - c * self.r
        } else {
            self.r
        }
    }

    /// The feature-index range covered by chunk `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_chunks()`.
    pub fn feature_range(&self, c: usize) -> std::ops::Range<usize> {
        let start = c * self.r;
        start..start + self.chunk_len(c)
    }

    /// Number of table rows chunk `c` addresses: `q^len(c)`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.n_chunks()`.
    pub fn table_rows(&self, c: usize) -> usize {
        self.q.pow(self.chunk_len(c) as u32)
    }

    /// Packs per-feature levels of chunk `c` into a base-`q` address (the
    /// concatenated-codebook memory address of §III-C; feature `j` within
    /// the chunk occupies digit `j`, most-significant first).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.chunk_len(c)` or any level `≥ q`.
    pub fn address(&self, c: usize, levels: &[usize]) -> u64 {
        assert_eq!(
            levels.len(),
            self.chunk_len(c),
            "level count must match chunk length"
        );
        let mut addr: u64 = 0;
        for &lv in levels {
            assert!(lv < self.q, "level {lv} out of range for q={}", self.q);
            addr = addr * self.q as u64 + lv as u64;
        }
        addr
    }

    /// Inverse of [`ChunkLayout::address`]: unpacks an address into the
    /// per-feature levels of chunk `c`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= self.table_rows(c) as u64`.
    pub fn levels_of_address(&self, c: usize, addr: u64) -> Vec<usize> {
        let len = self.chunk_len(c);
        assert!(
            addr < self.table_rows(c) as u64,
            "address {addr} out of range for chunk {c}"
        );
        let mut digits = vec![0usize; len];
        let mut a = addr;
        for d in digits.iter_mut().rev() {
            *d = (a % self.q as u64) as usize;
            a /= self.q as u64;
        }
        digits
    }

    /// Total pre-stored rows across all chunks assuming full tables — the
    /// "Lookup Size (# rows)" feasibility number of Table I, after chunking.
    pub fn total_table_rows(&self) -> u128 {
        (0..self.m).map(|c| self.table_rows(c) as u128).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_evenly() {
        let l = ChunkLayout::new(20, 5, 4).unwrap();
        assert_eq!(l.n_chunks(), 4);
        for c in 0..4 {
            assert_eq!(l.chunk_len(c), 5);
            assert_eq!(l.table_rows(c), 1024);
            assert_eq!(l.feature_range(c), c * 5..c * 5 + 5);
        }
    }

    #[test]
    fn partial_final_chunk() {
        let l = ChunkLayout::new(23, 5, 2).unwrap();
        assert_eq!(l.n_chunks(), 5);
        assert_eq!(l.chunk_len(4), 3);
        assert_eq!(l.table_rows(4), 8);
        assert_eq!(l.feature_range(4), 20..23);
    }

    #[test]
    fn address_round_trips() {
        let l = ChunkLayout::new(10, 5, 4).unwrap();
        for addr in [0u64, 1, 17, 1023] {
            let levels = l.levels_of_address(0, addr);
            assert_eq!(l.address(0, &levels), addr);
        }
        // Concatenation order: first feature is the most significant digit.
        assert_eq!(l.address(0, &[1, 0, 0, 0, 0]), 256);
        assert_eq!(l.address(0, &[0, 0, 0, 0, 3]), 3);
    }

    #[test]
    fn codebook_bits_round_up() {
        assert_eq!(ChunkLayout::new(10, 2, 2).unwrap().codebook_bits(), 1);
        assert_eq!(ChunkLayout::new(10, 2, 4).unwrap().codebook_bits(), 2);
        assert_eq!(ChunkLayout::new(10, 2, 5).unwrap().codebook_bits(), 3);
        assert_eq!(ChunkLayout::new(10, 2, 16).unwrap().codebook_bits(), 4);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ChunkLayout::new(0, 5, 4).is_err());
        assert!(ChunkLayout::new(10, 0, 4).is_err());
        assert!(ChunkLayout::new(10, 5, 1).is_err());
        assert!(ChunkLayout::new(4, 5, 4).is_err());
        // 16 levels × r=13 → 52 bits > 48
        assert!(ChunkLayout::new(100, 13, 16).is_err());
        assert!(ChunkLayout::new(100, 12, 16).is_ok());
    }

    #[test]
    fn total_rows_accounts_for_partial_chunk() {
        let l = ChunkLayout::new(7, 3, 2).unwrap(); // chunks: 3, 3, 1
        assert_eq!(l.total_table_rows(), 8 + 8 + 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_len_bounds_checked() {
        let l = ChunkLayout::new(10, 5, 4).unwrap();
        let _ = l.chunk_len(2);
    }

    #[test]
    #[should_panic(expected = "level count must match")]
    fn address_arity_checked() {
        let l = ChunkLayout::new(10, 5, 4).unwrap();
        let _ = l.address(0, &[0, 0]);
    }
}
