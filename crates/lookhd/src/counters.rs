//! Counter-based training state (§III-D, Fig. 6 steps D–F).
//!
//! Instead of bundling an encoded hypervector per training sample, LookHD
//! keeps one counter per pre-stored chunk hypervector per class and simply
//! increments counters while streaming the training set. The class
//! hypervector is materialized *once*, at the end:
//!
//! ```text
//! C = Σ_chunks P_c ⊙ ( Σ_addr count[c][addr] · LUT_c[addr] )
//! ```
//!
//! This factorization is exactly equal to bundling every encoded sample —
//! a property pinned by tests in [`crate::trainer`].
//!
//! Counters for a chunk are stored densely (a `q^r` array, like the FPGA
//! register file) while small, and as a hash map when the address space is
//! too large to materialize (the software-sweep regime).

use std::collections::HashMap;

use hdc::{HdcError, Result};

use crate::chunking::ChunkLayout;

/// Row-count threshold above which a chunk's counters are stored sparsely.
pub const DENSE_COUNTER_LIMIT_ROWS: usize = 1 << 20;

#[derive(Debug, Clone, PartialEq, Eq)]
enum CounterStore {
    Dense(Vec<u32>),
    Sparse(HashMap<u64, u32>),
}

impl CounterStore {
    fn new(rows: usize) -> Self {
        if rows <= DENSE_COUNTER_LIMIT_ROWS {
            Self::Dense(vec![0; rows])
        } else {
            Self::Sparse(HashMap::new())
        }
    }

    fn increment(&mut self, addr: u64) {
        match self {
            Self::Dense(v) => v[addr as usize] += 1,
            Self::Sparse(m) => *m.entry(addr).or_insert(0) += 1,
        }
    }

    fn get(&self, addr: u64) -> u32 {
        match self {
            Self::Dense(v) => v[addr as usize],
            Self::Sparse(m) => m.get(&addr).copied().unwrap_or(0),
        }
    }

    fn nonzero(&self) -> Box<dyn Iterator<Item = (u64, u32)> + '_> {
        match self {
            Self::Dense(v) => Box::new(
                v.iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(a, &c)| (a as u64, c)),
            ),
            Self::Sparse(m) => Box::new(m.iter().map(|(&a, &c)| (a, c))),
        }
    }

    fn total(&self) -> u64 {
        match self {
            Self::Dense(v) => v.iter().map(|&c| c as u64).sum(),
            Self::Sparse(m) => m.values().map(|&c| c as u64).sum(),
        }
    }

    fn merge(&mut self, other: &Self) {
        match (self, other) {
            (Self::Dense(a), Self::Dense(b)) => {
                for (x, &y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (Self::Sparse(a), Self::Sparse(b)) => {
                for (&addr, &count) in b {
                    *a.entry(addr).or_insert(0) += count;
                }
            }
            // Same layout ⇒ same storage flavour; mixed merges cannot occur.
            _ => unreachable!("counter stores of one layout share a storage flavour"),
        }
    }
}

/// Per-class, per-chunk occurrence counters over the chunk address space.
///
/// `PartialEq` compares the exact counter contents (the online-vs-batch
/// differential tests assert streamed counters equal batch counters bit
/// for bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkCounters {
    layout: ChunkLayout,
    /// `stores[class][chunk]`.
    stores: Vec<Vec<CounterStore>>,
}

impl ChunkCounters {
    /// Creates zeroed counters for `n_classes` classes over `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `n_classes == 0`.
    pub fn new(layout: ChunkLayout, n_classes: usize) -> Result<Self> {
        if n_classes == 0 {
            return Err(HdcError::invalid_config("k", "need at least one class"));
        }
        let stores = (0..n_classes)
            .map(|_| {
                (0..layout.n_chunks())
                    .map(|c| CounterStore::new(layout.table_rows(c)))
                    .collect()
            })
            .collect();
        Ok(Self { layout, stores })
    }

    /// Records one training sample: increments the counter addressed by
    /// each chunk (Fig. 6 step D). `addrs` comes from
    /// [`crate::encoder::LookupEncoder::addresses`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::UnknownClass`] for an out-of-range class and
    /// [`HdcError::InvalidDataset`] if `addrs.len()` differs from the chunk
    /// count.
    pub fn observe(&mut self, class: usize, addrs: &[u64]) -> Result<()> {
        if class >= self.stores.len() {
            return Err(HdcError::UnknownClass {
                label: class,
                n_classes: self.stores.len(),
            });
        }
        if addrs.len() != self.layout.n_chunks() {
            return Err(HdcError::invalid_dataset(format!(
                "expected {} chunk addresses, got {}",
                self.layout.n_chunks(),
                addrs.len()
            )));
        }
        for (chunk, &addr) in addrs.iter().enumerate() {
            debug_assert!(addr < self.layout.table_rows(chunk) as u64);
            self.stores[class][chunk].increment(addr);
        }
        Ok(())
    }

    /// The count for `(class, chunk, addr)`.
    ///
    /// # Panics
    ///
    /// Panics if `class`/`chunk` are out of range (dense stores also panic
    /// on out-of-range addresses).
    pub fn count(&self, class: usize, chunk: usize, addr: u64) -> u32 {
        self.stores[class][chunk].get(addr)
    }

    /// Iterates over the non-zero `(addr, count)` pairs of one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `class`/`chunk` are out of range.
    pub fn nonzero(&self, class: usize, chunk: usize) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.stores[class][chunk].nonzero()
    }

    /// Number of samples observed for `class` (every chunk sees each sample
    /// once, so chunk 0's total is the sample count).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn samples_seen(&self, class: usize) -> u64 {
        self.stores[class][0].total()
    }

    /// Element-wise adds `other`'s counters into this set — the merge step
    /// of sharded counter training. Counter addition is associative and
    /// commutative, so merging per-shard counter sets in any order yields
    /// exactly the counters of a serial pass over the same samples.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if the layouts differ and
    /// [`HdcError::InvalidDataset`] if the class counts differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if other.layout != self.layout {
            return Err(HdcError::invalid_config(
                "layout",
                "cannot merge counters over different chunk layouts",
            ));
        }
        if other.n_classes() != self.n_classes() {
            return Err(HdcError::invalid_dataset(format!(
                "cannot merge {}-class counters into {}-class counters",
                other.n_classes(),
                self.n_classes()
            )));
        }
        for (mine, theirs) in self.stores.iter_mut().zip(&other.stores) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                a.merge(b);
            }
        }
        Ok(())
    }

    /// Number of classes `k`.
    pub fn n_classes(&self) -> usize {
        self.stores.len()
    }

    /// The layout these counters are defined over.
    pub fn layout(&self) -> &ChunkLayout {
        &self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ChunkLayout {
        ChunkLayout::new(10, 5, 4).unwrap()
    }

    #[test]
    fn observe_and_count() {
        let mut c = ChunkCounters::new(layout(), 2).unwrap();
        c.observe(0, &[3, 7]).unwrap();
        c.observe(0, &[3, 9]).unwrap();
        c.observe(1, &[3, 7]).unwrap();
        assert_eq!(c.count(0, 0, 3), 2);
        assert_eq!(c.count(0, 1, 7), 1);
        assert_eq!(c.count(0, 1, 9), 1);
        assert_eq!(c.count(1, 0, 3), 1);
        assert_eq!(c.count(1, 1, 9), 0);
        assert_eq!(c.samples_seen(0), 2);
        assert_eq!(c.samples_seen(1), 1);
        assert_eq!(c.n_classes(), 2);
    }

    #[test]
    fn nonzero_iterates_exactly_the_touched_addresses() {
        let mut c = ChunkCounters::new(layout(), 1).unwrap();
        c.observe(0, &[3, 7]).unwrap();
        c.observe(0, &[3, 8]).unwrap();
        let mut chunk0: Vec<(u64, u32)> = c.nonzero(0, 0).collect();
        chunk0.sort();
        assert_eq!(chunk0, vec![(3, 2)]);
        let mut chunk1: Vec<(u64, u32)> = c.nonzero(0, 1).collect();
        chunk1.sort();
        assert_eq!(chunk1, vec![(7, 1), (8, 1)]);
    }

    #[test]
    fn sparse_store_used_for_huge_address_spaces() {
        // q=8, r=10 → 8^10 ≈ 1.07e9 rows per chunk: must not allocate that.
        let big = ChunkLayout::new(20, 10, 8).unwrap();
        let mut c = ChunkCounters::new(big, 1).unwrap();
        c.observe(0, &[123_456_789, 1]).unwrap();
        assert_eq!(c.count(0, 0, 123_456_789), 1);
        assert_eq!(c.count(0, 0, 42), 0);
        assert_eq!(c.samples_seen(0), 1);
    }

    #[test]
    fn validates_inputs() {
        let mut c = ChunkCounters::new(layout(), 2).unwrap();
        assert!(matches!(
            c.observe(5, &[0, 0]),
            Err(HdcError::UnknownClass { .. })
        ));
        assert!(c.observe(0, &[0]).is_err());
        assert!(ChunkCounters::new(layout(), 0).is_err());
    }

    #[test]
    fn merge_equals_serial_observation() {
        let samples: Vec<(usize, [u64; 2])> = vec![
            (0, [3, 7]),
            (1, [3, 9]),
            (0, [3, 7]),
            (1, [1, 7]),
            (0, [2, 9]),
        ];
        let mut serial = ChunkCounters::new(layout(), 2).unwrap();
        for (class, addrs) in &samples {
            serial.observe(*class, addrs).unwrap();
        }
        let mut left = ChunkCounters::new(layout(), 2).unwrap();
        let mut right = ChunkCounters::new(layout(), 2).unwrap();
        for (class, addrs) in &samples[..2] {
            left.observe(*class, addrs).unwrap();
        }
        for (class, addrs) in &samples[2..] {
            right.observe(*class, addrs).unwrap();
        }
        left.merge(&right).unwrap();
        for class in 0..2 {
            assert_eq!(left.samples_seen(class), serial.samples_seen(class));
            for chunk in 0..2 {
                for addr in 0..10 {
                    assert_eq!(
                        left.count(class, chunk, addr),
                        serial.count(class, chunk, addr),
                        "class {class} chunk {chunk} addr {addr}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_validates_shape() {
        let mut a = ChunkCounters::new(layout(), 2).unwrap();
        let b = ChunkCounters::new(layout(), 3).unwrap();
        assert!(a.merge(&b).is_err());
        let other_layout = ChunkLayout::new(20, 5, 4).unwrap();
        let c = ChunkCounters::new(other_layout, 2).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn sparse_stores_merge_too() {
        let big = ChunkLayout::new(20, 10, 8).unwrap();
        let mut a = ChunkCounters::new(big, 1).unwrap();
        let mut b = ChunkCounters::new(big, 1).unwrap();
        a.observe(0, &[123_456_789, 1]).unwrap();
        b.observe(0, &[123_456_789, 2]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.count(0, 0, 123_456_789), 2);
        assert_eq!(a.count(0, 1, 1), 1);
        assert_eq!(a.count(0, 1, 2), 1);
    }
}
