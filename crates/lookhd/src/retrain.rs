//! Retraining on the compressed model (§IV-D, §V-C).
//!
//! Each epoch classifies every training sample against a *frozen* copy of
//! the compressed model; updates for mispredicted samples are staged on a
//! working copy and committed once at the end of the epoch — exactly the
//! paper's FPGA double-buffering ("our implementation applies all
//! modifications on a copy of the compressed model while using the original
//! model for inference").

use hdc::hv::DenseHv;
use hdc::train::{EpochStats, TrainReport};
use hdc::{HdcError, Result};

use crate::compress::CompressedModel;

/// Which per-misprediction update arithmetic to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdateRule {
    /// The exact rule `C += P'_correct ⊙ H − P'_wrong ⊙ H`.
    #[default]
    Exact,
    /// The paper's §V-C hardware shift approximation of `ΔP'·H`.
    PaperShift,
}

/// Runs up to `max_epochs` of staged retraining on a compressed model,
/// stopping early when an epoch sees zero mispredictions.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for empty or mismatched inputs and
/// propagates model errors.
pub fn retrain_compressed(
    model: &mut CompressedModel,
    encoded: &[DenseHv],
    labels: &[usize],
    max_epochs: usize,
    rule: UpdateRule,
) -> Result<TrainReport> {
    if encoded.is_empty() {
        return Err(HdcError::invalid_dataset("cannot retrain on zero samples"));
    }
    if encoded.len() != labels.len() {
        return Err(HdcError::invalid_dataset(format!(
            "{} samples but {} labels",
            encoded.len(),
            labels.len()
        )));
    }
    let mut report = TrainReport::default();
    for epoch in 0..max_epochs {
        // Freeze for inference; stage updates on the working copy.
        let mut staged = model.clone();
        let mut updates = 0usize;
        let mut correct_n = 0usize;
        for (h, &y) in encoded.iter().zip(labels) {
            let pred = model.predict(h)?;
            if pred == y {
                correct_n += 1;
            } else {
                match rule {
                    UpdateRule::Exact => staged.update(y, pred, h)?,
                    UpdateRule::PaperShift => staged.update_paper_shift(y, pred, h)?,
                }
                updates += 1;
            }
        }
        *model = staged;
        report.epochs.push(EpochStats {
            epoch,
            updates,
            train_accuracy: correct_n as f64 / encoded.len() as f64,
        });
        if updates == 0 {
            break;
        }
    }
    Ok(report)
}

/// Compressed retraining with the paper's validation stopping rule
/// (§II-B): epochs run until the compressed model's validation accuracy
/// has not improved for `patience` consecutive epochs (or `max_epochs`);
/// the model is rolled back to the best validation snapshot.
///
/// # Errors
///
/// Returns [`HdcError::InvalidDataset`] for empty or mismatched inputs and
/// propagates model errors.
#[allow(clippy::too_many_arguments)]
pub fn retrain_compressed_with_validation(
    model: &mut CompressedModel,
    train_encoded: &[DenseHv],
    train_labels: &[usize],
    val_encoded: &[DenseHv],
    val_labels: &[usize],
    max_epochs: usize,
    patience: usize,
    rule: UpdateRule,
) -> Result<TrainReport> {
    if val_encoded.is_empty() || val_encoded.len() != val_labels.len() {
        return Err(HdcError::invalid_dataset(
            "validation split must be non-empty and consistent",
        ));
    }
    let val_accuracy = |m: &CompressedModel| -> Result<f64> {
        let mut correct = 0usize;
        for (h, &y) in val_encoded.iter().zip(val_labels) {
            if m.predict(h)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / val_encoded.len() as f64)
    };
    let mut best = model.clone();
    let mut best_acc = val_accuracy(model)?;
    let mut since_best = 0usize;
    let mut report = TrainReport::default();
    for epoch in 0..max_epochs {
        let mut epoch_report = retrain_compressed(model, train_encoded, train_labels, 1, rule)?;
        if let Some(mut stats) = epoch_report.epochs.pop() {
            stats.epoch = epoch;
            report.epochs.push(stats);
        }
        let acc = val_accuracy(model)?;
        if acc > best_acc {
            best_acc = acc;
            best = model.clone();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= patience {
                break;
            }
        }
        if report.epochs.last().is_some_and(|e| e.updates == 0) {
            break;
        }
    }
    *model = best;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{CompressedModel, CompressionConfig};
    use hdc::hv::BipolarHv;
    use hdc::model::ClassModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Noisy two-class encoded dataset plus an *initially wrong* model
    /// (class hypervectors swapped) that retraining must fix.
    fn swapped_setup(
        dim: usize,
        seed: u64,
    ) -> (CompressedModel, ClassModel, Vec<DenseHv>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protos = [
            BipolarHv::random(dim, &mut rng),
            BipolarHv::random(dim, &mut rng),
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, p) in protos.iter().enumerate() {
            for _ in 0..15 {
                let mut hv = p.clone();
                let idx: Vec<usize> = (0..dim / 20).map(|_| rng.gen_range(0..dim)).collect();
                hv.flip(&idx);
                xs.push(DenseHv::from(&hv));
                ys.push(c);
            }
        }
        // Model with the classes deliberately swapped.
        let swapped_labels: Vec<usize> = ys.iter().map(|&y| 1 - y).collect();
        let model = hdc::train::initial_fit(&xs, &swapped_labels, 2).unwrap();
        let compressed =
            CompressedModel::compress(&model, &CompressionConfig::new().with_decorrelate(false))
                .unwrap();
        (compressed, model, xs, ys)
    }

    #[test]
    fn retraining_fixes_a_swapped_model() {
        let (mut compressed, _, xs, ys) = swapped_setup(2000, 1);
        let acc_before = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc_before < 0.5, "setup should start broken: {acc_before}");
        let report = retrain_compressed(&mut compressed, &xs, &ys, 20, UpdateRule::Exact).unwrap();
        let acc_after = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count() as f64
            / xs.len() as f64;
        assert!(
            acc_after > 0.9,
            "retraining failed: {acc_after}, report {report:?}"
        );
    }

    #[test]
    fn converged_model_stops_early() {
        let (mut compressed, _, xs, ys) = swapped_setup(2000, 2);
        retrain_compressed(&mut compressed, &xs, &ys, 30, UpdateRule::Exact).unwrap();
        let report = retrain_compressed(&mut compressed, &xs, &ys, 30, UpdateRule::Exact).unwrap();
        assert!(
            report.epochs_run() <= 3,
            "already-converged model should stop: {report:?}"
        );
    }

    #[test]
    fn paper_shift_rule_also_learns() {
        let (mut compressed, _, xs, ys) = swapped_setup(2000, 3);
        let report =
            retrain_compressed(&mut compressed, &xs, &ys, 30, UpdateRule::PaperShift).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count() as f64
            / xs.len() as f64;
        assert!(
            acc > 0.8,
            "paper-shift retraining too weak: {acc}, {report:?}"
        );
    }

    #[test]
    fn staged_updates_do_not_affect_same_epoch_predictions() {
        // With a frozen model, the first epoch's accuracy equals the
        // pre-retraining accuracy regardless of update order.
        let (mut compressed, _, xs, ys) = swapped_setup(1000, 4);
        let acc_before = xs
            .iter()
            .zip(&ys)
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count() as f64
            / xs.len() as f64;
        let report = retrain_compressed(&mut compressed, &xs, &ys, 1, UpdateRule::Exact).unwrap();
        assert!((report.epochs[0].train_accuracy - acc_before).abs() < 1e-12);
    }

    #[test]
    fn validation_stop_never_ends_worse_than_it_started() {
        let (mut compressed, _, xs, ys) = swapped_setup(1000, 6);
        let val = 10usize;
        let start_acc = xs[..val]
            .iter()
            .zip(&ys[..val])
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count();
        retrain_compressed_with_validation(
            &mut compressed,
            &xs[val..],
            &ys[val..],
            &xs[..val],
            &ys[..val],
            15,
            3,
            UpdateRule::Exact,
        )
        .unwrap();
        let end_acc = xs[..val]
            .iter()
            .zip(&ys[..val])
            .filter(|(h, &y)| compressed.predict(h).unwrap() == y)
            .count();
        assert!(end_acc >= start_acc, "rollback must keep the best snapshot");
    }

    #[test]
    fn validation_stop_validates_inputs() {
        let (mut compressed, _, xs, ys) = swapped_setup(256, 7);
        assert!(retrain_compressed_with_validation(
            &mut compressed,
            &xs,
            &ys,
            &[],
            &[],
            5,
            2,
            UpdateRule::Exact
        )
        .is_err());
    }

    #[test]
    fn validates_inputs() {
        let (mut compressed, _, xs, _) = swapped_setup(500, 5);
        assert!(retrain_compressed(&mut compressed, &[], &[], 5, UpdateRule::Exact).is_err());
        assert!(retrain_compressed(&mut compressed, &xs, &[0], 5, UpdateRule::Exact).is_err());
    }
}
